//! The vectorized columnar interpreter.
//!
//! A drop-in twin of [`crate::executor::execute_fragment`] that runs the
//! same located physical plans over [`ColumnarBatch`]es instead of
//! row-major [`Rows`]. Three rules keep it observably identical to the
//! row engine:
//!
//! * **Same recursion, same order** — operators recurse into their
//!   inputs left to right exactly like the row interpreter, so the
//!   sequence of scan/ship side effects (fault-clock ticks, byte
//!   accounting, audits) is bit-identical.
//! * **Same semantics, vectorized where safe** — filters compile to
//!   selection vectors via typed column kernels for predicate shapes
//!   that provably cannot raise errors (comparisons of compatible typed
//!   columns/literals, `IN`, `BETWEEN`, `LIKE` on string columns,
//!   Kleene `AND`/`OR` over such masks); anything that may error falls
//!   back to a per-row scalar mirror of `BoundExpr::eval`, evaluated in
//!   row order so the first error matches the row engine's.
//! * **Same rows, same order** — joins probe in input order and emit
//!   matches in build-insertion order; aggregation feeds accumulators in
//!   row order (float sums are order-sensitive) and sorts its output
//!   with the row engine's one explicit final sort. Every operator is
//!   order-preserving, so SHIP payloads batch identically and shipped
//!   bytes match to the byte.
//!
//! Filters do not materialize: they return the input batch plus a
//! selection vector, which downstream kernels (project, join, aggregate)
//! consume positionally. Materialization happens only where physical
//! row identity matters — SHIP boundaries and the plan root.

use crate::aggregate::{Accumulator, BoundAgg};
use crate::executor::{sort_group_keys, DataSource, ExchangeSource, NoExchange, ShipHandler};
use crate::parallel::{first_error, morsel_bounds, parallel_map, MorselRunner};
use geoqp_common::{
    columnar::mix_fingerprint, Column, ColumnarBatch, DataType, GeoError, Result, Rows, Value,
};
use geoqp_expr::{apply_cmp, as_tv, bind, eval_arith, like_match, BinaryOp, BoundExpr, UnaryOp};
use geoqp_plan::{PhysOp, PhysicalPlan, SortKey};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Identity hasher for key fingerprints: the FNV + multiply-mix
/// fingerprints are already well diffused, so feeding them through
/// SipHash again (the `HashMap` default) only burns cycles. Join and
/// group-by tables key on `u64` fingerprints exclusively.
#[derive(Default)]
struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | b as u64;
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type FpBuild = BuildHasherDefault<FpHasher>;
type FpMap<V> = HashMap<u64, V, FpBuild>;

/// A batch with an optional selection vector: the unit flowing between
/// columnar operators. `sel` lists the surviving physical row indices in
/// order; `None` means all rows.
#[derive(Debug, Clone)]
pub struct ColBatch {
    /// The (shared, immutable) data.
    pub batch: Arc<ColumnarBatch>,
    /// Selected physical rows, in order; `None` = every row.
    pub sel: Option<Arc<Vec<u32>>>,
}

impl ColBatch {
    /// Wrap a batch with no selection.
    pub fn all(batch: Arc<ColumnarBatch>) -> ColBatch {
        ColBatch { batch, sel: None }
    }

    /// Number of logical (selected) rows.
    pub fn n_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.batch.len(),
        }
    }

    /// Physical index of logical row `i`.
    #[inline]
    pub fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// The logical row indices as an explicit vector (identity when no
    /// selection is attached).
    fn indices(&self) -> Vec<u32> {
        match &self.sel {
            Some(s) => s.as_ref().clone(),
            None => (0..self.batch.len() as u32).collect(),
        }
    }

    /// Materialize the selection into a standalone batch (a cheap `Arc`
    /// clone when nothing is filtered out).
    pub fn materialize(&self) -> Arc<ColumnarBatch> {
        match &self.sel {
            None => Arc::clone(&self.batch),
            Some(s) => Arc::new(self.batch.gather(s)),
        }
    }

    /// Convert to row-major form. The transpose is deferred
    /// ([`Rows::from_batch`]): a selection gathers into a standalone
    /// columnar batch here, but per-row materialization happens only if
    /// a consumer asks for rows.
    pub fn to_rows(&self) -> Rows {
        Rows::from_batch(self.materialize())
    }

    /// [`ColBatch::materialize`] with the column gathers fanned out over
    /// `runner` — column values are independent, so the result is the
    /// same batch regardless of schedule.
    fn materialize_par(&self, runner: &dyn MorselRunner) -> Arc<ColumnarBatch> {
        match &self.sel {
            None => Arc::clone(&self.batch),
            Some(s) => Arc::new(gather_parallel(runner, &self.batch, s)),
        }
    }
}

/// Gather `indices` out of every column of `b`, one morsel task per
/// column. Identical output to [`ColumnarBatch::gather`].
fn gather_parallel(runner: &dyn MorselRunner, b: &ColumnarBatch, indices: &[u32]) -> ColumnarBatch {
    if runner.workers() <= 1 || b.arity() <= 1 {
        return b.gather(indices);
    }
    let columns = parallel_map(runner, b.arity(), |j| b.column(j).gather(indices));
    ColumnarBatch::from_columns(columns)
}

/// Morsel-parallel [`filter_indices`]: split the index window into
/// morsels, filter each independently, and concatenate the survivors in
/// morsel order — the same indices, in the same order, as one sequential
/// pass. Errors report from the lowest morsel, which holds the earliest
/// failing row.
fn filter_indices_morsel(
    runner: &dyn MorselRunner,
    predicate: &BoundExpr,
    b: &ColumnarBatch,
    idx: &[u32],
) -> Result<Vec<u32>> {
    let bounds = morsel_bounds(idx.len(), runner.morsel_rows());
    if runner.workers() <= 1 || bounds.len() <= 1 {
        return filter_indices(predicate, b, idx);
    }
    let parts = parallel_map(runner, bounds.len(), |m| {
        let (lo, hi) = bounds[m];
        filter_indices(predicate, b, &idx[lo..hi])
    });
    Ok(first_error(parts)?.concat())
}

/// Morsel-parallel [`eval_column`] for computed expressions: each morsel
/// evaluates its rows through the scalar mirror, and the chunks are
/// joined in morsel order before the one type-sniffing
/// [`Column::from_values`] pass — so the output column (layout included)
/// is identical to the sequential evaluation. Plain column references
/// and literals are already vectorized and skip the split.
fn eval_column_morsel(
    runner: &dyn MorselRunner,
    e: &BoundExpr,
    b: &ColumnarBatch,
    idx: &[u32],
) -> Result<Column> {
    if matches!(e, BoundExpr::Column(_) | BoundExpr::Literal(_)) || runner.workers() <= 1 {
        return eval_column(e, b, idx);
    }
    let bounds = morsel_bounds(idx.len(), runner.morsel_rows());
    if bounds.len() <= 1 {
        return eval_column(e, b, idx);
    }
    let parts = parallel_map(runner, bounds.len(), |m| {
        let (lo, hi) = bounds[m];
        let mut values = Vec::with_capacity(hi - lo);
        for &i in &idx[lo..hi] {
            values.push(eval_scalar(e, b, i as usize)?);
        }
        Ok(values)
    });
    Ok(Column::from_values(first_error(parts)?.concat()))
}

/// Execute a located physical plan on the columnar engine, returning the
/// result rows at the root operator's location. The row-major conversion
/// happens once, at the root.
pub fn execute_columnar(
    plan: &PhysicalPlan,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
) -> Result<Rows> {
    Ok(execute_fragment_columnar(plan, source, ship, &NoExchange)?.to_rows())
}

/// [`execute_columnar`] with fragment boundaries, mirroring
/// [`crate::executor::execute_fragment`]'s contract: nodes claimed by
/// `exchange` are not interpreted here.
pub fn execute_fragment_columnar(
    plan: &PhysicalPlan,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<ColBatch> {
    if let Some(batch) = exchange.fetch_columnar(plan) {
        return Ok(ColBatch::all(batch?));
    }
    match &plan.op {
        PhysOp::Scan { table } => Ok(ColBatch::all(source.scan_columnar(
            table,
            &plan.location,
            plan.schema.len(),
        )?)),
        PhysOp::Filter { predicate } => {
            let input = &plan.inputs[0];
            let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
            let bound = bind(predicate, &input.schema)?;
            let idx = in_batch.indices();
            let kept = filter_indices_morsel(exchange.runner(), &bound, &in_batch.batch, &idx)?;
            Ok(ColBatch {
                batch: in_batch.batch,
                sel: Some(Arc::new(kept)),
            })
        }
        PhysOp::Project { exprs } => {
            let input = &plan.inputs[0];
            let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(e, _)| bind(e, &input.schema))
                .collect::<Result<_>>()?;
            let idx = in_batch.indices();
            let columns: Vec<Column> = bound
                .iter()
                .map(|b| eval_column_morsel(exchange.runner(), b, &in_batch.batch, &idx))
                .collect::<Result<_>>()?;
            let out = if columns.is_empty() {
                ColumnarBatch::from_rows(&vec![Vec::new(); idx.len()], 0)
            } else {
                ColumnarBatch::from_columns(columns)
            };
            Ok(ColBatch::all(Arc::new(out)))
        }
        PhysOp::HashJoin {
            left_keys,
            right_keys,
            filter,
        } => execute_hash_join_columnar(
            plan,
            left_keys,
            right_keys,
            filter.as_ref(),
            source,
            ship,
            exchange,
        ),
        PhysOp::HashAggregate { group_by, aggs } => {
            execute_hash_aggregate_columnar(plan, group_by, aggs, source, ship, exchange)
        }
        PhysOp::Sort { keys } => {
            let input = &plan.inputs[0];
            let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
            let cols: Vec<(usize, bool)> = keys
                .iter()
                .map(|k: &SortKey| Ok((input.schema.require_index(&k.column)?, k.descending)))
                .collect::<Result<_>>()?;
            let mut idx = in_batch.indices();
            // Stable, like the row engine's `sort_by`: ties keep input order.
            idx.sort_by(|&a, &b| {
                for (c, desc) in &cols {
                    let col = in_batch.batch.column(*c);
                    let ord = col.get(a as usize).total_cmp(&col.get(b as usize));
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            Ok(ColBatch {
                batch: in_batch.batch,
                sel: Some(Arc::new(idx)),
            })
        }
        PhysOp::Limit { fetch } => {
            let in_batch = execute_fragment_columnar(&plan.inputs[0], source, ship, exchange)?;
            let mut idx = in_batch.indices();
            idx.truncate(*fetch);
            Ok(ColBatch {
                batch: in_batch.batch,
                sel: Some(Arc::new(idx)),
            })
        }
        PhysOp::Union => {
            let mut parts = Vec::with_capacity(plan.inputs.len());
            for input in &plan.inputs {
                parts.push(execute_fragment_columnar(input, source, ship, exchange)?.materialize());
            }
            Ok(ColBatch::all(Arc::new(ColumnarBatch::concat(
                &parts,
                plan.schema.len(),
            ))))
        }
        PhysOp::Ship => {
            let input = &plan.inputs[0];
            let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
            let payload = in_batch.materialize_par(exchange.runner());
            Ok(ColBatch::all(ship.ship_columnar(
                &input.location,
                &plan.location,
                payload,
                &input.schema,
            )?))
        }
        PhysOp::ResumeScan { fingerprint, .. } => {
            let rows = source.resume(*fingerprint, &plan.location, plan.schema.len())?;
            Ok(ColBatch::all(Arc::new(ColumnarBatch::from_rows(
                rows.rows(),
                plan.schema.len(),
            ))))
        }
    }
}

// ---------------------------------------------------------------------
// Scalar mirror of `BoundExpr::eval`, reading from columns.
// ---------------------------------------------------------------------

/// Evaluate `e` at physical row `i` of `b`, with semantics (including
/// short-circuiting, null propagation, and error cases) identical to
/// [`BoundExpr::eval`] over the materialized row.
fn eval_scalar(e: &BoundExpr, b: &ColumnarBatch, i: usize) -> Result<Value> {
    match e {
        BoundExpr::Column(c) => {
            if *c < b.arity() {
                Ok(b.get(i, *c))
            } else {
                Err(GeoError::Execution(format!("row too short for column {c}")))
            }
        }
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Binary { op, lhs, rhs } => {
            if *op == BinaryOp::And || *op == BinaryOp::Or {
                return eval_logical_scalar(*op, lhs, rhs, b, i);
            }
            let l = eval_scalar(lhs, b, i)?;
            let r = eval_scalar(rhs, b, i)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            if op.is_comparison() {
                let ord = l.sql_cmp(&r).ok_or_else(|| {
                    GeoError::Execution(format!("incomparable values {l} and {r}"))
                })?;
                Ok(Value::Bool(apply_cmp(*op, ord)))
            } else {
                eval_arith(*op, &l, &r)
            }
        }
        BoundExpr::Unary { op, expr } => {
            let v = eval_scalar(expr, b, i)?;
            match (op, v) {
                (_, Value::Null) => Ok(Value::Null),
                (UnaryOp::Not, Value::Bool(x)) => Ok(Value::Bool(!x)),
                (UnaryOp::Neg, Value::Int64(x)) => Ok(Value::Int64(-x)),
                (UnaryOp::Neg, Value::Float64(x)) => Ok(Value::Float64(-x)),
                (op, v) => Err(GeoError::Execution(format!("cannot apply {op:?} to {v}"))),
            }
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_scalar(expr, b, i)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(pattern, &s) != *negated)),
                other => Err(GeoError::Execution(format!("LIKE on non-string {other}"))),
            }
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_scalar(expr, b, i)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let found = list.iter().any(|c| v.sql_cmp(c) == Some(Ordering::Equal));
            Ok(Value::Bool(found != *negated))
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_scalar(expr, b, i)?;
            let lo = eval_scalar(low, b, i)?;
            let hi = eval_scalar(high, b, i)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let ge_lo = matches!(
                v.sql_cmp(&lo),
                Some(Ordering::Greater) | Some(Ordering::Equal)
            );
            let le_hi = matches!(v.sql_cmp(&hi), Some(Ordering::Less) | Some(Ordering::Equal));
            Ok(Value::Bool((ge_lo && le_hi) != *negated))
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval_scalar(expr, b, i)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

fn eval_logical_scalar(
    op: BinaryOp,
    lhs: &BoundExpr,
    rhs: &BoundExpr,
    b: &ColumnarBatch,
    i: usize,
) -> Result<Value> {
    let l = eval_scalar(lhs, b, i)?;
    match (op, &l) {
        (BinaryOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
        (BinaryOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = eval_scalar(rhs, b, i)?;
    let lb = as_tv(&l)?;
    let rb = as_tv(&r)?;
    Ok(match op {
        BinaryOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinaryOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!("eval_logical_scalar only handles AND/OR"),
    })
}

// ---------------------------------------------------------------------
// Vectorized predicate masks.
// ---------------------------------------------------------------------

/// Three-valued mask over a row-index window: `Some(bool)` or `None`
/// (NULL), one entry per index.
type Mask = Vec<Option<bool>>;

/// Broad type class used to prove a comparison cannot error: `sql_cmp`
/// only returns `None` (→ "incomparable" error) across classes.
#[derive(PartialEq, Clone, Copy)]
enum Class {
    Num,
    Date,
    Str,
    Bool,
}

fn column_class(c: &Column) -> Option<Class> {
    match c {
        Column::Int64 { .. } | Column::Float64 { .. } => Some(Class::Num),
        Column::Date { .. } => Some(Class::Date),
        Column::Str { .. } => Some(Class::Str),
        Column::Bool { .. } => Some(Class::Bool),
        Column::Any { .. } => None,
    }
}

fn value_class(v: &Value) -> Option<Class> {
    match v {
        Value::Int64(_) | Value::Float64(_) => Some(Class::Num),
        Value::Date(_) => Some(Class::Date),
        Value::Str(_) => Some(Class::Str),
        Value::Bool(_) => Some(Class::Bool),
        Value::Null => None,
    }
}

/// One comparison operand: a typed column or a literal.
enum Operand<'a> {
    Col(&'a Column),
    Lit(&'a Value),
}

fn operand<'a>(e: &'a BoundExpr, b: &'a ColumnarBatch) -> Option<Operand<'a>> {
    match e {
        BoundExpr::Column(c) if *c < b.arity() => Some(Operand::Col(b.column(*c))),
        BoundExpr::Literal(v) => Some(Operand::Lit(v)),
        _ => None,
    }
}

/// Try to evaluate `e` as an error-free vectorized mask over the rows
/// `idx` of `b`. Returns `None` when `e` is not a shape this kernel can
/// prove error-free; the caller then falls back to the scalar mirror.
fn fast_mask(e: &BoundExpr, b: &ColumnarBatch, idx: &[u32]) -> Option<Mask> {
    match e {
        BoundExpr::Literal(Value::Bool(x)) => Some(vec![Some(*x); idx.len()]),
        BoundExpr::Literal(Value::Null) => Some(vec![None; idx.len()]),
        BoundExpr::Binary { op, lhs, rhs } if *op == BinaryOp::And || *op == BinaryOp::Or => {
            // Both sides error-free ⇒ full evaluation matches Kleene
            // logic with or without short-circuiting.
            let l = fast_mask(lhs, b, idx)?;
            let r = fast_mask(rhs, b, idx)?;
            Some(merge_kleene(*op, &l, &r))
        }
        BoundExpr::Binary { op, lhs, rhs } if op.is_comparison() => {
            cmp_mask(*op, operand(lhs, b)?, operand(rhs, b)?, idx)
        }
        BoundExpr::Unary {
            op: UnaryOp::Not,
            expr,
        } => {
            let m = fast_mask(expr, b, idx)?;
            Some(m.into_iter().map(|t| t.map(|x| !x)).collect())
        }
        BoundExpr::IsNull { expr, negated } => {
            if let BoundExpr::Column(c) = expr.as_ref() {
                if *c < b.arity() {
                    let col = b.column(*c);
                    return Some(
                        idx.iter()
                            .map(|&i| Some(col.is_null(i as usize) != *negated))
                            .collect(),
                    );
                }
            }
            None
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            // `IN` over constants never errors (incomparable candidates
            // simply don't match), so any column shape is fair game.
            if let BoundExpr::Column(c) = expr.as_ref() {
                if *c < b.arity() {
                    let col = b.column(*c);
                    return Some(in_list_mask(col, list, *negated, idx));
                }
            }
            None
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // BETWEEN never errors either: bounds that don't compare
            // yield `false` legs, not errors.
            match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                (BoundExpr::Column(c), BoundExpr::Literal(lo), BoundExpr::Literal(hi))
                    if *c < b.arity() =>
                {
                    let col = b.column(*c);
                    Some(
                        idx.iter()
                            .map(|&i| {
                                let v = col.get(i as usize);
                                if v.is_null() || lo.is_null() || hi.is_null() {
                                    return None;
                                }
                                let ge_lo = matches!(
                                    v.sql_cmp(lo),
                                    Some(Ordering::Greater) | Some(Ordering::Equal)
                                );
                                let le_hi = matches!(
                                    v.sql_cmp(hi),
                                    Some(Ordering::Less) | Some(Ordering::Equal)
                                );
                                Some((ge_lo && le_hi) != *negated)
                            })
                            .collect(),
                    )
                }
                _ => None,
            }
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            // Only string-typed columns are provably error-free (LIKE on
            // a non-string value is a runtime error in the row engine).
            if let BoundExpr::Column(c) = expr.as_ref() {
                if *c < b.arity() {
                    if let Column::Str {
                        dict, codes, valid, ..
                    } = b.column(*c)
                    {
                        // Match each distinct dictionary entry once.
                        let hits: Vec<bool> = dict
                            .iter()
                            .map(|s| like_match(pattern, s) != *negated)
                            .collect();
                        return Some(
                            idx.iter()
                                .map(|&i| {
                                    let i = i as usize;
                                    if valid[i] {
                                        Some(hits[codes[i] as usize])
                                    } else {
                                        None
                                    }
                                })
                                .collect(),
                        );
                    }
                }
            }
            None
        }
        _ => None,
    }
}

fn merge_kleene(op: BinaryOp, l: &Mask, r: &Mask) -> Mask {
    l.iter()
        .zip(r)
        .map(|(a, c)| match op {
            BinaryOp::And => match (a, c) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinaryOp::Or => match (a, c) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!(),
        })
        .collect()
}

fn in_list_mask(col: &Column, list: &[Value], negated: bool, idx: &[u32]) -> Mask {
    if let Column::Str {
        dict, codes, valid, ..
    } = col
    {
        // Evaluate membership once per distinct dictionary entry.
        let hits: Vec<bool> = dict
            .iter()
            .map(|s| {
                let v = Value::Str(Arc::clone(s));
                let found = list.iter().any(|c| v.sql_cmp(c) == Some(Ordering::Equal));
                found != negated
            })
            .collect();
        return idx
            .iter()
            .map(|&i| {
                let i = i as usize;
                if valid[i] {
                    Some(hits[codes[i] as usize])
                } else {
                    None
                }
            })
            .collect();
    }
    idx.iter()
        .map(|&i| {
            let v = col.get(i as usize);
            if v.is_null() {
                return None;
            }
            let found = list.iter().any(|c| v.sql_cmp(c) == Some(Ordering::Equal));
            Some(found != negated)
        })
        .collect()
}

/// Vectorized comparison of two operands, or `None` when the pair cannot
/// be proven error-free (mismatched classes, `Any` columns).
fn cmp_mask(op: BinaryOp, lhs: Operand<'_>, rhs: Operand<'_>, idx: &[u32]) -> Option<Mask> {
    // A NULL literal anywhere makes the whole comparison NULL — the row
    // engine checks nullness before comparability.
    if matches!(lhs, Operand::Lit(Value::Null)) || matches!(rhs, Operand::Lit(Value::Null)) {
        return Some(vec![None; idx.len()]);
    }
    match (&lhs, &rhs) {
        (Operand::Lit(a), Operand::Lit(b)) => {
            let class_a = value_class(a)?;
            if class_a != value_class(b)? {
                return None;
            }
            let ord = a.sql_cmp(b)?;
            Some(vec![Some(apply_cmp(op, ord)); idx.len()])
        }
        (Operand::Col(c), Operand::Lit(v)) => {
            if column_class(c)? != value_class(v)? {
                return None;
            }
            Some(col_lit_mask(op, c, v, idx, false))
        }
        (Operand::Lit(v), Operand::Col(c)) => {
            if column_class(c)? != value_class(v)? {
                return None;
            }
            Some(col_lit_mask(op, c, v, idx, true))
        }
        (Operand::Col(a), Operand::Col(b)) => {
            if column_class(a)? != column_class(b)? {
                return None;
            }
            Some(
                idx.iter()
                    .map(|&i| {
                        let i = i as usize;
                        if a.is_null(i) || b.is_null(i) {
                            return None;
                        }
                        let ord = a.get(i).sql_cmp(&b.get(i)).expect("same class compares");
                        Some(apply_cmp(op, ord))
                    })
                    .collect(),
            )
        }
    }
}

/// Column-vs-literal comparison with typed fast paths. `flipped` means
/// the literal is on the left (`lit OP col`), so the ordering reverses.
fn col_lit_mask(op: BinaryOp, col: &Column, lit: &Value, idx: &[u32], flipped: bool) -> Mask {
    let orient = |ord: Ordering| if flipped { ord.reverse() } else { ord };
    match (col, lit) {
        // Numeric columns vs numeric literal: sql_cmp merges the numeric
        // domain through f64 total_cmp — mirror that exactly.
        (Column::Int64 { values, valid }, _) => {
            let litf = lit.as_f64().expect("numeric class");
            idx.iter()
                .map(|&i| {
                    let i = i as usize;
                    if !valid[i] {
                        return None;
                    }
                    Some(apply_cmp(op, orient((values[i] as f64).total_cmp(&litf))))
                })
                .collect()
        }
        (Column::Float64 { values, valid }, _) => {
            let litf = lit.as_f64().expect("numeric class");
            idx.iter()
                .map(|&i| {
                    let i = i as usize;
                    if !valid[i] {
                        return None;
                    }
                    Some(apply_cmp(op, orient(values[i].total_cmp(&litf))))
                })
                .collect()
        }
        (Column::Date { values, valid }, Value::Date(d)) => idx
            .iter()
            .map(|&i| {
                let i = i as usize;
                if !valid[i] {
                    return None;
                }
                Some(apply_cmp(op, orient(values[i].cmp(d))))
            })
            .collect(),
        (
            Column::Str {
                dict, codes, valid, ..
            },
            Value::Str(s),
        ) => {
            // One comparison per distinct dictionary entry.
            let hits: Vec<bool> = dict
                .iter()
                .map(|e| apply_cmp(op, orient(e.as_ref().cmp(s.as_ref()))))
                .collect();
            idx.iter()
                .map(|&i| {
                    let i = i as usize;
                    if valid[i] {
                        Some(hits[codes[i] as usize])
                    } else {
                        None
                    }
                })
                .collect()
        }
        (Column::Bool { values, valid }, Value::Bool(x)) => idx
            .iter()
            .map(|&i| {
                let i = i as usize;
                if !valid[i] {
                    return None;
                }
                Some(apply_cmp(op, orient(values[i].cmp(x))))
            })
            .collect(),
        // Class check upstream makes this unreachable, but fall back to
        // the generic scalar comparison rather than panic.
        _ => idx
            .iter()
            .map(|&i| {
                let v = col.get(i as usize);
                if v.is_null() {
                    return None;
                }
                let ord = v.sql_cmp(lit).expect("same class compares");
                Some(apply_cmp(op, orient(ord)))
            })
            .collect(),
    }
}

/// Compute the surviving physical row indices for `predicate` over the
/// window `idx`, with error behavior matching the row engine's
/// row-by-row evaluation order.
pub(crate) fn filter_indices(
    predicate: &BoundExpr,
    b: &ColumnarBatch,
    idx: &[u32],
) -> Result<Vec<u32>> {
    if let Some(mask) = fast_mask(predicate, b, idx) {
        return Ok(idx
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m == Some(true))
            .map(|(&i, _)| i)
            .collect());
    }
    // Hybrid AND/OR: vectorize the error-free side, run the other side's
    // scalar mirror only on the rows where the row engine would have
    // evaluated it (Kleene short-circuit), preserving error order.
    if let BoundExpr::Binary { op, lhs, rhs } = predicate {
        if *op == BinaryOp::And || *op == BinaryOp::Or {
            if let Some(lmask) = fast_mask(lhs, b, idx) {
                return hybrid_filter(*op, &lmask, rhs, b, idx, true);
            }
            if let Some(rmask) = fast_mask(rhs, b, idx) {
                return hybrid_filter(*op, &rmask, lhs, b, idx, false);
            }
        }
    }
    let mut out = Vec::new();
    for &i in idx {
        if eval_scalar(predicate, b, i as usize)?.is_true() {
            out.push(i);
        }
    }
    Ok(out)
}

/// One side of an AND/OR is a precomputed error-free mask, the other is
/// evaluated row-at-a-time. `mask_is_lhs` tells which operand the mask
/// came from, which determines the short-circuit direction.
#[allow(clippy::needless_range_loop)]
fn hybrid_filter(
    op: BinaryOp,
    mask: &Mask,
    slow: &BoundExpr,
    b: &ColumnarBatch,
    idx: &[u32],
    mask_is_lhs: bool,
) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    for k in 0..idx.len() {
        let i = idx[k] as usize;
        let m = mask[k];
        match (op, mask_is_lhs) {
            (BinaryOp::And, true) => {
                // Row engine: lhs false short-circuits; otherwise rhs is
                // evaluated (even under a NULL lhs) and may error.
                if m == Some(false) {
                    continue;
                }
                let r = eval_scalar(slow, b, i)?;
                let rb = as_tv(&r)?;
                if m == Some(true) && rb == Some(true) {
                    out.push(idx[k]);
                }
            }
            (BinaryOp::And, false) => {
                // Row engine evaluates lhs first; false short-circuits
                // before the (error-free) rhs would run.
                let l = eval_scalar(slow, b, i)?;
                if l == Value::Bool(false) {
                    continue;
                }
                let lb = as_tv(&l)?;
                if lb == Some(true) && m == Some(true) {
                    out.push(idx[k]);
                }
            }
            (BinaryOp::Or, true) => {
                // lhs true short-circuits; otherwise rhs decides.
                if m == Some(true) {
                    out.push(idx[k]);
                    continue;
                }
                let r = eval_scalar(slow, b, i)?;
                if as_tv(&r)? == Some(true) {
                    out.push(idx[k]);
                }
            }
            (BinaryOp::Or, false) => {
                let l = eval_scalar(slow, b, i)?;
                if l == Value::Bool(true) {
                    out.push(idx[k]);
                    continue;
                }
                let lb = as_tv(&l)?;
                if lb == Some(true) || m == Some(true) {
                    out.push(idx[k]);
                }
            }
            _ => unreachable!("hybrid_filter only handles AND/OR"),
        }
    }
    Ok(out)
}

/// Evaluate a projection expression into a column over the rows `idx`.
/// Plain column references gather (or share) the input column; anything
/// else goes through the scalar mirror and re-sniffs a typed layout.
fn eval_column(e: &BoundExpr, b: &ColumnarBatch, idx: &[u32]) -> Result<Column> {
    match e {
        BoundExpr::Column(c) if *c < b.arity() => {
            if idx.len() == b.len() && idx.iter().enumerate().all(|(k, &i)| k == i as usize) {
                Ok(b.column(*c).clone())
            } else {
                Ok(b.column(*c).gather(idx))
            }
        }
        BoundExpr::Literal(v) => Ok(Column::from_values(vec![v.clone(); idx.len()])),
        _ => {
            let mut values = Vec::with_capacity(idx.len());
            for &i in idx {
                values.push(eval_scalar(e, b, i as usize)?);
            }
            Ok(Column::from_values(values))
        }
    }
}

// ---------------------------------------------------------------------
// Join and aggregate kernels.
// ---------------------------------------------------------------------

/// Radix partition count for the hash join. Partitioning keys off the
/// *high* fingerprint bits so the low bits — which the per-partition
/// hash maps use for bucket selection — stay fully diverse within a
/// partition.
const JOIN_PARTITIONS: usize = 16;
const JOIN_PARTITION_SHIFT: u32 = 60;

#[inline]
fn join_partition(fp: u64) -> usize {
    (fp >> JOIN_PARTITION_SHIFT) as usize
}

/// Pre-resolved join-key comparator: for the common single-column case
/// where both sides carry the same fixed-width layout, candidate
/// verification compares raw slices instead of dispatching through
/// [`Column::eq_at`] per candidate. Only consulted for rows whose keys
/// are non-NULL (the build and probe loops skip NULL keys first), where
/// raw equality coincides with [`Column::eq_at`]'s typed arms.
#[derive(Clone, Copy)]
enum KeyEq<'a> {
    Int64(&'a [i64], &'a [i64]),
    Date(&'a [i32], &'a [i32]),
    General,
}

impl<'a> KeyEq<'a> {
    fn resolve(
        lb: &'a ColumnarBatch,
        lidx: &[usize],
        rb: &'a ColumnarBatch,
        ridx: &[usize],
    ) -> Self {
        if let (&[lc], &[rc]) = (lidx, ridx) {
            match (lb.column(lc), rb.column(rc)) {
                (Column::Int64 { values: a, .. }, Column::Int64 { values: b, .. }) => {
                    return KeyEq::Int64(a, b);
                }
                (Column::Date { values: a, .. }, Column::Date { values: b, .. }) => {
                    return KeyEq::Date(a, b);
                }
                _ => {}
            }
        }
        KeyEq::General
    }
}

/// Radix-partitioned hash join, morsel-parallel on both sides, with
/// output bit-identical to the sequential build/probe it replaced:
///
/// * **Build** — key fingerprints and NULL masks are precomputed for
///   both sides in one typed pass per key column
///   ([`ColumnarBatch::key_fingerprints`]); build-side morsels then
///   scatter `(fingerprint, row)` entries
///   into [`JOIN_PARTITIONS`] partitions; then one
///   task per partition folds the morsels' entries *in morsel order*
///   into a pre-sized fingerprint-keyed table. A fingerprint lands in
///   exactly one partition, so each candidate list sees its rows in
///   build-input order — the row engine's match order.
/// * **Probe** — probe-side morsels scan their rows in order against the
///   partition tables (candidates verified with typed
///   [`Column::eq_at`], so hash collisions cost time, never
///   correctness), and the per-morsel match lists concatenate in morsel
///   sequence order. The resulting `(left, right)` pair list is exactly
///   the sequential probe's.
/// * **Materialize** — output columns gather in parallel (one task per
///   column), and the residual filter runs morsel-parallel with
///   first-error-wins ordering.
#[allow(clippy::too_many_arguments)]
fn execute_hash_join_columnar(
    plan: &PhysicalPlan,
    left_keys: &[String],
    right_keys: &[String],
    filter: Option<&geoqp_expr::ScalarExpr>,
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<ColBatch> {
    let (left, right) = (&plan.inputs[0], &plan.inputs[1]);
    let lbatch = execute_fragment_columnar(left, source, ship, exchange)?;
    let rbatch = execute_fragment_columnar(right, source, ship, exchange)?;
    let runner = exchange.runner();

    let lidx: Vec<usize> = left_keys
        .iter()
        .map(|k| left.schema.require_index(k))
        .collect::<Result<_>>()?;
    let ridx: Vec<usize> = right_keys
        .iter()
        .map(|k| right.schema.require_index(k))
        .collect::<Result<_>>()?;
    let bound_filter = filter.map(|f| bind(f, &plan.schema)).transpose()?;

    // Key fingerprints and NULL-key masks for both sides, computed in
    // one typed pass per key column (NULL keys never join: SQL
    // semantics). Morsel loops below only load from these arrays.
    let lb = &lbatch.batch;
    let rb = &rbatch.batch;
    let (lfps, llive) = lb.key_fingerprints(&lidx);
    let (rfps, rlive) = rb.key_fingerprints(&ridx);
    let keq = KeyEq::resolve(lb, &lidx, rb, &ridx);

    // Build on the left input: each morsel scatters its rows'
    // fingerprints into radix partitions.
    let bounds = morsel_bounds(lbatch.n_rows(), runner.morsel_rows());
    let scattered: Vec<[Vec<(u64, u32)>; JOIN_PARTITIONS]> =
        parallel_map(runner, bounds.len(), |m| {
            let (lo, hi) = bounds[m];
            let mut parts: [Vec<(u64, u32)>; JOIN_PARTITIONS] = std::array::from_fn(|_| Vec::new());
            for k in lo..hi {
                let i = lbatch.phys(k);
                if !llive[i] {
                    continue;
                }
                let fp = lfps[i];
                parts[join_partition(fp)].push((fp, i as u32));
            }
            parts
        });

    // One table per partition, pre-sized from the scatter counts and
    // filled in morsel order so candidate lists keep build-input order.
    let tables: Vec<FpMap<Vec<u32>>> = parallel_map(runner, JOIN_PARTITIONS, |p| {
        let total: usize = scattered.iter().map(|s| s[p].len()).sum();
        let mut table: FpMap<Vec<u32>> =
            HashMap::with_capacity_and_hasher(total, FpBuild::default());
        for s in &scattered {
            for &(fp, li) in &s[p] {
                table.entry(fp).or_default().push(li);
            }
        }
        table
    });

    // Probe with the right input in morsel order; fingerprint candidates
    // are verified with typed value comparisons, so hash collisions
    // cannot produce wrong matches.
    let pbounds = morsel_bounds(rbatch.n_rows(), runner.morsel_rows());
    let matches: Vec<(Vec<u32>, Vec<u32>)> = parallel_map(runner, pbounds.len(), |m| {
        let (lo, hi) = pbounds[m];
        let mut out_l: Vec<u32> = Vec::new();
        let mut out_r: Vec<u32> = Vec::new();
        for k in lo..hi {
            let i = rbatch.phys(k);
            if !rlive[i] {
                continue;
            }
            let fp = rfps[i];
            if let Some(candidates) = tables[join_partition(fp)].get(&fp) {
                for &li in candidates {
                    let ok = match keq {
                        KeyEq::Int64(a, b) => a[li as usize] == b[i],
                        KeyEq::Date(a, b) => a[li as usize] == b[i],
                        KeyEq::General => lidx
                            .iter()
                            .zip(&ridx)
                            .all(|(&lc, &rc)| lb.column(lc).eq_at(li as usize, rb.column(rc), i)),
                    };
                    if ok {
                        out_l.push(li);
                        out_r.push(i as u32);
                    }
                }
            }
        }
        (out_l, out_r)
    });
    let n_matches: usize = matches.iter().map(|(l, _)| l.len()).sum();
    let mut out_left: Vec<u32> = Vec::with_capacity(n_matches);
    let mut out_right: Vec<u32> = Vec::with_capacity(n_matches);
    for (l, r) in matches {
        out_left.extend_from_slice(&l);
        out_right.extend_from_slice(&r);
    }

    // Materialize the joined batch: left columns then right columns,
    // gathered in parallel (one task per output column).
    let arity = lb.arity() + rb.arity();
    let joined = if arity == 0 {
        ColumnarBatch::from_rows(&vec![Vec::new(); out_left.len()], 0)
    } else {
        let columns = parallel_map(runner, arity, |j| {
            if j < lb.arity() {
                lb.column(j).gather(&out_left)
            } else {
                rb.column(j - lb.arity()).gather(&out_right)
            }
        });
        ColumnarBatch::from_columns(columns)
    };

    // Residual filter runs over the joined schema, like the row engine.
    let sel = match &bound_filter {
        None => None,
        Some(f) => {
            let idx: Vec<u32> = (0..joined.len() as u32).collect();
            Some(Arc::new(filter_indices_morsel(runner, f, &joined, &idx)?))
        }
    };
    Ok(ColBatch {
        batch: Arc::new(joined),
        sel,
    })
}

fn execute_hash_aggregate_columnar(
    plan: &PhysicalPlan,
    group_by: &[String],
    aggs: &[geoqp_expr::AggCall],
    source: &dyn DataSource,
    ship: &mut dyn ShipHandler,
    exchange: &dyn ExchangeSource,
) -> Result<ColBatch> {
    let input = &plan.inputs[0];
    let in_batch = execute_fragment_columnar(input, source, ship, exchange)?;
    let gidx: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema.require_index(g))
        .collect::<Result<_>>()?;

    let bound: Vec<BoundAgg> = aggs
        .iter()
        .map(|a| {
            let arg = a.arg.as_ref().map(|e| bind(e, &input.schema)).transpose()?;
            let int_sum = match &a.arg {
                Some(e) => e.data_type(&input.schema)? == DataType::Int64,
                None => false,
            };
            Ok(BoundAgg {
                func: a.func,
                arg,
                int_sum,
            })
        })
        .collect::<Result<_>>()?;

    // Evaluate every aggregate argument column-at-a-time up front
    // (computed expressions split into morsels; the chunks rejoin before
    // type sniffing, so the columns match sequential evaluation exactly).
    let runner = exchange.runner();
    let idx = in_batch.indices();
    let b = &in_batch.batch;
    let args: Vec<Option<Column>> = bound
        .iter()
        .map(|agg| {
            agg.arg
                .as_ref()
                .map(|e| eval_column_morsel(runner, e, b, &idx))
                .transpose()
        })
        .collect::<Result<_>>()?;

    // Group-key fingerprints, morsel-parallel (pure computation).
    let fbounds = morsel_bounds(idx.len(), runner.morsel_rows());
    let fps: Vec<u64> = parallel_map(runner, fbounds.len(), |m| {
        let (lo, hi) = fbounds[m];
        idx[lo..hi]
            .iter()
            .map(|&i| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &c in &gidx {
                    h = mix_fingerprint(h, b.column(c).fingerprint_at(i as usize));
                }
                h
            })
            .collect::<Vec<u64>>()
    })
    .concat();

    // Group by key fingerprint; candidate slots are verified against the
    // stored key values. When any aggregate is order-sensitive (float
    // SUM/AVG accumulate in non-associative f64 adds), rows feed the
    // accumulators sequentially in input order, exactly like the row
    // engine. When every aggregate is order-insensitive, morsels
    // accumulate partial groups in parallel and merge in morsel order —
    // provably the same result (see `Accumulator::merge`).
    let parallel_groups = runner.workers() > 1
        && fbounds.len() > 1
        && bound.iter().all(BoundAgg::order_insensitive)
        && !bound.is_empty();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = if parallel_groups {
        type LocalGroups = Vec<(u64, Vec<Value>, Vec<Accumulator>)>;
        let locals: Vec<Result<LocalGroups>> = parallel_map(runner, fbounds.len(), |m| {
            let (lo, hi) = fbounds[m];
            let mut slots: FpMap<Vec<usize>> = FpMap::default();
            let mut local: LocalGroups = Vec::new();
            for k in lo..hi {
                let i = idx[k] as usize;
                let fp = fps[k];
                let candidates = slots.entry(fp).or_default();
                let slot = candidates
                    .iter()
                    .copied()
                    .find(|&s| {
                        gidx.iter()
                            .enumerate()
                            .all(|(j, &c)| local[s].1[j] == b.column(c).get(i))
                    })
                    .unwrap_or_else(|| {
                        let key: Vec<Value> = gidx.iter().map(|&c| b.column(c).get(i)).collect();
                        local.push((fp, key, bound.iter().map(BoundAgg::new_acc).collect()));
                        candidates.push(local.len() - 1);
                        local.len() - 1
                    });
                let accs = &mut local[slot].2;
                for (a, agg) in bound.iter().enumerate() {
                    let value = args[a].as_ref().map(|col| col.get(k));
                    agg.apply(&mut accs[a], value)?;
                }
            }
            Ok(local)
        });
        // Merge morsel-local groups in morsel order: groups appear in
        // global first-appearance order (as sequentially), and partial
        // accumulators fold in input-range order.
        let mut slots: FpMap<Vec<usize>> = FpMap::default();
        let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        for local in first_error(locals)? {
            for (fp, key, accs) in local {
                let candidates = slots.entry(fp).or_default();
                match candidates.iter().copied().find(|&s| groups[s].0 == key) {
                    Some(s) => {
                        for (dst, src) in groups[s].1.iter_mut().zip(accs) {
                            dst.merge(src);
                        }
                    }
                    None => {
                        groups.push((key, accs));
                        candidates.push(groups.len() - 1);
                    }
                }
            }
        }
        groups
    } else {
        let mut slots: FpMap<Vec<usize>> = FpMap::default();
        let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        for (k, &i) in idx.iter().enumerate() {
            let i = i as usize;
            let fp = fps[k];
            let candidates = slots.entry(fp).or_default();
            let slot = candidates
                .iter()
                .copied()
                .find(|&s| {
                    gidx.iter()
                        .enumerate()
                        .all(|(j, &c)| groups[s].0[j] == b.column(c).get(i))
                })
                .unwrap_or_else(|| {
                    let key: Vec<Value> = gidx.iter().map(|&c| b.column(c).get(i)).collect();
                    groups.push((key, bound.iter().map(BoundAgg::new_acc).collect()));
                    candidates.push(groups.len() - 1);
                    groups.len() - 1
                });
            let accs = &mut groups[slot].1;
            for (a, agg) in bound.iter().enumerate() {
                let value = args[a].as_ref().map(|col| col.get(k));
                agg.apply(&mut accs[a], value)?;
            }
        }
        groups
    };

    // SQL: a global aggregate over empty input yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.push((vec![], bound.iter().map(BoundAgg::new_acc).collect()));
    }

    // The same single explicit final sort as the row engine.
    sort_group_keys(&mut groups);

    let rows: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.iter().map(Accumulator::finish));
            key
        })
        .collect();
    Ok(ColBatch::all(Arc::new(ColumnarBatch::from_rows(
        &rows,
        plan.schema.len(),
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, LocalShip, MapSource};
    use geoqp_common::{Field, Location, Schema, TableRef};
    use geoqp_expr::ScalarExpr;

    fn loc(n: &str) -> Location {
        Location::new(n)
    }

    fn scan_node(table: &str, location: &str, fields: Vec<Field>) -> Arc<PhysicalPlan> {
        Arc::new(
            PhysicalPlan::new(
                PhysOp::Scan {
                    table: TableRef::bare(table),
                },
                Arc::new(Schema::new(fields).unwrap()),
                loc(location),
                vec![],
            )
            .unwrap(),
        )
    }

    fn source() -> MapSource {
        let mut s = MapSource::new();
        s.insert(
            TableRef::bare("customer"),
            loc("N"),
            Rows::from_rows(vec![
                vec![Value::Int64(1), Value::str("alice"), Value::Float64(100.0)],
                vec![Value::Int64(2), Value::str("bob"), Value::Float64(200.0)],
                vec![Value::Int64(3), Value::str("carol"), Value::Float64(300.0)],
                vec![Value::Null, Value::str("nobody"), Value::Null],
            ]),
        );
        s.insert(
            TableRef::bare("orders"),
            loc("N"),
            Rows::from_rows(vec![
                vec![Value::Int64(1), Value::Float64(10.0)],
                vec![Value::Int64(1), Value::Float64(20.0)],
                vec![Value::Int64(2), Value::Float64(5.0)],
                vec![Value::Null, Value::Float64(99.0)],
            ]),
        );
        s
    }

    fn customer_scan() -> Arc<PhysicalPlan> {
        scan_node(
            "customer",
            "N",
            vec![
                Field::new("custkey", DataType::Int64),
                Field::new("name", DataType::Str),
                Field::new("acctbal", DataType::Float64),
            ],
        )
    }

    fn orders_scan() -> Arc<PhysicalPlan> {
        scan_node(
            "orders",
            "N",
            vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("o_price", DataType::Float64),
            ],
        )
    }

    /// Row engine and columnar engine must agree row-for-row (order
    /// included) on every plan in these tests.
    fn assert_engines_agree(plan: &PhysicalPlan) {
        let row = execute(plan, &source(), &mut LocalShip).unwrap();
        let col = execute_columnar(plan, &source(), &mut LocalShip).unwrap();
        assert_eq!(row, col);
    }

    #[test]
    fn filter_produces_selection_not_materialization() {
        let scan = customer_scan();
        let schema = Arc::clone(&scan.schema);
        let plan = PhysicalPlan::new(
            PhysOp::Filter {
                predicate: ScalarExpr::col("acctbal").gt(ScalarExpr::lit(150.0)),
            },
            schema,
            loc("N"),
            vec![scan],
        )
        .unwrap();
        let out = execute_fragment_columnar(&plan, &source(), &mut LocalShip, &NoExchange).unwrap();
        assert!(out.sel.is_some(), "filter must return a selection vector");
        assert_eq!(out.n_rows(), 2);
        assert_engines_agree(&plan);
    }

    #[test]
    fn join_and_residual_filter_agree_with_row_engine() {
        let c = customer_scan();
        let o = orders_scan();
        let schema = Arc::new(c.schema.join(&o.schema).unwrap());
        let join = PhysicalPlan::new(
            PhysOp::HashJoin {
                left_keys: vec!["custkey".into()],
                right_keys: vec!["o_custkey".into()],
                filter: Some(ScalarExpr::col("o_price").gt(ScalarExpr::lit(9.0))),
            },
            schema,
            loc("N"),
            vec![c, o],
        )
        .unwrap();
        assert_engines_agree(&join);
    }

    #[test]
    fn aggregate_ordering_matches_row_engine_sort() {
        let o = orders_scan();
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("total", DataType::Float64),
                Field::new("n", DataType::Int64),
            ])
            .unwrap(),
        );
        let agg = PhysicalPlan::new(
            PhysOp::HashAggregate {
                group_by: vec!["o_custkey".into()],
                aggs: vec![
                    geoqp_expr::AggCall::new(
                        geoqp_expr::AggFunc::Sum,
                        ScalarExpr::col("o_price"),
                        "total",
                    ),
                    geoqp_expr::AggCall::count_star("n"),
                ],
            },
            schema,
            loc("N"),
            vec![o],
        )
        .unwrap();
        assert_engines_agree(&agg);
    }

    #[test]
    fn sort_limit_union_project_agree() {
        let c = customer_scan();
        let schema = Arc::clone(&c.schema);
        let sort = Arc::new(
            PhysicalPlan::new(
                PhysOp::Sort {
                    keys: vec![SortKey::desc("acctbal")],
                },
                Arc::clone(&schema),
                loc("N"),
                vec![c],
            )
            .unwrap(),
        );
        let limit = Arc::new(
            PhysicalPlan::new(
                PhysOp::Limit { fetch: 2 },
                Arc::clone(&schema),
                loc("N"),
                vec![sort],
            )
            .unwrap(),
        );
        let union = Arc::new(
            PhysicalPlan::new(
                PhysOp::Union,
                Arc::clone(&schema),
                loc("N"),
                vec![Arc::clone(&limit), customer_scan()],
            )
            .unwrap(),
        );
        let project = PhysicalPlan::new(
            PhysOp::Project {
                exprs: vec![
                    (ScalarExpr::col("name"), "name".into()),
                    (
                        ScalarExpr::col("acctbal").mul(ScalarExpr::lit(2.0)),
                        "dbl".into(),
                    ),
                ],
            },
            Arc::new(
                Schema::new(vec![
                    Field::new("name", DataType::Str),
                    Field::new("dbl", DataType::Float64),
                ])
                .unwrap(),
            ),
            loc("N"),
            vec![union],
        )
        .unwrap();
        assert_engines_agree(&project);
    }

    #[test]
    fn complex_predicates_agree_including_nulls() {
        // Exercises fast masks (cmp, IN, BETWEEN, LIKE, IS NULL, AND/OR)
        // and the hybrid fallback, over a table with NULL keys.
        let preds = vec![
            ScalarExpr::col("acctbal")
                .gt(ScalarExpr::lit(50.0))
                .and(ScalarExpr::col("custkey").lt(ScalarExpr::lit(3i64))),
            ScalarExpr::col("name").like("%o%"),
            ScalarExpr::col("custkey").in_list(vec![Value::Int64(1), Value::Int64(3)]),
            ScalarExpr::col("acctbal").between(ScalarExpr::lit(150.0), ScalarExpr::lit(350.0)),
            ScalarExpr::col("acctbal").is_null(),
            ScalarExpr::col("acctbal")
                .is_null()
                .or(ScalarExpr::col("name").eq(ScalarExpr::lit(Value::str("bob")))),
            // Arithmetic forces the scalar fallback path.
            ScalarExpr::col("acctbal")
                .add(ScalarExpr::lit(1.0))
                .gt(ScalarExpr::lit(200.0)),
            // Hybrid: fast lhs, slow rhs.
            ScalarExpr::col("custkey").gt(ScalarExpr::lit(0i64)).and(
                ScalarExpr::col("acctbal")
                    .mul(ScalarExpr::lit(2.0))
                    .lt(ScalarExpr::lit(500.0)),
            ),
        ];
        for p in preds {
            let scan = customer_scan();
            let schema = Arc::clone(&scan.schema);
            let plan = PhysicalPlan::new(
                PhysOp::Filter {
                    predicate: p.clone(),
                },
                schema,
                loc("N"),
                vec![scan],
            )
            .unwrap();
            let row = execute(&plan, &source(), &mut LocalShip).unwrap();
            let col = execute_columnar(&plan, &source(), &mut LocalShip).unwrap();
            assert_eq!(row, col, "predicate {p:?} diverged");
        }
    }

    #[test]
    fn division_by_zero_errors_in_both_engines() {
        let scan = customer_scan();
        let schema = Arc::clone(&scan.schema);
        let plan = PhysicalPlan::new(
            PhysOp::Filter {
                predicate: ScalarExpr::col("custkey")
                    .div(ScalarExpr::lit(0i64))
                    .gt(ScalarExpr::lit(0i64)),
            },
            schema,
            loc("N"),
            vec![scan],
        )
        .unwrap();
        let row = execute(&plan, &source(), &mut LocalShip).unwrap_err();
        let col = execute_columnar(&plan, &source(), &mut LocalShip).unwrap_err();
        assert_eq!(row.to_string(), col.to_string());
    }
}
