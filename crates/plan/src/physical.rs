//! Located physical plans.
//!
//! The two-phase optimizer's output: every operator carries the location it
//! executes at, and cross-location dataflow is explicit via [`PhysOp::Ship`]
//! nodes (the paper's SHIP operator). The executor interprets this tree
//! directly, charging every Ship to the network simulator.

use crate::logical::{LogicalPlan, SortKey};
use geoqp_common::{GeoError, Location, LocationSet, Result, Schema, TableRef};
use geoqp_expr::{AggCall, ScalarExpr};
use std::sync::Arc;

/// The physical operator kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Scan a base table (leaf).
    Scan {
        /// The table.
        table: TableRef,
    },
    /// Filter rows.
    Filter {
        /// Predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// Compute output expressions.
    Project {
        /// `(expression, output name)` pairs.
        exprs: Vec<(ScalarExpr, String)>,
    },
    /// Hash inner equi-join (build = left, probe = right) with an optional
    /// residual filter evaluated over the concatenated row.
    HashJoin {
        /// Left key columns.
        left_keys: Vec<String>,
        /// Right key columns.
        right_keys: Vec<String>,
        /// Residual condition.
        filter: Option<ScalarExpr>,
    },
    /// Hash aggregation.
    HashAggregate {
        /// Group columns.
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// In-memory sort.
    Sort {
        /// Keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// Row limit.
    Limit {
        /// Row budget.
        fetch: usize,
    },
    /// Bag union of same-schema inputs.
    Union,
    /// Transfer the input's rows from its location to this node's location.
    /// The only operator whose input location differs from its own.
    Ship,
    /// Resume from a checkpointed intermediate result (leaf): read the
    /// retained output of an already-completed subtree instead of
    /// recomputing it after a failover re-plan. The node carries what the
    /// Definition-1 checker needs to re-audit the resume edge without
    /// consulting the checkpoint store: the replaced subtree's logical
    /// content (for AR4 policy augmentation above it) and its derived
    /// shipping trait `𝒮` — the sites where the checkpoint may legally
    /// live. The node's own location (the checkpoint's home) must be
    /// inside that trait.
    ResumeScan {
        /// Canonical fingerprint of the checkpointed subtree.
        fingerprint: u64,
        /// The subtree's shipping trait `𝒮` at checkpoint time.
        legal: LocationSet,
        /// The subtree's logical content.
        logical: Arc<LogicalPlan>,
    },
}

impl PhysOp {
    /// Short name for display.
    pub fn name(&self) -> &'static str {
        match self {
            PhysOp::Scan { .. } => "Scan",
            PhysOp::Filter { .. } => "Filter",
            PhysOp::Project { .. } => "Project",
            PhysOp::HashJoin { .. } => "HashJoin",
            PhysOp::HashAggregate { .. } => "HashAggregate",
            PhysOp::Sort { .. } => "Sort",
            PhysOp::Limit { .. } => "Limit",
            PhysOp::Union => "Union",
            PhysOp::Ship => "Ship",
            PhysOp::ResumeScan { .. } => "ResumeScan",
        }
    }
}

/// One node of a located physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The operator.
    pub op: PhysOp,
    /// Output schema.
    pub schema: Arc<Schema>,
    /// Where this operator executes. For [`PhysOp::Ship`], the destination.
    pub location: Location,
    /// Children, in order.
    pub inputs: Vec<Arc<PhysicalPlan>>,
}

impl PhysicalPlan {
    /// Create a node, validating arity.
    pub fn new(
        op: PhysOp,
        schema: Arc<Schema>,
        location: Location,
        inputs: Vec<Arc<PhysicalPlan>>,
    ) -> Result<PhysicalPlan> {
        let arity_ok = match &op {
            PhysOp::Scan { .. } | PhysOp::ResumeScan { .. } => inputs.is_empty(),
            PhysOp::HashJoin { .. } => inputs.len() == 2,
            PhysOp::Union => !inputs.is_empty(),
            _ => inputs.len() == 1,
        };
        if !arity_ok {
            return Err(GeoError::Plan(format!(
                "{} has wrong arity {}",
                op.name(),
                inputs.len()
            )));
        }
        // Non-Ship operators execute where their inputs' outputs are.
        if !matches!(op, PhysOp::Ship) {
            for i in &inputs {
                if i.location != location {
                    return Err(GeoError::Plan(format!(
                        "{} at {} consumes input at {} without a Ship",
                        op.name(),
                        location,
                        i.location
                    )));
                }
            }
        }
        Ok(PhysicalPlan {
            op,
            schema,
            location,
            inputs,
        })
    }

    /// Wrap `input` in a Ship to `to`. No-op when already there.
    pub fn ship(input: Arc<PhysicalPlan>, to: Location) -> Arc<PhysicalPlan> {
        if input.location == to {
            return input;
        }
        Arc::new(PhysicalPlan {
            op: PhysOp::Ship,
            schema: Arc::clone(&input.schema),
            location: to,
            inputs: vec![input],
        })
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&PhysicalPlan)) {
        f(self);
        for c in &self.inputs {
            c.visit(f);
        }
    }

    /// Number of Ship operators in the plan.
    pub fn ship_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if matches!(p.op, PhysOp::Ship) {
                n += 1;
            }
        });
        n
    }

    /// All `(from, to)` transfers performed by the plan.
    pub fn transfers(&self) -> Vec<(Location, Location)> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if matches!(p.op, PhysOp::Ship) {
                out.push((p.inputs[0].location.clone(), p.location.clone()));
            }
        });
        out
    }

    /// Total operator count.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field};

    fn scan(loc: &str) -> Arc<PhysicalPlan> {
        Arc::new(
            PhysicalPlan::new(
                PhysOp::Scan {
                    table: TableRef::bare("t"),
                },
                Arc::new(Schema::new(vec![Field::new("a", DataType::Int64)]).unwrap()),
                Location::new(loc),
                vec![],
            )
            .unwrap(),
        )
    }

    #[test]
    fn ship_is_identity_at_same_location() {
        let s = scan("E");
        let same = PhysicalPlan::ship(Arc::clone(&s), Location::new("E"));
        assert_eq!(same.ship_count(), 0);
        let moved = PhysicalPlan::ship(s, Location::new("A"));
        assert_eq!(moved.ship_count(), 1);
        assert_eq!(
            moved.transfers(),
            vec![(Location::new("E"), Location::new("A"))]
        );
    }

    #[test]
    fn location_mismatch_without_ship_is_rejected() {
        let s = scan("E");
        let schema = Arc::clone(&s.schema);
        let err = PhysicalPlan::new(
            PhysOp::Filter {
                predicate: ScalarExpr::col("a").gt(ScalarExpr::lit(0i64)),
            },
            schema,
            Location::new("A"),
            vec![s],
        )
        .unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn arity_validation() {
        let s = scan("E");
        let schema = Arc::clone(&s.schema);
        assert!(PhysicalPlan::new(
            PhysOp::HashJoin {
                left_keys: vec![],
                right_keys: vec![],
                filter: None
            },
            schema,
            Location::new("E"),
            vec![s],
        )
        .is_err());
    }
}
