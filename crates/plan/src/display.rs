//! Indented tree rendering of logical and physical plans, in the style of
//! the paper's QEP figures (Figure 1, Figure 5).

use crate::logical::LogicalPlan;
use crate::physical::{PhysOp, PhysicalPlan};
use std::fmt::Write as _;

/// Render a logical plan as an indented tree.
pub fn display_logical(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    fmt_logical(plan, 0, &mut out);
    out
}

fn fmt_logical(plan: &LogicalPlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match plan {
        LogicalPlan::TableScan {
            table, location, ..
        } => {
            let _ = writeln!(out, "{pad}TableScan: {table} @ {location}");
        }
        LogicalPlan::Filter { predicate, .. } => {
            let _ = writeln!(out, "{pad}Filter: {predicate}");
        }
        LogicalPlan::Project { exprs, .. } => {
            let items: Vec<String> = exprs
                .iter()
                .map(|(e, n)| {
                    if e.as_column() == Some(n.as_str()) {
                        n.clone()
                    } else {
                        format!("{e} AS {n}")
                    }
                })
                .collect();
            let _ = writeln!(out, "{pad}Project: {}", items.join(", "));
        }
        LogicalPlan::Join { on, filter, .. } => {
            let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
            let extra = filter
                .as_ref()
                .map(|f| format!(" AND {f}"))
                .unwrap_or_default();
            let _ = writeln!(out, "{pad}Join: {}{extra}", keys.join(", "));
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let aggs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(
                out,
                "{pad}Aggregate: group=[{}] aggs=[{}]",
                group_by.join(", "),
                aggs.join(", ")
            );
        }
        LogicalPlan::Union { .. } => {
            let _ = writeln!(out, "{pad}Union");
        }
        LogicalPlan::Sort { keys, .. } => {
            let keys: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.column, if k.descending { " DESC" } else { "" }))
                .collect();
            let _ = writeln!(out, "{pad}Sort: {}", keys.join(", "));
        }
        LogicalPlan::Limit { fetch, .. } => {
            let _ = writeln!(out, "{pad}Limit: {fetch}");
        }
    }
    for c in plan.children() {
        fmt_logical(c, depth + 1, out);
    }
}

/// Render a located physical plan as an indented tree; SHIP operators show
/// `from → to` like the paper's `SHIP_{N→E}` notation.
pub fn display_physical(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    fmt_physical(plan, 0, &mut out);
    out
}

fn fmt_physical(plan: &PhysicalPlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let loc = &plan.location;
    match &plan.op {
        PhysOp::Scan { table } => {
            let _ = writeln!(out, "{pad}Scan: {table} @ {loc}");
        }
        PhysOp::Filter { predicate } => {
            let _ = writeln!(out, "{pad}Filter: {predicate} @ {loc}");
        }
        PhysOp::Project { exprs } => {
            let items: Vec<String> = exprs
                .iter()
                .map(|(e, n)| {
                    if e.as_column() == Some(n.as_str()) {
                        n.clone()
                    } else {
                        format!("{e} AS {n}")
                    }
                })
                .collect();
            let _ = writeln!(out, "{pad}Project: {} @ {loc}", items.join(", "));
        }
        PhysOp::HashJoin {
            left_keys,
            right_keys,
            filter,
        } => {
            let keys: Vec<String> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(l, r)| format!("{l} = {r}"))
                .collect();
            let extra = filter
                .as_ref()
                .map(|f| format!(" AND {f}"))
                .unwrap_or_default();
            let _ = writeln!(out, "{pad}HashJoin: {}{extra} @ {loc}", keys.join(", "));
        }
        PhysOp::HashAggregate { group_by, aggs } => {
            let aggs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(
                out,
                "{pad}HashAggregate: group=[{}] aggs=[{}] @ {loc}",
                group_by.join(", "),
                aggs.join(", ")
            );
        }
        PhysOp::Sort { keys } => {
            let keys: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.column, if k.descending { " DESC" } else { "" }))
                .collect();
            let _ = writeln!(out, "{pad}Sort: {} @ {loc}", keys.join(", "));
        }
        PhysOp::Limit { fetch } => {
            let _ = writeln!(out, "{pad}Limit: {fetch} @ {loc}");
        }
        PhysOp::Union => {
            let _ = writeln!(out, "{pad}Union @ {loc}");
        }
        PhysOp::Ship => {
            let from = &plan.inputs[0].location;
            let _ = writeln!(out, "{pad}Ship: {from} → {loc}");
        }
        PhysOp::ResumeScan {
            fingerprint, legal, ..
        } => {
            let _ = writeln!(
                out,
                "{pad}ResumeScan: #{fingerprint:016x} legal={legal} @ {loc}"
            );
        }
    }
    for c in &plan.inputs {
        fmt_physical(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use geoqp_common::{DataType, Field, Location, Schema, TableRef};
    use geoqp_expr::ScalarExpr;

    #[test]
    fn logical_rendering_contains_operators() {
        let plan = PlanBuilder::scan(
            TableRef::bare("customer"),
            Location::new("N"),
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("name", DataType::Str),
            ])
            .unwrap(),
        )
        .filter(ScalarExpr::col("custkey").gt(ScalarExpr::lit(5i64)))
        .unwrap()
        .project_columns(&["name"])
        .unwrap()
        .build();
        let s = display_logical(&plan);
        assert!(s.contains("Project: name"));
        assert!(s.contains("Filter: (custkey > 5)"));
        assert!(s.contains("TableScan: customer @ N"));
        // Deeper operators are indented further.
        let proj_line = s.lines().next().unwrap();
        assert!(proj_line.starts_with("Project"));
    }
}
