//! Extraction of *local query descriptors* from single-database subplans.
//!
//! Algorithm 1 (paper Section 5) evaluates a policy catalog against a query
//! summary consisting of the output attributes `A_q`, the predicate `P_q`,
//! and — for aggregation queries — the grouping attributes `G_q` and the
//! aggregate function `f_a` per aggregated attribute. This module derives
//! that summary from a logical subplan whose scans all read the same
//! database (equivalently, the same location, since the paper assumes one
//! database per location).
//!
//! Extraction is **conservative**: any shape the summary language cannot
//! express (HAVING-style filters over aggregates, aggregates of aggregates,
//! expressions over aggregate results, `COUNT(*)`, multi-database inputs)
//! yields `None`, which the policy evaluator treats as "cannot be shipped
//! anywhere". A failed description can therefore never cause an illegal
//! shipment — it can only make the optimizer more restrictive.

use crate::logical::LogicalPlan;
use geoqp_common::{Location, TableRef};
use geoqp_expr::{AggFunc, ScalarExpr};
use std::collections::{BTreeMap, BTreeSet};

/// What the output of a local query looks like, attribute-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputShape {
    /// A select–project query: these base attributes appear in the output.
    Plain {
        /// `A_q`.
        attrs: BTreeSet<String>,
    },
    /// An aggregation query.
    Aggregated {
        /// `G_q` — the base attributes the query groups by.
        group_attrs: BTreeSet<String>,
        /// Base attributes appearing inside aggregate arguments, with the
        /// aggregate function applied to each (`f_a`). Attributes that were
        /// grouped *and* survive to the output appear in
        /// [`OutputShape::Aggregated::group_attrs`] and in `A_q` but not
        /// here.
        agg_attrs: BTreeMap<String, AggFunc>,
        /// Group attributes that actually appear in the output (a grouped
        /// attribute may be projected away above the aggregation).
        output_group_attrs: BTreeSet<String>,
    },
}

impl OutputShape {
    /// `A_q`: every base attribute appearing in the query's output
    /// expressions.
    pub fn output_attrs(&self) -> BTreeSet<String> {
        match self {
            OutputShape::Plain { attrs } => attrs.clone(),
            OutputShape::Aggregated {
                agg_attrs,
                output_group_attrs,
                ..
            } => {
                let mut out = output_group_attrs.clone();
                out.extend(agg_attrs.keys().cloned());
                out
            }
        }
    }

    /// True for aggregation queries.
    pub fn is_aggregated(&self) -> bool {
        matches!(self, OutputShape::Aggregated { .. })
    }
}

/// The `(tables, location, P_q, A_q/G_q/f_a)` summary of a single-database
/// subplan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalQuery {
    /// Base tables read (multi-table local queries arise when one site
    /// hosts several tables, e.g. Customer and Orders at L1 in Table 2).
    pub tables: BTreeSet<TableRef>,
    /// The single source location.
    pub location: Location,
    /// `P_q` expressed over base attributes (filters plus join conditions).
    pub predicate: Option<ScalarExpr>,
    /// Output shape.
    pub output: OutputShape,
}

/// Where an output column of the walked subplan comes from.
#[derive(Debug, Clone)]
enum Origin {
    /// A (possibly renamed) base attribute.
    Base(String),
    /// Computed from these base attributes, pre-aggregation.
    Derived(BTreeSet<String>),
    /// The result of an aggregate call over these base attributes.
    AggResult {
        attrs: BTreeSet<String>,
        func: AggFunc,
    },
}

impl Origin {
    fn base_attrs(&self) -> BTreeSet<String> {
        match self {
            Origin::Base(b) => std::iter::once(b.clone()).collect(),
            Origin::Derived(s) => s.clone(),
            Origin::AggResult { attrs, .. } => attrs.clone(),
        }
    }
}

#[derive(Debug, Clone)]
struct State {
    tables: BTreeSet<TableRef>,
    location: Location,
    cols: BTreeMap<String, Origin>,
    predicate: Option<ScalarExpr>,
    agg: Option<AggState>,
}

#[derive(Debug, Clone)]
struct AggState {
    group_attrs: BTreeSet<String>,
}

/// Derive the local-query descriptor of a subplan, or `None` when the
/// subplan is not a describable single-database query.
pub fn describe_local(plan: &LogicalPlan) -> Option<LocalQuery> {
    let state = walk(plan)?;
    let output = match &state.agg {
        None => {
            let mut attrs = BTreeSet::new();
            for origin in state.cols.values() {
                attrs.extend(origin.base_attrs());
            }
            OutputShape::Plain { attrs }
        }
        Some(agg) => {
            let mut output_group_attrs = BTreeSet::new();
            let mut out_agg_attrs: BTreeMap<String, AggFunc> = BTreeMap::new();
            for origin in state.cols.values() {
                match origin {
                    Origin::Base(b) => {
                        output_group_attrs.insert(b.clone());
                    }
                    Origin::AggResult { attrs, func } => {
                        for a in attrs {
                            out_agg_attrs.insert(a.clone(), *func);
                        }
                    }
                    // Derived post-aggregation origins are rejected during
                    // the walk; pre-aggregation derived columns can only
                    // survive as aggregate inputs.
                    Origin::Derived(_) => return None,
                }
            }
            OutputShape::Aggregated {
                group_attrs: agg.group_attrs.clone(),
                agg_attrs: out_agg_attrs,
                output_group_attrs,
            }
        }
    };
    Some(LocalQuery {
        tables: state.tables,
        location: state.location,
        predicate: state.predicate,
        output,
    })
}

fn walk(plan: &LogicalPlan) -> Option<State> {
    match plan {
        LogicalPlan::TableScan {
            table,
            location,
            schema,
        } => {
            let cols = schema
                .fields()
                .iter()
                .map(|f| (f.name.clone(), Origin::Base(f.name.clone())))
                .collect();
            Some(State {
                tables: std::iter::once(table.clone()).collect(),
                location: location.clone(),
                cols,
                predicate: None,
                agg: None,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut state = walk(input)?;
            if state.agg.is_some() {
                // HAVING-style filter over aggregates: not expressible.
                return None;
            }
            let rewritten = rewrite_to_base(predicate, &state.cols)?;
            state.predicate = match state.predicate.take() {
                None => Some(rewritten),
                Some(p) => Some(p.and(rewritten)),
            };
            Some(state)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let state = walk(input)?;
            let mut cols = BTreeMap::new();
            for (e, name) in exprs {
                let origin = match e {
                    ScalarExpr::Column(c) => state.cols.get(c)?.clone(),
                    complex => {
                        let mut attrs = BTreeSet::new();
                        for c in complex.referenced_columns() {
                            match state.cols.get(&c)? {
                                Origin::Base(b) => {
                                    attrs.insert(b.clone());
                                }
                                Origin::Derived(s) => attrs.extend(s.iter().cloned()),
                                // Expressions over aggregate results are
                                // outside the summary language.
                                Origin::AggResult { .. } => return None,
                            }
                        }
                        Origin::Derived(attrs)
                    }
                };
                cols.insert(name.clone(), origin);
            }
            Some(State { cols, ..state })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let state = walk(input)?;
            if state.agg.is_some() {
                return None; // aggregate of aggregate
            }
            let mut group_attrs = BTreeSet::new();
            let mut cols = BTreeMap::new();
            for g in group_by {
                match state.cols.get(g)? {
                    Origin::Base(b) => {
                        group_attrs.insert(b.clone());
                        cols.insert(g.clone(), Origin::Base(b.clone()));
                    }
                    // Grouping by a derived expression is not expressible.
                    _ => return None,
                }
            }
            let mut agg_funcs: BTreeMap<String, AggFunc> = BTreeMap::new();
            for call in aggs {
                let arg = call.arg.as_ref()?; // COUNT(*) is not expressible
                let mut attrs = BTreeSet::new();
                for c in arg.referenced_columns() {
                    match state.cols.get(&c)? {
                        Origin::Base(b) => {
                            attrs.insert(b.clone());
                        }
                        Origin::Derived(s) => attrs.extend(s.iter().cloned()),
                        Origin::AggResult { .. } => return None,
                    }
                }
                for a in &attrs {
                    match agg_funcs.get(a) {
                        // The paper assumes one aggregate function per
                        // attribute (Section 5, footnote 5).
                        Some(f) if *f != call.func => return None,
                        _ => {
                            agg_funcs.insert(a.clone(), call.func);
                        }
                    }
                }
                cols.insert(
                    call.alias.clone(),
                    Origin::AggResult {
                        attrs,
                        func: call.func,
                    },
                );
            }
            Some(State {
                cols,
                agg: Some(AggState { group_attrs }),
                ..state
            })
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            filter,
            ..
        } => {
            let l = walk(left)?;
            let r = walk(right)?;
            if l.location != r.location || l.agg.is_some() || r.agg.is_some() {
                // Cross-database joins are never local queries; joins above
                // aggregations are outside the summary language.
                return None;
            }
            let mut cols = l.cols;
            for (name, origin) in r.cols {
                cols.insert(name, origin);
            }
            let mut predicate = match (l.predicate, r.predicate) {
                (None, None) => None,
                (Some(p), None) | (None, Some(p)) => Some(p),
                (Some(a), Some(b)) => Some(a.and(b)),
            };
            // Join keys become equality atoms over base attributes
            // (footnote 4: multi-table policy expressions carry the join
            // predicate in their WHERE clause).
            for (lk, rk) in on {
                let la = base_of(&cols, lk)?;
                let ra = base_of(&cols, rk)?;
                let atom = ScalarExpr::col(la).eq(ScalarExpr::col(ra));
                predicate = Some(match predicate {
                    None => atom,
                    Some(p) => p.and(atom),
                });
            }
            if let Some(f) = filter {
                let rewritten = rewrite_to_base(f, &cols)?;
                predicate = Some(match predicate {
                    None => rewritten,
                    Some(p) => p.and(rewritten),
                });
            }
            let mut tables = l.tables;
            tables.extend(r.tables);
            Some(State {
                tables,
                location: l.location,
                cols,
                predicate,
                agg: None,
            })
        }
        // Sorting never changes which data is shipped; limiting only ships
        // a subset of legal rows. Both are sound pass-throughs.
        LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => walk(input),
        LogicalPlan::Union { .. } => None,
    }
}

/// Resolve an output column to its base attribute, requiring identity
/// provenance.
fn base_of(cols: &BTreeMap<String, Origin>, name: &str) -> Option<String> {
    match cols.get(name)? {
        Origin::Base(b) => Some(b.clone()),
        _ => None,
    }
}

/// Rewrite a predicate so that every column reference names a base
/// attribute; fails when any referenced column is derived or aggregated.
fn rewrite_to_base(pred: &ScalarExpr, cols: &BTreeMap<String, Origin>) -> Option<ScalarExpr> {
    for c in pred.referenced_columns() {
        match cols.get(&c)? {
            Origin::Base(_) => {}
            _ => return None,
        }
    }
    Some(pred.rename_columns(&|n| match cols.get(n) {
        Some(Origin::Base(b)) => b.clone(),
        _ => n.to_string(), // unreachable: checked above
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use geoqp_common::{DataType, Field, Schema};
    use geoqp_expr::AggCall;
    use std::sync::Arc;

    fn customer() -> PlanBuilder {
        PlanBuilder::scan(
            TableRef::qualified("db-n", "customer"),
            Location::new("N"),
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("name", DataType::Str),
                Field::new("acctbal", DataType::Float64),
                Field::new("mktseg", DataType::Str),
            ])
            .unwrap(),
        )
    }

    fn orders_at_n() -> PlanBuilder {
        PlanBuilder::scan(
            TableRef::qualified("db-n", "orders"),
            Location::new("N"),
            Schema::new(vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("o_totprice", DataType::Float64),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn plain_select_project() {
        // Π_{c,n}(σ_{mktseg='commercial'}(C))
        let plan = customer()
            .filter(ScalarExpr::col("mktseg").eq(ScalarExpr::lit("commercial")))
            .unwrap()
            .project_columns(&["custkey", "name"])
            .unwrap()
            .build();
        let d = describe_local(&plan).expect("describable");
        assert_eq!(d.location, Location::new("N"));
        assert_eq!(
            d.output,
            OutputShape::Plain {
                attrs: ["custkey", "name"].iter().map(|s| s.to_string()).collect()
            }
        );
        assert!(d.predicate.is_some());
    }

    #[test]
    fn renamed_columns_resolve_to_base() {
        let plan = customer()
            .project(vec![(ScalarExpr::col("name"), "customer_name".into())])
            .unwrap()
            .filter(ScalarExpr::col("customer_name").like("A%"))
            .unwrap()
            .build();
        let d = describe_local(&plan).unwrap();
        assert_eq!(
            d.output.output_attrs().into_iter().collect::<Vec<_>>(),
            vec!["name".to_string()]
        );
        // Predicate is rewritten over the base attribute.
        assert_eq!(d.predicate.unwrap().to_string(), "(name LIKE 'A%')");
    }

    #[test]
    fn aggregation_shape() {
        // Γ_{mktseg; sum(acctbal)}(C)
        let plan = customer()
            .aggregate(
                &["mktseg"],
                vec![AggCall::new(
                    AggFunc::Sum,
                    ScalarExpr::col("acctbal"),
                    "total",
                )],
            )
            .unwrap()
            .build();
        let d = describe_local(&plan).unwrap();
        match d.output {
            OutputShape::Aggregated {
                group_attrs,
                agg_attrs,
                output_group_attrs,
            } => {
                assert_eq!(group_attrs.iter().collect::<Vec<_>>(), vec!["mktseg"]);
                assert_eq!(output_group_attrs, group_attrs);
                assert_eq!(agg_attrs.get("acctbal"), Some(&AggFunc::Sum));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn aggregate_over_expression_attributes() {
        // Γ_{C; sum(F*(1-G))}(T) — Table 1's q2: both F and G carry SUM.
        let t = PlanBuilder::scan(
            TableRef::bare("t"),
            Location::new("X"),
            Schema::new(vec![
                Field::new("c", DataType::Str),
                Field::new("f", DataType::Float64),
                Field::new("g", DataType::Float64),
            ])
            .unwrap(),
        );
        let plan = t
            .aggregate(
                &["c"],
                vec![AggCall::new(
                    AggFunc::Sum,
                    ScalarExpr::col("f").mul(ScalarExpr::lit(1i64).sub(ScalarExpr::col("g"))),
                    "revenue",
                )],
            )
            .unwrap()
            .build();
        let d = describe_local(&plan).unwrap();
        match d.output {
            OutputShape::Aggregated { agg_attrs, .. } => {
                assert_eq!(agg_attrs.get("f"), Some(&AggFunc::Sum));
                assert_eq!(agg_attrs.get("g"), Some(&AggFunc::Sum));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn count_star_is_not_describable() {
        let plan = customer()
            .aggregate(&["mktseg"], vec![AggCall::count_star("n")])
            .unwrap()
            .build();
        assert!(describe_local(&plan).is_none());
    }

    #[test]
    fn same_site_join_is_local() {
        let plan = customer()
            .join(orders_at_n(), vec![("custkey", "o_custkey")])
            .unwrap()
            .project_columns(&["name", "o_totprice"])
            .unwrap()
            .build();
        let d = describe_local(&plan).unwrap();
        assert_eq!(d.tables.len(), 2);
        // Join key equality lands in the predicate.
        assert!(d
            .predicate
            .unwrap()
            .to_string()
            .contains("custkey = o_custkey"));
    }

    #[test]
    fn cross_site_join_is_not_local() {
        let orders_e = PlanBuilder::scan(
            TableRef::qualified("db-e", "orders"),
            Location::new("E"),
            Schema::new(vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("o_totprice", DataType::Float64),
            ])
            .unwrap(),
        );
        let plan = customer()
            .join(orders_e, vec![("custkey", "o_custkey")])
            .unwrap()
            .build();
        assert!(describe_local(&plan).is_none());
    }

    #[test]
    fn having_filter_is_not_describable() {
        let agg = customer()
            .aggregate(
                &["mktseg"],
                vec![AggCall::new(
                    AggFunc::Sum,
                    ScalarExpr::col("acctbal"),
                    "total",
                )],
            )
            .unwrap();
        let plan = agg
            .filter(ScalarExpr::col("total").gt(ScalarExpr::lit(100i64)))
            .unwrap()
            .build();
        assert!(describe_local(&plan).is_none());
    }

    #[test]
    fn projection_after_aggregate_drops_group_attr() {
        let plan = customer()
            .aggregate(
                &["mktseg"],
                vec![AggCall::new(
                    AggFunc::Sum,
                    ScalarExpr::col("acctbal"),
                    "total",
                )],
            )
            .unwrap()
            .project_columns(&["total"])
            .unwrap()
            .build();
        let d = describe_local(&plan).unwrap();
        match d.output {
            OutputShape::Aggregated {
                group_attrs,
                output_group_attrs,
                agg_attrs,
            } => {
                assert!(output_group_attrs.is_empty());
                assert_eq!(group_attrs.len(), 1);
                assert!(agg_attrs.contains_key("acctbal"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn derived_projection_collects_attrs() {
        let plan = customer()
            .project(vec![(
                ScalarExpr::col("acctbal").mul(ScalarExpr::lit(2i64)),
                "double_bal".into(),
            )])
            .unwrap()
            .build();
        let d = describe_local(&plan).unwrap();
        assert_eq!(
            d.output.output_attrs().into_iter().collect::<Vec<_>>(),
            vec!["acctbal".to_string()]
        );
    }

    #[test]
    fn sort_limit_pass_through() {
        let plan = customer()
            .project_columns(&["name"])
            .unwrap()
            .sort(vec![crate::logical::SortKey::asc("name")])
            .unwrap()
            .limit(5)
            .build();
        let d = describe_local(&plan).unwrap();
        assert_eq!(
            d.output.output_attrs().into_iter().collect::<Vec<_>>(),
            vec!["name".to_string()]
        );
    }

    #[test]
    fn union_not_describable() {
        let a = customer().build();
        let b = customer().build();
        let u = Arc::new(LogicalPlan::union(vec![a, b]).unwrap());
        assert!(describe_local(&u).is_none());
    }
}
