//! Logical plan operators.

use geoqp_common::{DataType, Field, GeoError, Location, LocationSet, Result, Schema, TableRef};
use geoqp_expr::{AggCall, ScalarExpr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A sort key: column name plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SortKey {
    /// Column to sort by.
    pub column: String,
    /// Descending when true.
    pub descending: bool,
}

impl SortKey {
    /// Ascending sort key.
    pub fn asc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            descending: false,
        }
    }

    /// Descending sort key.
    pub fn desc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            descending: true,
        }
    }
}

/// A logical relational-algebra plan.
///
/// Children are reference counted so that the optimizer's rule engine can
/// share subtrees freely while enumerating alternatives. Every constructor
/// derives and validates its output schema eagerly, so a `LogicalPlan`
/// value is well-typed by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalPlan {
    /// Scan a base table stored at a fixed location.
    TableScan {
        /// The table.
        table: TableRef,
        /// Where the table lives (condition c1 of Definition 1 ties leaf
        /// compliance to this location).
        location: Location,
        /// The table's schema.
        schema: Arc<Schema>,
    },
    /// Filter rows by a boolean predicate.
    Filter {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// The predicate (boolean-typed over the input schema).
        predicate: ScalarExpr,
    },
    /// Compute output expressions (projection, masking, renaming).
    Project {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(ScalarExpr, String)>,
        /// Derived output schema.
        schema: Arc<Schema>,
    },
    /// Inner equi-join with an optional residual filter.
    Join {
        /// Left input.
        left: Arc<LogicalPlan>,
        /// Right input.
        right: Arc<LogicalPlan>,
        /// Equi-join key pairs `(left column, right column)`.
        on: Vec<(String, String)>,
        /// Residual non-equi condition over the joined schema.
        filter: Option<ScalarExpr>,
        /// Concatenated output schema.
        schema: Arc<Schema>,
    },
    /// Grouped aggregation. `group_by` lists input columns; the output
    /// schema is the group columns followed by the aggregate aliases.
    Aggregate {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Grouping columns (possibly empty for a full-table aggregate).
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Derived output schema.
        schema: Arc<Schema>,
    },
    /// Bag union of inputs with identical schemas (used when a global table
    /// is partitioned across locations, Section 7.5).
    Union {
        /// The inputs.
        inputs: Vec<Arc<LogicalPlan>>,
        /// The common schema.
        schema: Arc<Schema>,
    },
    /// Sort rows.
    Sort {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// Keep the first `fetch` rows.
    Limit {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Row budget.
        fetch: usize,
    },
}

impl LogicalPlan {
    /// Create a table scan.
    pub fn scan(table: TableRef, location: Location, schema: Schema) -> LogicalPlan {
        LogicalPlan::TableScan {
            table,
            location,
            schema: Arc::new(schema),
        }
    }

    /// Create a filter, validating that the predicate is boolean over the
    /// input schema.
    pub fn filter(input: Arc<LogicalPlan>, predicate: ScalarExpr) -> Result<LogicalPlan> {
        let t = predicate.data_type(input.schema())?;
        if t != DataType::Bool {
            return Err(GeoError::Plan(format!(
                "filter predicate must be BOOLEAN, got {t}: {predicate}"
            )));
        }
        Ok(LogicalPlan::Filter { input, predicate })
    }

    /// Create a projection; output names must be unique.
    pub fn project(
        input: Arc<LogicalPlan>,
        exprs: Vec<(ScalarExpr, String)>,
    ) -> Result<LogicalPlan> {
        let mut fields = Vec::with_capacity(exprs.len());
        for (e, name) in &exprs {
            fields.push(Field::new(name.clone(), e.data_type(input.schema())?));
        }
        let schema = Schema::new(fields)?;
        Ok(LogicalPlan::Project {
            input,
            exprs,
            schema: Arc::new(schema),
        })
    }

    /// Convenience: project bare columns, keeping their names.
    pub fn project_columns(input: Arc<LogicalPlan>, columns: &[&str]) -> Result<LogicalPlan> {
        let exprs = columns
            .iter()
            .map(|c| (ScalarExpr::col(*c), c.to_string()))
            .collect();
        LogicalPlan::project(input, exprs)
    }

    /// Create an inner equi-join. Key columns must exist on their sides and
    /// be mutually comparable; the residual filter must be boolean over the
    /// concatenated schema.
    pub fn join(
        left: Arc<LogicalPlan>,
        right: Arc<LogicalPlan>,
        on: Vec<(String, String)>,
        filter: Option<ScalarExpr>,
    ) -> Result<LogicalPlan> {
        if on.is_empty() && filter.is_none() {
            return Err(GeoError::Plan(
                "join requires at least one key pair or a residual filter".into(),
            ));
        }
        let schema = left.schema().join(right.schema())?;
        for (l, r) in &on {
            let lf = left
                .schema()
                .field_by_name(l)
                .ok_or_else(|| GeoError::Plan(format!("left join key `{l}` not found")))?;
            let rf = right
                .schema()
                .field_by_name(r)
                .ok_or_else(|| GeoError::Plan(format!("right join key `{r}` not found")))?;
            if !lf.data_type.comparable_with(rf.data_type) {
                return Err(GeoError::Plan(format!(
                    "join keys `{l}` ({}) and `{r}` ({}) are incomparable",
                    lf.data_type, rf.data_type
                )));
            }
        }
        if let Some(f) = &filter {
            let t = f.data_type(&schema)?;
            if t != DataType::Bool {
                return Err(GeoError::Plan(format!(
                    "join filter must be BOOLEAN, got {t}"
                )));
            }
        }
        Ok(LogicalPlan::Join {
            left,
            right,
            on,
            filter,
            schema: Arc::new(schema),
        })
    }

    /// Create a grouped aggregation. Group columns must exist; aggregate
    /// aliases must not collide with group columns or each other.
    pub fn aggregate(
        input: Arc<LogicalPlan>,
        group_by: Vec<String>,
        aggs: Vec<AggCall>,
    ) -> Result<LogicalPlan> {
        if aggs.is_empty() {
            return Err(GeoError::Plan(
                "aggregate requires at least one aggregate call".into(),
            ));
        }
        let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
        for g in &group_by {
            let f = input
                .schema()
                .field_by_name(g)
                .ok_or_else(|| GeoError::Plan(format!("group-by column `{g}` not found")))?;
            fields.push(f.clone());
        }
        for a in &aggs {
            fields.push(Field::new(a.alias.clone(), a.result_type(input.schema())?));
        }
        let schema = Schema::new(fields)?;
        Ok(LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema: Arc::new(schema),
        })
    }

    /// Create a bag union; all inputs must share one schema.
    pub fn union(inputs: Vec<Arc<LogicalPlan>>) -> Result<LogicalPlan> {
        let first = inputs
            .first()
            .ok_or_else(|| GeoError::Plan("union requires at least one input".into()))?;
        let schema = first.schema_ref();
        for i in &inputs[1..] {
            if i.schema() != schema.as_ref() {
                return Err(GeoError::Plan(format!(
                    "union inputs have mismatched schemas: {} vs {}",
                    schema,
                    i.schema()
                )));
            }
        }
        Ok(LogicalPlan::Union { inputs, schema })
    }

    /// Create a sort, validating key columns.
    pub fn sort(input: Arc<LogicalPlan>, keys: Vec<SortKey>) -> Result<LogicalPlan> {
        for k in &keys {
            input.schema().require_index(&k.column)?;
        }
        Ok(LogicalPlan::Sort { input, keys })
    }

    /// Create a limit.
    pub fn limit(input: Arc<LogicalPlan>, fetch: usize) -> LogicalPlan {
        LogicalPlan::Limit { input, fetch }
    }

    /// The plan's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::TableScan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Union { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Shared reference to the output schema.
    pub fn schema_ref(&self) -> Arc<Schema> {
        match self {
            LogicalPlan::TableScan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Union { schema, .. } => Arc::clone(schema),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema_ref(),
        }
    }

    /// Child plans, in order.
    pub fn children(&self) -> Vec<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::TableScan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::Union { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Short operator name for display.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::TableScan { .. } => "TableScan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Union { .. } => "Union",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
        }
    }

    /// All base tables referenced by the plan.
    pub fn tables(&self) -> BTreeSet<TableRef> {
        let mut out = BTreeSet::new();
        self.visit(&mut |p| {
            if let LogicalPlan::TableScan { table, .. } = p {
                out.insert(table.clone());
            }
        });
        out
    }

    /// The set of source locations the plan reads from.
    pub fn source_locations(&self) -> LocationSet {
        let mut out = LocationSet::new();
        self.visit(&mut |p| {
            if let LogicalPlan::TableScan { location, .. } = p {
                out.insert(location.clone());
            }
        });
        out
    }

    /// Number of join operators in the plan (the paper's query-complexity
    /// measure `j`).
    pub fn join_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if matches!(p, LogicalPlan::Join { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Total operator count.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&LogicalPlan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Rebuild this node with new children (same arity and order as
    /// [`LogicalPlan::children`]). Used by generic plan rewrites.
    pub fn with_children(&self, mut children: Vec<Arc<LogicalPlan>>) -> Result<LogicalPlan> {
        let expect = self.children().len();
        if children.len() != expect {
            return Err(GeoError::Plan(format!(
                "with_children arity mismatch: expected {expect}, got {}",
                children.len()
            )));
        }
        Ok(match self {
            LogicalPlan::TableScan { .. } => self.clone(),
            LogicalPlan::Filter { predicate, .. } => {
                LogicalPlan::filter(children.pop().unwrap(), predicate.clone())?
            }
            LogicalPlan::Project { exprs, .. } => {
                LogicalPlan::project(children.pop().unwrap(), exprs.clone())?
            }
            LogicalPlan::Join { on, filter, .. } => {
                let right = children.pop().unwrap();
                let left = children.pop().unwrap();
                LogicalPlan::join(left, right, on.clone(), filter.clone())?
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                LogicalPlan::aggregate(children.pop().unwrap(), group_by.clone(), aggs.clone())?
            }
            LogicalPlan::Union { .. } => LogicalPlan::union(children)?,
            LogicalPlan::Sort { keys, .. } => {
                LogicalPlan::sort(children.pop().unwrap(), keys.clone())?
            }
            LogicalPlan::Limit { fetch, .. } => LogicalPlan::limit(children.pop().unwrap(), *fetch),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_expr::AggFunc;

    fn customer() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::scan(
            TableRef::qualified("db-n", "customer"),
            Location::new("N"),
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("name", DataType::Str),
                Field::new("acctbal", DataType::Float64),
            ])
            .unwrap(),
        ))
    }

    fn orders() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::scan(
            TableRef::qualified("db-e", "orders"),
            Location::new("E"),
            Schema::new(vec![
                Field::new("o_custkey", DataType::Int64),
                Field::new("ordkey", DataType::Int64),
                Field::new("totprice", DataType::Float64),
            ])
            .unwrap(),
        ))
    }

    #[test]
    fn filter_validates_type() {
        let c = customer();
        assert!(LogicalPlan::filter(
            Arc::clone(&c),
            ScalarExpr::col("acctbal").gt(ScalarExpr::lit(0i64))
        )
        .is_ok());
        assert!(LogicalPlan::filter(Arc::clone(&c), ScalarExpr::col("acctbal")).is_err());
        assert!(LogicalPlan::filter(c, ScalarExpr::col("nope").is_null()).is_err());
    }

    #[test]
    fn project_derives_schema() {
        let p = LogicalPlan::project(
            customer(),
            vec![
                (ScalarExpr::col("name"), "name".into()),
                (
                    ScalarExpr::col("acctbal").mul(ScalarExpr::lit(2i64)),
                    "double_bal".into(),
                ),
            ],
        )
        .unwrap();
        assert_eq!(p.schema().names(), vec!["name", "double_bal"]);
        assert_eq!(p.schema().field(1).data_type, DataType::Float64);
    }

    #[test]
    fn join_produces_concatenated_schema() {
        let j = LogicalPlan::join(
            customer(),
            orders(),
            vec![("custkey".into(), "o_custkey".into())],
            None,
        )
        .unwrap();
        assert_eq!(j.schema().len(), 6);
        assert_eq!(j.join_count(), 1);
        assert_eq!(j.source_locations().len(), 2);
        assert_eq!(j.tables().len(), 2);
    }

    #[test]
    fn join_rejects_bad_keys() {
        assert!(LogicalPlan::join(
            customer(),
            orders(),
            vec![("name".into(), "o_custkey".into())],
            None
        )
        .is_err());
        assert!(LogicalPlan::join(
            customer(),
            orders(),
            vec![("missing".into(), "o_custkey".into())],
            None
        )
        .is_err());
        assert!(LogicalPlan::join(customer(), orders(), vec![], None).is_err());
    }

    #[test]
    fn aggregate_schema_is_groups_then_aggs() {
        let a = LogicalPlan::aggregate(
            customer(),
            vec!["name".into()],
            vec![AggCall::new(
                AggFunc::Sum,
                ScalarExpr::col("acctbal"),
                "total",
            )],
        )
        .unwrap();
        assert_eq!(a.schema().names(), vec!["name", "total"]);
        assert!(LogicalPlan::aggregate(customer(), vec![], vec![]).is_err());
        assert!(LogicalPlan::aggregate(
            customer(),
            vec!["ghost".into()],
            vec![AggCall::count_star("n")]
        )
        .is_err());
    }

    #[test]
    fn union_requires_same_schema() {
        let u = LogicalPlan::union(vec![customer(), customer()]).unwrap();
        assert_eq!(u.schema().len(), 3);
        assert!(LogicalPlan::union(vec![customer(), orders()]).is_err());
        assert!(LogicalPlan::union(vec![]).is_err());
    }

    #[test]
    fn with_children_round_trip() {
        let j = LogicalPlan::join(
            customer(),
            orders(),
            vec![("custkey".into(), "o_custkey".into())],
            None,
        )
        .unwrap();
        let kids: Vec<_> = j.children().into_iter().cloned().collect();
        let rebuilt = j.with_children(kids).unwrap();
        assert_eq!(rebuilt, j);
        assert!(j.with_children(vec![customer()]).is_err());
    }

    #[test]
    fn node_count_counts_all() {
        let j = LogicalPlan::join(
            customer(),
            orders(),
            vec![("custkey".into(), "o_custkey".into())],
            None,
        )
        .unwrap();
        assert_eq!(j.node_count(), 3);
    }

    #[test]
    fn sort_and_limit_pass_schema_through() {
        let s = LogicalPlan::sort(customer(), vec![SortKey::desc("acctbal")]).unwrap();
        assert_eq!(s.schema().len(), 3);
        let l = LogicalPlan::limit(Arc::new(s), 10);
        assert_eq!(l.schema().len(), 3);
        assert!(LogicalPlan::sort(customer(), vec![SortKey::asc("nope")]).is_err());
    }
}
