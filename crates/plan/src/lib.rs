//! # geoqp-plan
//!
//! Logical and physical relational algebra for the `geoqp` workspace.
//!
//! * [`logical`] — the logical plan operators the optimizer enumerates over
//!   (scan, filter, project, join, aggregate, union, sort, limit),
//! * [`builder`] — a validating plan builder used by the SQL lowering and
//!   the TPC-H query definitions,
//! * [`descriptor`] — extraction of a *local query descriptor* from a
//!   single-database subplan; this is the `(A_q, P_q, G_q, f_a)` summary
//!   that Algorithm 1 (paper Section 5) evaluates policies against,
//! * [`physical`] — located physical plans with explicit SHIP operators,
//!   the output of the two-phase optimizer and the input of the executor,
//! * [`display`] — indented tree rendering used by EXPLAIN-style output.

pub mod builder;
pub mod descriptor;
pub mod display;
pub mod logical;
pub mod physical;

pub use builder::PlanBuilder;
pub use descriptor::{LocalQuery, OutputShape};
pub use logical::{LogicalPlan, SortKey};
pub use physical::{PhysOp, PhysicalPlan};
