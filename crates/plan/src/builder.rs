//! A fluent, validating builder for logical plans.

use crate::logical::{LogicalPlan, SortKey};
use geoqp_common::{Location, Result, Schema, TableRef};
use geoqp_expr::{AggCall, ScalarExpr};
use std::sync::Arc;

/// Fluent builder over [`LogicalPlan`]. Each step validates eagerly, so an
/// invalid query fails at construction with a precise message rather than
/// at execution.
///
/// ```
/// use geoqp_common::{DataType, Field, Location, Schema, TableRef};
/// use geoqp_expr::ScalarExpr;
/// use geoqp_plan::PlanBuilder;
///
/// let schema = Schema::new(vec![
///     Field::new("custkey", DataType::Int64),
///     Field::new("name", DataType::Str),
/// ]).unwrap();
/// let plan = PlanBuilder::scan(TableRef::bare("customer"), Location::new("EU"), schema)
///     .filter(ScalarExpr::col("custkey").gt(ScalarExpr::lit(10i64))).unwrap()
///     .project_columns(&["name"]).unwrap()
///     .build();
/// assert_eq!(plan.schema().names(), vec!["name"]);
/// ```
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: Arc<LogicalPlan>,
}

impl PlanBuilder {
    /// Start from an existing plan.
    pub fn from_plan(plan: Arc<LogicalPlan>) -> PlanBuilder {
        PlanBuilder { plan }
    }

    /// Start from a table scan.
    pub fn scan(table: TableRef, location: Location, schema: Schema) -> PlanBuilder {
        PlanBuilder {
            plan: Arc::new(LogicalPlan::scan(table, location, schema)),
        }
    }

    /// Add a filter.
    pub fn filter(self, predicate: ScalarExpr) -> Result<PlanBuilder> {
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::filter(self.plan, predicate)?),
        })
    }

    /// Add a projection of arbitrary expressions.
    pub fn project(self, exprs: Vec<(ScalarExpr, String)>) -> Result<PlanBuilder> {
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::project(self.plan, exprs)?),
        })
    }

    /// Add a projection of bare columns.
    pub fn project_columns(self, columns: &[&str]) -> Result<PlanBuilder> {
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::project_columns(self.plan, columns)?),
        })
    }

    /// Join with another plan on equi-key pairs.
    pub fn join(self, right: PlanBuilder, on: Vec<(&str, &str)>) -> Result<PlanBuilder> {
        self.join_with_filter(right, on, None)
    }

    /// Join with equi-keys plus a residual filter.
    pub fn join_with_filter(
        self,
        right: PlanBuilder,
        on: Vec<(&str, &str)>,
        filter: Option<ScalarExpr>,
    ) -> Result<PlanBuilder> {
        let on = on
            .into_iter()
            .map(|(l, r)| (l.to_string(), r.to_string()))
            .collect();
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::join(self.plan, right.plan, on, filter)?),
        })
    }

    /// Add a grouped aggregation.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggCall>) -> Result<PlanBuilder> {
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::aggregate(
                self.plan,
                group_by.iter().map(|s| s.to_string()).collect(),
                aggs,
            )?),
        })
    }

    /// Union with other plans.
    pub fn union(self, others: Vec<PlanBuilder>) -> Result<PlanBuilder> {
        let mut inputs = vec![self.plan];
        inputs.extend(others.into_iter().map(|b| b.plan));
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::union(inputs)?),
        })
    }

    /// Add a sort.
    pub fn sort(self, keys: Vec<SortKey>) -> Result<PlanBuilder> {
        Ok(PlanBuilder {
            plan: Arc::new(LogicalPlan::sort(self.plan, keys)?),
        })
    }

    /// Add a limit.
    pub fn limit(self, fetch: usize) -> PlanBuilder {
        PlanBuilder {
            plan: Arc::new(LogicalPlan::limit(self.plan, fetch)),
        }
    }

    /// Current output schema.
    pub fn schema(&self) -> &Schema {
        self.plan.schema()
    }

    /// Finish, returning the shared plan.
    pub fn build(self) -> Arc<LogicalPlan> {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field};
    use geoqp_expr::AggFunc;

    fn scan(name: &str, loc: &str, cols: &[(&str, DataType)]) -> PlanBuilder {
        PlanBuilder::scan(
            TableRef::bare(name),
            Location::new(loc),
            Schema::new(
                cols.iter()
                    .map(|(n, t)| Field::new(*n, *t))
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn three_way_join_pipeline() {
        // The running example Q_ex from the paper's Section 2.
        let customer = scan(
            "customer",
            "N",
            &[
                ("c_custkey", DataType::Int64),
                ("c_name", DataType::Str),
                ("c_acctbal", DataType::Float64),
            ],
        );
        let orders = scan(
            "orders",
            "E",
            &[
                ("o_custkey", DataType::Int64),
                ("o_ordkey", DataType::Int64),
                ("o_totprice", DataType::Float64),
            ],
        );
        let supply = scan(
            "supply",
            "A",
            &[
                ("s_ordkey", DataType::Int64),
                ("s_quantity", DataType::Int64),
            ],
        );
        let plan = customer
            .join(orders, vec![("c_custkey", "o_custkey")])
            .unwrap()
            .join(supply, vec![("o_ordkey", "s_ordkey")])
            .unwrap()
            .aggregate(
                &["c_name"],
                vec![
                    AggCall::new(AggFunc::Sum, ScalarExpr::col("o_totprice"), "sum_price"),
                    AggCall::new(AggFunc::Sum, ScalarExpr::col("s_quantity"), "sum_qty"),
                ],
            )
            .unwrap()
            .build();
        assert_eq!(
            plan.schema().names(),
            vec!["c_name", "sum_price", "sum_qty"]
        );
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.source_locations().len(), 3);
    }

    #[test]
    fn builder_surfaces_validation_errors() {
        let c = scan("t", "X", &[("a", DataType::Int64)]);
        assert!(c.clone().filter(ScalarExpr::col("a")).is_err());
        assert!(c.clone().project_columns(&["zz"]).is_err());
        assert!(c.aggregate(&["a"], vec![]).is_err());
    }

    #[test]
    fn union_of_partitions() {
        let p1 = scan("t", "L1", &[("a", DataType::Int64)]);
        let p2 = scan("t", "L2", &[("a", DataType::Int64)]);
        let u = p1.union(vec![p2]).unwrap().build();
        assert_eq!(u.source_locations().len(), 2);
    }
}
