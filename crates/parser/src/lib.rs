//! # geoqp-parser
//!
//! A hand-written lexer and recursive-descent parser for
//!
//! * the SQL subset the paper's queries use (`SELECT`–`FROM`–`WHERE`–
//!   `GROUP BY`–`ORDER BY`–`LIMIT` with comma joins, aliases, aggregates,
//!   `LIKE` / `IN` / `BETWEEN` predicates, and date literals), and
//! * the **policy expression** statements of Section 4
//!   (`SHIP … [AS AGGREGATES …] FROM … TO … [WHERE …] [GROUP BY …]`).
//!
//! [`lowering`] turns a parsed query into a validated
//! [`LogicalPlan`](geoqp_plan::LogicalPlan) against a
//! [`Catalog`](geoqp_storage::Catalog), qualifying ambiguous columns and
//! rewriting partitioned tables into unions of their site partitions.

pub mod ast;
pub mod lexer;
pub mod lowering;
pub mod parser;
pub mod token;

pub use lowering::lower_query;
pub use parser::{parse_denial, parse_policy, parse_query};
