//! The lexer.

use crate::token::Token;
use geoqp_common::{GeoError, Result};

/// Tokenize an input string. Identifiers may contain letters, digits, `_`,
/// and `-` (so `db-1` lexes as one identifier, as the paper's Table 3
/// writes database names).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(GeoError::Parse(format!("unexpected `!` at offset {i}")));
                }
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push(Token::LtEq);
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(GeoError::Parse("unterminated string literal".into())),
                        Some('\'') => {
                            if chars.get(i + 1) == Some(&'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(ch) => {
                            s.push(*ch);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '-' => {
                // `-` between identifier characters belongs to the
                // identifier (`db-1`); otherwise it is the minus operator.
                let prev_is_ident = matches!(out.last(), Some(Token::Ident(_)));
                let next_is_ident_char = chars
                    .get(i + 1)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_');
                let no_space_before = i > 0 && !chars[i - 1].is_whitespace();
                if prev_is_ident && next_is_ident_char && no_space_before {
                    // Append to the previous identifier.
                    if let Some(Token::Ident(s)) = out.last_mut() {
                        s.push('-');
                        i += 1;
                        while i < chars.len()
                            && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                        {
                            s.push(chars[i]);
                            i += 1;
                        }
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            d if d.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| GeoError::Parse(format!("bad float `{text}`: {e}")))?;
                    out.push(Token::Float(v));
                } else {
                    let text: String = chars[start..i].iter().collect();
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| GeoError::Parse(format!("bad integer `{text}`: {e}")))?;
                    out.push(Token::Int(v));
                }
            }
            a if a.is_alphabetic() || a == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(GeoError::Parse(format!(
                    "unexpected character `{other}` at offset {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 10.5").unwrap();
        assert_eq!(toks.len(), 10);
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[9], Token::Float(10.5));
    }

    #[test]
    fn string_escaping() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn db_dash_identifiers() {
        let toks = tokenize("from db-5.nation to L3, L4").unwrap();
        assert_eq!(toks[1], Token::Ident("db-5".into()));
        assert_eq!(toks[2], Token::Dot);
        assert_eq!(toks[3], Token::Ident("nation".into()));
    }

    #[test]
    fn minus_is_operator_between_numbers() {
        let toks = tokenize("1 - 2").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Minus, Token::Int(2)]);
        // a - b with spaces: subtraction of columns.
        let toks = tokenize("a - b").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Minus);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("<> != <= >= < >").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::NotEq,
                Token::NotEq,
                Token::LtEq,
                Token::GtEq,
                Token::Lt,
                Token::Gt
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
