//! Token model.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser level).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
}

impl Token {
    /// True when the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Semi => f.write_str(";"),
        }
    }
}
