//! Lowering parsed queries to validated logical plans.

use crate::ast::{FromItem, QueryAst, SelectItem};
use geoqp_common::{GeoError, Result};
use geoqp_expr::{AggCall, ScalarExpr};
use geoqp_plan::logical::{LogicalPlan, SortKey};
use geoqp_storage::Catalog;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One resolved FROM item: its plan plus the mapping from user-visible
/// column spellings to plan column names.
struct ResolvedItem {
    alias: String,
    plan: Arc<LogicalPlan>,
    /// Plan-level column names (post-qualification).
    columns: Vec<String>,
    /// Whether this item's columns were qualified to `alias.col`.
    qualified: bool,
}

/// Lower a parsed query into a logical plan against the catalog.
///
/// * Bare table names resolving to several site partitions become a
///   `Union` of per-site scans (the paper's Section 7.5 GAV rewrite
///   `t = t_1 ∪ … ∪ t_n`).
/// * Comma joins with `WHERE` equi-predicates become a join tree built
///   greedily over connected items; remaining conjuncts become filters.
/// * Column references may be qualified (`c.name`); ambiguous bare
///   references are rejected.
pub fn lower_query(ast: &QueryAst, catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    // ---- resolve FROM items ------------------------------------------
    let mut items = Vec::with_capacity(ast.from.len());
    for f in &ast.from {
        items.push(resolve_from_item(f, catalog)?);
    }
    {
        let mut seen = BTreeSet::new();
        for it in &items {
            if !seen.insert(it.alias.clone()) {
                return Err(GeoError::Plan(format!(
                    "duplicate table alias `{}`",
                    it.alias
                )));
            }
        }
    }

    // Qualify columns of items participating in name collisions.
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for it in &items {
        for c in &it.columns {
            *counts.entry(c.as_str()).or_default() += 1;
        }
    }
    let colliding: BTreeSet<String> = counts
        .iter()
        .filter(|(_, n)| **n > 1)
        .map(|(c, _)| c.to_string())
        .collect();
    if !colliding.is_empty() {
        for it in &mut items {
            if it.columns.iter().any(|c| colliding.contains(c)) {
                let exprs: Vec<(ScalarExpr, String)> = it
                    .columns
                    .iter()
                    .map(|c| (ScalarExpr::col(c.clone()), format!("{}.{}", it.alias, c)))
                    .collect();
                it.plan = Arc::new(LogicalPlan::project(Arc::clone(&it.plan), exprs)?);
                it.columns = it
                    .plan
                    .schema()
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                it.qualified = true;
            }
        }
    }

    let resolver = Resolver::new(&items);

    // ---- split WHERE into conjuncts and rewrite column names ---------
    let mut conjuncts: Vec<ScalarExpr> = Vec::new();
    if let Some(w) = &ast.where_clause {
        for c in geoqp_expr::split_conjunction(w) {
            conjuncts.push(resolver.rewrite(c)?);
        }
    }

    // ---- greedy join tree over connected items -----------------------
    let mut remaining: Vec<ResolvedItem> = items;
    let first = remaining.remove(0);
    let mut acc = first.plan;
    let mut acc_cols: BTreeSet<String> = first.columns.into_iter().collect();

    while !remaining.is_empty() {
        // Find an item connected to the accumulated tree by an equi
        // conjunct: (item index, equi-join keys, conjunct indices used).
        type Connection = (usize, Vec<(String, String)>, Vec<usize>);
        let mut chosen: Option<Connection> = None;
        'items: for (idx, it) in remaining.iter().enumerate() {
            let item_cols: BTreeSet<String> = it.columns.iter().cloned().collect();
            let mut keys = Vec::new();
            let mut used = Vec::new();
            for (ci, c) in conjuncts.iter().enumerate() {
                if let Some((l, r)) = geoqp_expr::predicate::as_equi_join(c, &acc_cols, &item_cols)
                {
                    keys.push((l, r));
                    used.push(ci);
                }
            }
            if !keys.is_empty() {
                chosen = Some((idx, keys, used));
                break 'items;
            }
        }
        let (idx, keys, used) = chosen.ok_or_else(|| {
            GeoError::Plan(
                "FROM items are not connected by equi-join predicates (cross joins unsupported)"
                    .into(),
            )
        })?;
        // Remove consumed conjuncts (descending order keeps indices valid).
        for ci in used.iter().rev() {
            conjuncts.remove(*ci);
        }
        let it = remaining.remove(idx);
        acc_cols.extend(it.columns.iter().cloned());
        acc = Arc::new(LogicalPlan::join(acc, it.plan, keys, None)?);
    }

    // ---- residual filters --------------------------------------------
    if let Some(filter) = geoqp_expr::conjoin(conjuncts) {
        acc = Arc::new(LogicalPlan::filter(acc, filter)?);
    }

    // ---- aggregation / projection -------------------------------------
    let has_agg = ast
        .select
        .iter()
        .any(|s| matches!(s, SelectItem::Agg { .. }))
        || !ast.group_by.is_empty();

    let mut plan = if has_agg {
        let group_cols: Vec<String> = ast
            .group_by
            .iter()
            .map(|g| resolver.resolve(g))
            .collect::<Result<_>>()?;
        let mut calls = Vec::new();
        let mut output: Vec<(String, String)> = Vec::new(); // (source col, out name)
        for (i, s) in ast.select.iter().enumerate() {
            match s {
                SelectItem::Star => {
                    return Err(GeoError::Plan(
                        "SELECT * cannot be combined with aggregation".into(),
                    ))
                }
                SelectItem::Scalar { expr, alias } => {
                    let col = expr.as_column().ok_or_else(|| {
                        GeoError::Plan(format!(
                            "non-aggregate select item must be a grouping column: {expr}"
                        ))
                    })?;
                    let resolved = resolver.resolve(col)?;
                    if !group_cols.contains(&resolved) {
                        return Err(GeoError::Plan(format!(
                            "column `{col}` must appear in GROUP BY"
                        )));
                    }
                    let out = alias.clone().unwrap_or_else(|| short_name(&resolved));
                    output.push((resolved, out));
                }
                SelectItem::Agg { func, arg, alias } => {
                    let arg = arg.as_ref().map(|e| resolver.rewrite(e)).transpose()?;
                    let name = alias
                        .clone()
                        .unwrap_or_else(|| format!("{}_{}", func.to_string().to_lowercase(), i));
                    calls.push(AggCall {
                        func: *func,
                        arg,
                        alias: name.clone(),
                    });
                    output.push((name.clone(), name));
                }
            }
        }
        if calls.is_empty() {
            return Err(GeoError::Plan(
                "GROUP BY query needs at least one aggregate in SELECT".into(),
            ));
        }
        let agg = Arc::new(LogicalPlan::aggregate(acc, group_cols, calls)?);
        // Reorder/rename to the SELECT order.
        let exprs: Vec<(ScalarExpr, String)> = output
            .into_iter()
            .map(|(src, out)| (ScalarExpr::col(src), out))
            .collect();
        Arc::new(LogicalPlan::project(agg, exprs)?)
    } else if ast.select.len() == 1 && matches!(ast.select[0], SelectItem::Star) {
        acc
    } else {
        let mut exprs = Vec::new();
        for (i, s) in ast.select.iter().enumerate() {
            match s {
                SelectItem::Star => {
                    return Err(GeoError::Plan(
                        "SELECT * must be the only select item".into(),
                    ))
                }
                SelectItem::Scalar { expr, alias } => {
                    let rewritten = resolver.rewrite(expr)?;
                    let name = alias
                        .clone()
                        .unwrap_or_else(|| match rewritten.as_column() {
                            Some(c) => short_name(c),
                            None => format!("col_{i}"),
                        });
                    exprs.push((rewritten, name));
                }
                SelectItem::Agg { .. } => unreachable!("handled by has_agg"),
            }
        }
        // De-duplicate output names deterministically.
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        for (_, name) in exprs.iter_mut() {
            let n = seen.entry(name.clone()).or_insert(0);
            if *n > 0 {
                *name = format!("{name}_{n}");
            }
            *n += 1;
        }
        Arc::new(LogicalPlan::project(acc, exprs)?)
    };

    // ---- order by / limit ---------------------------------------------
    if !ast.order_by.is_empty() {
        let keys: Vec<SortKey> = ast
            .order_by
            .iter()
            .map(|(c, desc)| {
                // Prefer output names; fall back through the resolver for
                // qualified spellings.
                let name = if plan.schema().index_of(c).is_some() {
                    c.clone()
                } else {
                    resolver.resolve(c)?
                };
                Ok(SortKey {
                    column: name,
                    descending: *desc,
                })
            })
            .collect::<Result<_>>()?;
        plan = Arc::new(LogicalPlan::sort(plan, keys)?);
    }
    if let Some(n) = ast.limit {
        plan = Arc::new(LogicalPlan::limit(plan, n));
    }
    Ok(plan)
}

/// Strip a qualifier for output naming (`c.name` → `name`).
fn short_name(resolved: &str) -> String {
    match resolved.rsplit_once('.') {
        Some((_, n)) => n.to_string(),
        None => resolved.to_string(),
    }
}

fn resolve_from_item(f: &FromItem, catalog: &Catalog) -> Result<ResolvedItem> {
    let entries = catalog.resolve(&f.table);
    if entries.is_empty() {
        return Err(GeoError::Plan(format!("unknown table `{}`", f.table)));
    }
    let plan: Arc<LogicalPlan> = if entries.len() == 1 {
        let e = &entries[0];
        Arc::new(LogicalPlan::scan(
            e.table.clone(),
            e.location.clone(),
            e.schema.as_ref().clone(),
        ))
    } else {
        // Partitioned table: union of per-site scans.
        let scans: Vec<Arc<LogicalPlan>> = entries
            .iter()
            .map(|e| {
                Arc::new(LogicalPlan::scan(
                    e.table.clone(),
                    e.location.clone(),
                    e.schema.as_ref().clone(),
                ))
            })
            .collect();
        Arc::new(LogicalPlan::union(scans)?)
    };
    let alias = f.alias.clone().unwrap_or_else(|| f.table.table.clone());
    let columns = plan
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    Ok(ResolvedItem {
        alias,
        plan,
        columns,
        qualified: false,
    })
}

/// Resolves user column spellings (`name`, `c.name`) to plan column names.
struct Resolver {
    /// alias → (qualified?, columns)
    items: BTreeMap<String, (bool, BTreeSet<String>)>,
}

impl Resolver {
    fn new(items: &[ResolvedItem]) -> Resolver {
        Resolver {
            items: items
                .iter()
                .map(|it| {
                    let cols: BTreeSet<String> = if it.qualified {
                        // Store the *base* names for lookup.
                        it.columns.iter().map(|c| short_name(c)).collect()
                    } else {
                        it.columns.iter().cloned().collect()
                    };
                    (it.alias.clone(), (it.qualified, cols))
                })
                .collect(),
        }
    }

    fn resolve(&self, spelling: &str) -> Result<String> {
        if let Some((alias, col)) = spelling.split_once('.') {
            let (qualified, cols) = self.items.get(alias).ok_or_else(|| {
                GeoError::Plan(format!("unknown table alias `{alias}` in `{spelling}`"))
            })?;
            if !cols.contains(col) {
                return Err(GeoError::Plan(format!(
                    "table `{alias}` has no column `{col}`"
                )));
            }
            Ok(if *qualified {
                spelling.to_string()
            } else {
                col.to_string()
            })
        } else {
            let mut hits = Vec::new();
            for (alias, (qualified, cols)) in &self.items {
                if cols.contains(spelling) {
                    hits.push(if *qualified {
                        format!("{alias}.{spelling}")
                    } else {
                        spelling.to_string()
                    });
                }
            }
            match hits.len() {
                0 => Err(GeoError::Plan(format!("unknown column `{spelling}`"))),
                1 => Ok(hits.pop().unwrap()),
                _ => Err(GeoError::Plan(format!(
                    "ambiguous column `{spelling}`; qualify with a table alias"
                ))),
            }
        }
    }

    fn rewrite(&self, expr: &ScalarExpr) -> Result<ScalarExpr> {
        // rename_columns is infallible, so collect errors first.
        for c in expr.referenced_columns() {
            self.resolve(&c)?;
        }
        Ok(expr.rename_columns(&|n| self.resolve(n).expect("checked above")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use geoqp_common::{DataType, Field, Location, Schema};
    use geoqp_storage::TableStats;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_database("db-n", Location::new("N")).unwrap();
        c.add_database("db-e", Location::new("E")).unwrap();
        c.add_database("db-a", Location::new("A")).unwrap();
        c.add_table(
            "db-n",
            "customer",
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("name", DataType::Str),
                Field::new("acctbal", DataType::Float64),
            ])
            .unwrap(),
            TableStats::new(100, 40.0),
        )
        .unwrap();
        c.add_table(
            "db-e",
            "orders",
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("ordkey", DataType::Int64),
                Field::new("totprice", DataType::Float64),
            ])
            .unwrap(),
            TableStats::new(1000, 24.0),
        )
        .unwrap();
        c.add_table(
            "db-a",
            "supply",
            Schema::new(vec![
                Field::new("s_ordkey", DataType::Int64),
                Field::new("quantity", DataType::Int64),
            ])
            .unwrap(),
            TableStats::new(4000, 16.0),
        )
        .unwrap();
        c
    }

    #[test]
    fn lowers_running_example() {
        // Q_ex from the paper's Section 2 (custkey collides between
        // customer and orders, so both get qualified).
        let ast = parse_query(
            "SELECT C.name, SUM(O.totprice) AS sum_price, SUM(S.quantity) AS sum_qty \
             FROM Customer AS C, Orders AS O, Supply AS S \
             WHERE C.custkey = O.custkey AND O.ordkey = S.s_ordkey \
             GROUP BY C.name",
        )
        .unwrap();
        let plan = lower_query(&ast, &catalog()).unwrap();
        assert_eq!(plan.schema().names(), vec!["name", "sum_price", "sum_qty"]);
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.source_locations().len(), 3);
    }

    #[test]
    fn ambiguous_bare_column_is_rejected() {
        let ast = parse_query(
            "SELECT custkey FROM customer, orders WHERE customer.custkey = orders.custkey",
        )
        .unwrap();
        let err = lower_query(&ast, &catalog()).unwrap_err();
        assert!(err.message().contains("ambiguous"));
    }

    #[test]
    fn unconnected_items_are_rejected() {
        let ast = parse_query("SELECT name FROM customer, supply").unwrap();
        let err = lower_query(&ast, &catalog()).unwrap_err();
        assert!(err.message().contains("not connected"));
    }

    #[test]
    fn residual_filters_survive() {
        let ast = parse_query("SELECT name FROM customer WHERE acctbal > 100.0 AND name LIKE 'A%'")
            .unwrap();
        let plan = lower_query(&ast, &catalog()).unwrap();
        // Plan: Project(Filter(Scan)).
        assert_eq!(plan.schema().names(), vec!["name"]);
        let mut has_filter = false;
        plan.visit(&mut |p| {
            if matches!(p, LogicalPlan::Filter { .. }) {
                has_filter = true;
            }
        });
        assert!(has_filter);
    }

    #[test]
    fn select_star_keeps_schema() {
        let ast = parse_query("SELECT * FROM supply WHERE quantity > 5").unwrap();
        let plan = lower_query(&ast, &catalog()).unwrap();
        assert_eq!(plan.schema().names(), vec!["s_ordkey", "quantity"]);
    }

    #[test]
    fn order_by_and_limit() {
        let ast = parse_query("SELECT name, acctbal FROM customer ORDER BY acctbal DESC LIMIT 5")
            .unwrap();
        let plan = lower_query(&ast, &catalog()).unwrap();
        assert!(matches!(plan.as_ref(), LogicalPlan::Limit { fetch: 5, .. }));
    }

    #[test]
    fn non_grouped_select_item_rejected() {
        let ast =
            parse_query("SELECT name, acctbal, SUM(custkey) FROM customer GROUP BY name").unwrap();
        let err = lower_query(&ast, &catalog()).unwrap_err();
        assert!(err.message().contains("GROUP BY"));
    }

    #[test]
    fn partitioned_table_becomes_union() {
        let mut c = catalog();
        c.add_database("db-x", Location::new("X")).unwrap();
        c.add_table(
            "db-x",
            "supply",
            Schema::new(vec![
                Field::new("s_ordkey", DataType::Int64),
                Field::new("quantity", DataType::Int64),
            ])
            .unwrap(),
            TableStats::new(500, 16.0),
        )
        .unwrap();
        let ast = parse_query("SELECT * FROM supply").unwrap();
        let plan = lower_query(&ast, &c).unwrap();
        assert!(matches!(plan.as_ref(), LogicalPlan::Union { .. }));
        assert_eq!(plan.source_locations().len(), 2);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let ast = parse_query("SELECT x FROM ghost").unwrap();
        assert!(lower_query(&ast, &catalog()).is_err());
        let ast = parse_query("SELECT ghostcol FROM customer").unwrap();
        assert!(lower_query(&ast, &catalog()).is_err());
        let ast = parse_query("SELECT z.name FROM customer").unwrap();
        assert!(lower_query(&ast, &catalog()).is_err());
    }
}
