//! Abstract syntax for parsed queries.
//!
//! Scalar expressions reuse [`ScalarExpr`] directly, with possibly-qualified
//! column references encoded as `"alias.column"` strings; lowering resolves
//! them against the catalog. Aggregate calls may only appear at the top
//! level of select items, which is where the paper's query class needs them.

use geoqp_common::TableRef;
use geoqp_expr::{AggFunc, ScalarExpr};

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`
    Star,
    /// A scalar expression with an optional alias.
    Scalar {
        /// The expression.
        expr: ScalarExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate call `FUNC(expr)` / `COUNT(*)` with an optional alias.
    Agg {
        /// The function.
        func: AggFunc,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<ScalarExpr>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// One item of the `FROM` list (comma joins; join predicates live in
/// `WHERE`, as in the paper's example queries).
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The referenced table (`db.table` or bare).
    pub table: TableRef,
    /// Optional alias (`Customer AS C` or `Customer C`).
    pub alias: Option<String>,
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAst {
    /// Select list.
    pub select: Vec<SelectItem>,
    /// From list.
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_clause: Option<ScalarExpr>,
    /// `GROUP BY` columns (possibly qualified).
    pub group_by: Vec<String>,
    /// `ORDER BY` columns with descending flags.
    pub order_by: Vec<(String, bool)>,
    /// `LIMIT`.
    pub limit: Option<usize>,
}
