//! Recursive-descent parsers for queries and policy expressions.

use crate::ast::{FromItem, QueryAst, SelectItem};
use crate::lexer::tokenize;
use crate::token::Token;
use geoqp_common::{
    value::days_from_civil, GeoError, LocationPattern, LocationSet, Result, TableRef, Value,
};
use geoqp_expr::{AggFunc, BinaryOp, ScalarExpr};
use geoqp_policy::{PolicyExpression, ShipAttrs};

/// Parse a `SELECT` query.
pub fn parse_query(sql: &str) -> Result<QueryAst> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parse a policy expression
/// (`SHIP … [AS AGGREGATES …] FROM … TO … [WHERE …] [GROUP BY …]`).
pub fn parse_policy(text: &str) -> Result<PolicyExpression> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.policy()?;
    p.expect_end()?;
    Ok(e)
}

/// Parse a *negative* policy statement
/// (`DENY SHIP <attrs|*> FROM <table> TO <locations|*> [WHERE …]`),
/// expanded into positive grants by
/// [`expand_denials`](geoqp_policy::expand_denials).
pub fn parse_denial(text: &str) -> Result<geoqp_policy::DenyExpression> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect_kw("deny")?;
    let e = p.policy()?;
    p.expect_end()?;
    match e.kind {
        geoqp_policy::PolicyKind::Basic => Ok(geoqp_policy::DenyExpression::new(
            e.table,
            e.attrs,
            e.to,
            e.predicate,
        )),
        _ => Err(GeoError::Parse(
            "denials cannot carry AS AGGREGATES / GROUP BY clauses".into(),
        )),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(GeoError::Parse(format!(
                "expected `{kw}`, found {}",
                self.describe_here()
            )))
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(GeoError::Parse(format!(
                "expected `{tok}`, found {}",
                self.describe_here()
            )))
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(t) => format!("`{t}`"),
            None => "end of input".to_string(),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        // Allow a trailing semicolon.
        self.eat(&Token::Semi);
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(GeoError::Parse(format!(
                "unexpected trailing input at {}",
                self.describe_here()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(GeoError::Parse(format!(
                "expected identifier, found {:?}",
                other
            ))),
        }
    }

    /// `name` or `qualifier.name`, joined with a dot and lower-cased.
    fn qualified_name(&mut self) -> Result<String> {
        let first = self.ident()?.to_ascii_lowercase();
        if self.eat(&Token::Dot) {
            let second = self.ident()?.to_ascii_lowercase();
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    // ---------------------------------------------------------- queries

    fn query(&mut self) -> Result<QueryAst> {
        self.expect_kw("select")?;
        let mut select = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            select.push(self.select_item()?);
        }

        self.expect_kw("from")?;
        let mut from = vec![self.parse_from_item()?];
        while self.eat(&Token::Comma) {
            from.push(self.parse_from_item()?);
        }

        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.qualified_name()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.qualified_name()?);
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.qualified_name()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((col, desc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(GeoError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(QueryAst {
            select,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Star);
        }
        // Aggregate call?
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(func) = AggFunc::parse(name) {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2; // consume name and `(`
                    let arg = if func == AggFunc::Count && self.eat(&Token::Star) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(&Token::RParen)?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Agg { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Scalar { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?.to_ascii_lowercase()))
        } else {
            Ok(None)
        }
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let name = self.qualified_name()?;
        let table = TableRef::parse(&name);
        // Optional alias: `AS c` or bare `c` (but not a clause keyword).
        let alias = if self.eat_kw("as") {
            Some(self.ident()?.to_ascii_lowercase())
        } else {
            match self.peek() {
                Some(Token::Ident(s))
                    if !["where", "group", "order", "limit", "on"]
                        .iter()
                        .any(|kw| s.eq_ignore_ascii_case(kw)) =>
                {
                    let a = s.to_ascii_lowercase();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(FromItem { table, alias })
    }

    // ------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<ScalarExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<ScalarExpr> {
        if self.eat_kw("not") {
            Ok(self.not_expr()?.not())
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<ScalarExpr> {
        let lhs = self.additive()?;

        // Negated postfix forms: `x NOT LIKE / NOT IN / NOT BETWEEN`.
        let negated = if self.peek().is_some_and(|t| t.is_kw("not"))
            && self
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.is_kw("like") || t.is_kw("in") || t.is_kw("between"))
        {
            self.pos += 1;
            true
        } else {
            false
        };

        if self.eat_kw("like") {
            let pattern = match self.next() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(GeoError::Parse(format!(
                        "LIKE expects a string pattern, found {other:?}"
                    )))
                }
            };
            return Ok(ScalarExpr::Like {
                expr: Box::new(lhs),
                pattern,
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = vec![self.literal_value()?];
            while self.eat(&Token::Comma) {
                list.push(self.literal_value()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(ScalarExpr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(ScalarExpr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(GeoError::Parse(
                "`NOT` must be followed by LIKE, IN, or BETWEEN here".into(),
            ));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(ScalarExpr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(ScalarExpr::binary(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.multiplicative()?;
        loop {
            if self.eat(&Token::Plus) {
                lhs = lhs.add(self.multiplicative()?);
            } else if self.eat(&Token::Minus) {
                lhs = lhs.sub(self.multiplicative()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat(&Token::Star) {
                lhs = lhs.mul(self.unary()?);
            } else if self.eat(&Token::Slash) {
                lhs = lhs.div(self.unary()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<ScalarExpr> {
        if self.eat(&Token::Minus) {
            let e = self.unary()?;
            // Fold negation of numeric literals.
            return Ok(match e {
                ScalarExpr::Literal(Value::Int64(i)) => ScalarExpr::lit(-i),
                ScalarExpr::Literal(Value::Float64(f)) => ScalarExpr::lit(-f),
                other => ScalarExpr::Unary {
                    op: geoqp_expr::UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<ScalarExpr> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(ScalarExpr::lit(i))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(ScalarExpr::lit(f))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(ScalarExpr::lit(Value::str(s)))
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("date") {
                    // DATE '1995-01-15'
                    if let Some(Token::Str(_)) = self.tokens.get(self.pos + 1) {
                        self.pos += 1;
                        if let Some(Token::Str(s)) = self.next() {
                            return parse_date(&s).map(|d| ScalarExpr::lit(Value::Date(d)));
                        }
                        unreachable!("peeked string");
                    }
                }
                if name.eq_ignore_ascii_case("true") {
                    self.pos += 1;
                    return Ok(ScalarExpr::lit(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    self.pos += 1;
                    return Ok(ScalarExpr::lit(false));
                }
                if name.eq_ignore_ascii_case("null") {
                    self.pos += 1;
                    return Ok(ScalarExpr::Literal(Value::Null));
                }
                let col = self.qualified_name()?;
                Ok(ScalarExpr::col(col))
            }
            other => Err(GeoError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn literal_value(&mut self) -> Result<Value> {
        match self.primary()? {
            ScalarExpr::Literal(v) => Ok(v),
            other => Err(GeoError::Parse(format!(
                "expected a literal, found expression {other}"
            ))),
        }
    }

    // ----------------------------------------------------------- policy

    fn policy(&mut self) -> Result<PolicyExpression> {
        self.expect_kw("ship")?;
        let attrs = if self.eat(&Token::Star) {
            ShipAttrs::Star
        } else {
            let mut list = vec![self.ident()?.to_ascii_lowercase()];
            while self.eat(&Token::Comma) {
                list.push(self.ident()?.to_ascii_lowercase());
            }
            ShipAttrs::list(list)
        };

        let mut functions = Vec::new();
        if self.eat_kw("as") {
            self.expect_kw("aggregates")?;
            loop {
                let name = self.ident()?;
                let f = AggFunc::parse(&name).ok_or_else(|| {
                    GeoError::Parse(format!("unknown aggregate function `{name}`"))
                })?;
                functions.push(f);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }

        self.expect_kw("from")?;
        let table = TableRef::parse(&self.qualified_name()?);
        // Multi-table expressions: `from t1, t2, …` (footnote 4; the
        // where clause then carries the join predicate).
        let mut joined_tables = Vec::new();
        while self.eat(&Token::Comma) {
            joined_tables.push(TableRef::parse(&self.qualified_name()?));
        }
        // Optional table alias (`from Customer C to …`), ignored; only
        // meaningful in the single-table form.
        if joined_tables.is_empty() {
            if let Some(Token::Ident(s)) = self.peek() {
                if !s.eq_ignore_ascii_case("to") {
                    self.pos += 1;
                }
            }
        }

        self.expect_kw("to")?;
        let to = if self.eat(&Token::Star) {
            LocationPattern::Star
        } else {
            let mut locs = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                locs.push(self.ident()?);
            }
            LocationPattern::Set(LocationSet::from_iter(locs))
        };

        let predicate = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.ident()?.to_ascii_lowercase());
            while self.eat(&Token::Comma) {
                group_by.push(self.ident()?.to_ascii_lowercase());
            }
        }

        if functions.is_empty() {
            if !group_by.is_empty() {
                return Err(GeoError::Parse(
                    "GROUP BY in a policy expression requires AS AGGREGATES".into(),
                ));
            }
            Ok(PolicyExpression::basic(table, attrs, to, predicate)
                .with_joined_tables(joined_tables))
        } else {
            Ok(
                PolicyExpression::aggregate(table, attrs, functions, group_by, to, predicate)
                    .with_joined_tables(joined_tables),
            )
        }
    }
}

/// Parse an ISO date (`YYYY-MM-DD`) into days since the epoch.
fn parse_date(s: &str) -> Result<i32> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(GeoError::Parse(format!("bad date literal `{s}`")));
    }
    let y: i32 = parts[0]
        .parse()
        .map_err(|_| GeoError::Parse(format!("bad year in `{s}`")))?;
    let m: u32 = parts[1]
        .parse()
        .map_err(|_| GeoError::Parse(format!("bad month in `{s}`")))?;
    let d: u32 = parts[2]
        .parse()
        .map_err(|_| GeoError::Parse(format!("bad day in `{s}`")))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(GeoError::Parse(format!("date out of range `{s}`")));
    }
    Ok(days_from_civil(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_policy::PolicyKind;

    #[test]
    fn parses_paper_running_query() {
        let q = parse_query(
            "SELECT C.name, SUM(O.totprice), SUM(S.quantity) \
             FROM Customer AS C, Orders AS O, Supply AS S \
             WHERE C.custkey=O.custkey AND O.ordkey=S.ordkey \
             GROUP BY C.name",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.group_by, vec!["c.name"]);
        assert!(matches!(
            q.select[1],
            SelectItem::Agg {
                func: AggFunc::Sum,
                ..
            }
        ));
        let w = q.where_clause.unwrap();
        assert_eq!(
            w.to_string(),
            "((c.custkey = o.custkey) AND (o.ordkey = s.ordkey))"
        );
    }

    #[test]
    fn parses_predicates_and_literals() {
        let q = parse_query(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND s LIKE 'A%' \
             AND r IN ('EUROPE','ASIA') AND d < DATE '1995-03-15' AND b IS NOT NULL",
        )
        .unwrap();
        let w = q.where_clause.unwrap().to_string();
        assert!(w.contains("BETWEEN"));
        assert!(w.contains("LIKE 'A%'"));
        assert!(w.contains("IN ('EUROPE', 'ASIA')"));
        assert!(w.contains("1995-03-15"));
        assert!(w.contains("IS NOT NULL"));
    }

    #[test]
    fn parses_order_limit_and_arithmetic() {
        let q = parse_query(
            "SELECT l_extendedprice * (1 - l_discount) AS revenue \
             FROM lineitem ORDER BY revenue DESC, l_orderkey LIMIT 10",
        )
        .unwrap();
        assert_eq!(
            q.order_by,
            vec![("revenue".into(), true), ("l_orderkey".into(), false)]
        );
        assert_eq!(q.limit, Some(10));
        match &q.select[0] {
            SelectItem::Scalar { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("revenue"));
                assert_eq!(expr.to_string(), "(l_extendedprice * (1 - l_discount))");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let q = parse_query("SELECT COUNT(*) AS n FROM t").unwrap();
        assert!(matches!(
            q.select[0],
            SelectItem::Agg {
                func: AggFunc::Count,
                arg: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
        assert!(parse_query("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_query("SELECT a FROM t trailing garbage ,").is_err());
        assert!(parse_query("SELECT a FROM t WHERE d < DATE '19-1'").is_err());
    }

    #[test]
    fn parses_table3_policy_expressions() {
        // e1 of Table 3.
        let e = parse_policy("ship * from db-5.nation to *").unwrap();
        assert_eq!(e.table, TableRef::qualified("db-5", "nation"));
        assert_eq!(e.attrs, ShipAttrs::Star);
        assert_eq!(e.to, LocationPattern::Star);
        assert!(matches!(e.kind, PolicyKind::Basic));

        // e3 of Table 3.
        let e =
            parse_policy("ship partkey, suppkey, supplycost from db-2.partsupp to L3, L4").unwrap();
        assert_eq!(e.to.to_string(), "L3, L4");

        // e4 of Table 3 (with predicate).
        let e = parse_policy(
            "ship partkey, mfgr, size, type, name from db-3.part to L4 \
             where size > 40 OR type LIKE '%COPPER%'",
        )
        .unwrap();
        assert_eq!(
            e.predicate.unwrap().to_string(),
            "((size > 40) OR (type LIKE '%COPPER%'))"
        );

        // e5 of Table 3 (aggregate).
        let e = parse_policy(
            "ship extendedprice, discount as aggregates sum from db-4.lineitem \
             to L1 group by suppkey, orderkey",
        )
        .unwrap();
        match &e.kind {
            PolicyKind::Aggregate {
                functions,
                group_by,
            } => {
                assert!(functions.contains(&AggFunc::Sum));
                assert_eq!(group_by.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn policy_with_table_alias_from_example1() {
        let e =
            parse_policy("ship mktseg, region from Customer C to Europe where mktseg='commercial'")
                .unwrap();
        assert_eq!(e.table, TableRef::bare("customer"));
        assert!(e.predicate.is_some());
    }

    #[test]
    fn policy_group_by_requires_aggregates() {
        assert!(parse_policy("ship a from t to * group by b").is_err());
        assert!(parse_policy("ship a as aggregates median from t to *").is_err());
    }

    #[test]
    fn policy_display_reparses() {
        let text = "ship acctbal as aggregates SUM, AVG from customer to * group by mktseg, region";
        let e = parse_policy(text).unwrap();
        let e2 = parse_policy(&e.to_string()).unwrap();
        assert_eq!(e, e2);
    }
}

#[cfg(test)]
mod denial_tests {
    use super::*;
    use geoqp_policy::ShipAttrs;

    #[test]
    fn parses_denials() {
        let d = parse_denial("deny ship salary from emp to B, C").unwrap();
        assert_eq!(d.table, TableRef::bare("emp"));
        assert_eq!(d.attrs, ShipAttrs::list(["salary"]));
        assert!(d.predicate.is_none());

        let d = parse_denial("deny ship * from emp to * where dept = 'engineering'").unwrap();
        assert_eq!(d.attrs, ShipAttrs::Star);
        assert!(d.predicate.is_some());
    }

    #[test]
    fn denials_reject_aggregate_clauses() {
        assert!(
            parse_denial("deny ship salary as aggregates sum from emp to * group by dept").is_err()
        );
        assert!(parse_denial("ship salary from emp to *").is_err());
    }

    #[test]
    fn denial_display_reparses() {
        let d = parse_denial("deny ship salary from emp to A where (dept = 'x')").unwrap();
        let d2 = parse_denial(&d.to_string()).unwrap();
        assert_eq!(d, d2);
    }
}

#[cfg(test)]
mod multi_table_policy_tests {
    use super::*;

    #[test]
    fn parses_multi_table_from_clause() {
        let e = parse_policy("ship c_name, o_price from cust, ord to E where c_k = o_k").unwrap();
        assert_eq!(e.table, TableRef::bare("cust"));
        assert_eq!(e.joined_tables, vec![TableRef::bare("ord")]);
        assert!(e.predicate.is_some());
        // Round trip.
        let again = parse_policy(&e.to_string()).unwrap();
        assert_eq!(again, e);
    }
}
