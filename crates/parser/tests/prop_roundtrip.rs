//! Property tests: policy expressions and denials round-trip through their
//! `Display` rendering and the parser, and the SQL expression
//! sub-grammar's precedence matches the constructed trees.

use geoqp_common::{LocationPattern, LocationSet, TableRef, Value};
use geoqp_expr::{AggFunc, ScalarExpr};
use geoqp_parser::{parse_denial, parse_policy, parse_query};
use geoqp_policy::{DenyExpression, PolicyExpression, ShipAttrs};
use proptest::prelude::*;

const ATTRS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];
const LOCS: [&str; 4] = ["apex", "bern", "cairo", "delhi"];

fn arb_predicate() -> impl Strategy<Value = ScalarExpr> {
    let atom = (0usize..ATTRS.len(), -99i64..99, 0u8..4).prop_map(|(c, v, op)| {
        let col = ScalarExpr::col(ATTRS[c]);
        let lit = ScalarExpr::lit(v);
        match op {
            0 => col.eq(lit),
            1 => col.gt(lit),
            2 => col.lt_eq(lit),
            _ => col.like(format!("%p{v}%")),
        }
    });
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

fn arb_policy() -> impl Strategy<Value = PolicyExpression> {
    let attrs = prop_oneof![
        Just(ShipAttrs::Star),
        proptest::sample::subsequence(ATTRS.to_vec(), 1..=ATTRS.len()).prop_map(ShipAttrs::list),
    ];
    let to = prop_oneof![
        Just(LocationPattern::Star),
        proptest::sample::subsequence(LOCS.to_vec(), 1..=LOCS.len())
            .prop_map(|l| LocationPattern::Set(LocationSet::from_iter(l))),
    ];
    let pred = proptest::option::of(arb_predicate());
    let agg = proptest::option::of((
        proptest::sample::subsequence(
            vec![
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Count,
            ],
            1..=3,
        ),
        proptest::sample::subsequence(ATTRS.to_vec(), 0..=2),
    ));
    (attrs, to, pred, agg).prop_map(|(attrs, to, pred, agg)| match agg {
        None => PolicyExpression::basic(TableRef::bare("t"), attrs, to, pred),
        Some((funcs, groups)) => PolicyExpression::aggregate(
            TableRef::bare("t"),
            attrs,
            funcs,
            groups.into_iter().map(str::to_string),
            to,
            pred,
        ),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn policy_display_parses_back(e in arb_policy()) {
        let text = e.to_string();
        let back = parse_policy(&text)
            .unwrap_or_else(|err| panic!("`{text}` failed to parse: {err}"));
        prop_assert_eq!(back, e);
    }

    #[test]
    fn denial_display_parses_back(
        attrs in prop_oneof![
            Just(ShipAttrs::Star),
            proptest::sample::subsequence(ATTRS.to_vec(), 1..=3).prop_map(ShipAttrs::list)
        ],
        pred in proptest::option::of(arb_predicate()),
    ) {
        let d = DenyExpression::new(
            TableRef::bare("t"),
            attrs,
            LocationPattern::Star,
            pred,
        );
        let back = parse_denial(&d.to_string()).unwrap();
        prop_assert_eq!(back, d);
    }

    /// WHERE-clause expressions survive a print → parse cycle.
    #[test]
    fn where_clause_round_trips(p in arb_predicate()) {
        let sql = format!("SELECT alpha FROM t WHERE {p}");
        let ast = parse_query(&sql).unwrap();
        prop_assert_eq!(ast.where_clause.unwrap(), p);
    }
}

#[test]
fn precedence_matches_construction() {
    // a AND b OR c parses as (a AND b) OR c.
    let q = parse_query("SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3").unwrap();
    let expected = ScalarExpr::col("a")
        .eq(ScalarExpr::lit(1i64))
        .and(ScalarExpr::col("b").eq(ScalarExpr::lit(2i64)))
        .or(ScalarExpr::col("c").eq(ScalarExpr::lit(3i64)));
    assert_eq!(q.where_clause.unwrap(), expected);

    // Arithmetic binds tighter than comparison; * tighter than +.
    let q = parse_query("SELECT x FROM t WHERE a + b * 2 > 10").unwrap();
    let expected = ScalarExpr::col("a")
        .add(ScalarExpr::col("b").mul(ScalarExpr::lit(2i64)))
        .gt(ScalarExpr::lit(10i64));
    assert_eq!(q.where_clause.unwrap(), expected);

    // NOT binds tighter than AND.
    let q = parse_query("SELECT x FROM t WHERE NOT a = 1 AND b = 2").unwrap();
    let expected = ScalarExpr::col("a")
        .eq(ScalarExpr::lit(1i64))
        .not()
        .and(ScalarExpr::col("b").eq(ScalarExpr::lit(2i64)));
    assert_eq!(q.where_clause.unwrap(), expected);
}

#[test]
fn string_literals_round_trip_with_escapes() {
    let q = parse_query("SELECT x FROM t WHERE s = 'it''s a test'").unwrap();
    match q.where_clause.unwrap() {
        ScalarExpr::Binary { rhs, .. } => {
            assert_eq!(*rhs, ScalarExpr::lit(Value::str("it's a test")));
        }
        other => panic!("unexpected {other}"),
    }
}
