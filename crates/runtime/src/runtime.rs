//! The concurrent runtime: one worker thread per plan fragment, streaming
//! exchanges at SHIP edges, deterministic fault charging, and a per-batch
//! Definition-1 compliance audit.
//!
//! # Determinism
//!
//! The sequential interpreter drives the fault plan with a shared clock
//! that ticks once per attempt. Under concurrency that order would depend
//! on thread scheduling, so the runtime instead assigns every fault-clock
//! consultation a **pre-computed step**: slot `s` (the edge's or scan's
//! pre-order index) at attempt `a` consults step `(a-1)·n_slots + s`.
//! [`FaultPlan::check_transfer`] is a pure function of the step, so
//! verdicts — and therefore results, errors, transfer logs, and shipped
//! bytes — are identical on every run regardless of interleaving.
//!
//! # Cost model
//!
//! Each exchange stream pays its link's startup cost `α` once (on the
//! first batch) and `β` per serialized byte; the 8-byte batch header is
//! charged once per stream. Summed over batches this equals the
//! sequential interpreter's single-monolithic-SHIP cost exactly, which is
//! what makes the differential byte/cost tests possible. Completion time
//! is the root fragment's critical path over exchange arrivals — the
//! quantity pipelining improves.

use crate::checkpoint::{CheckpointSpec, CheckpointStore};
use crate::exchange::{Exchange, Payload, Received};
use crate::fragment::{cut, node_key, Cut, Edge};
use crate::metrics::{EdgeMetrics, RuntimeMetrics, SiteMetrics};
use crate::morsel::{MorselPool, PoolRunner};
use geoqp_common::{
    ChurnWatch, ColumnarBatch, GeoError, Location, LocationSet, Result, Row, Rows, RunControl,
    TableRef, Unavailable,
};
use geoqp_exec::{
    execute_fragment, execute_fragment_columnar, DataSource, ExchangeSource, LocalShip,
    MorselRunner, RetryPolicy, SERIAL,
};
use geoqp_net::{
    backup_beats, plan_hedge_with, run_hedge, FaultPlan, FaultVerdict, HedgeConfig, LinkHealth,
    NetworkTopology, RelayEvent, TransferLog, TransferRecord,
};
use geoqp_plan::{PhysOp, PhysicalPlan};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Error message used to propagate a cancellation through a fragment's
/// interpreter. Never surfaced to callers: the originating failure wins.
const CANCELLED: &str = "parallel runtime cancelled: another fragment failed";

/// Knobs for the streaming exchange.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Rows per exchange batch.
    pub batch_rows: usize,
    /// Batches a channel buffers before the producer blocks.
    pub channel_capacity: usize,
    /// Run every fragment on the vectorized columnar engine and ship
    /// `Arc`'d batch slices through the exchanges instead of serialized
    /// rows. Bytes are charged from column metadata — provably equal to
    /// the row encoding's size — so transfer logs, audits, and fault
    /// replay are identical to the row configuration.
    pub columnar: bool,
    /// Rows per morsel when columnar kernels split their work for the
    /// per-site worker pool.
    pub morsel_rows: usize,
    /// CPU workers per site for intra-fragment morsel parallelism: the
    /// fragment thread plus `workers_per_site - 1` pooled threads.
    /// `1` (the default) disables pooling — kernels run their morsels
    /// inline. Only the columnar engine dispatches morsels; results are
    /// bit-identical at every worker count (deterministic merge order),
    /// so this knob trades threads for latency, never answers.
    pub workers_per_site: usize,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            batch_rows: 256,
            channel_capacity: 4,
            columnar: false,
            morsel_rows: 2048,
            workers_per_site: 1,
        }
    }
}

/// One producer fragment's fully evaluated output, in whichever layout
/// the configured engine produced it.
enum Produced {
    Rows(Vec<Row>),
    Columnar(Arc<ColumnarBatch>),
}

impl Produced {
    fn len(&self) -> usize {
        match self {
            Produced::Rows(all) => all.len(),
            Produced::Columnar(b) => b.len(),
        }
    }
}

/// The output of one parallel execution.
#[derive(Debug)]
pub struct RunOutput {
    /// Result rows at the plan's root location.
    pub rows: Rows,
    /// Every batch delivery and dropped attempt, normalized to the
    /// canonical `(step, from, to)` order.
    pub transfers: TransferLog,
    /// Per-site and per-edge observability.
    pub metrics: RuntimeMetrics,
}

/// The concurrent pipelined executor.
pub struct Runtime<'a> {
    topology: &'a NetworkTopology,
    faults: Option<&'a FaultPlan>,
    retry: RetryPolicy,
    config: RuntimeConfig,
    control: RunControl,
    checkpoints: Option<(&'a CheckpointStore, Vec<CheckpointSpec>)>,
    hedge: Option<(&'a LinkHealth, HedgeConfig)>,
    churn: Option<ChurnWatch>,
}

impl<'a> Runtime<'a> {
    /// A runtime charging transfers against `topology`, without faults.
    pub fn new(topology: &'a NetworkTopology) -> Runtime<'a> {
        Runtime {
            topology,
            faults: None,
            retry: RetryPolicy::none(),
            config: RuntimeConfig::default(),
            control: RunControl::unlimited(),
            checkpoints: None,
            hedge: None,
            churn: None,
        }
    }

    /// Attach a fault plan and retry policy.
    pub fn with_faults(mut self, faults: &'a FaultPlan, retry: RetryPolicy) -> Runtime<'a> {
        self.faults = Some(faults);
        self.retry = retry;
        self
    }

    /// Override the exchange configuration.
    pub fn with_config(mut self, config: RuntimeConfig) -> Runtime<'a> {
        self.config = config;
        self
    }

    /// Attach a cancel token and/or deadline. Every fragment worker polls
    /// them at batch granularity; a trip unwinds the whole run through the
    /// exchange cancellation path, so all workers join.
    pub fn with_control(mut self, control: RunControl) -> Runtime<'a> {
        self.control = control;
        self
    }

    /// Attach a checkpoint store plus one [`CheckpointSpec`] per SHIP edge
    /// (pre-order, same order as the audit traits). Each fully drained
    /// edge's output is retained at both endpoints, and
    /// [`PhysOp::ResumeScan`] leaves are served from the store.
    pub fn with_checkpoints(
        mut self,
        store: &'a CheckpointStore,
        specs: Vec<CheckpointSpec>,
    ) -> Runtime<'a> {
        self.checkpoints = Some((store, specs));
        self
    }

    /// Attach gray-failure defenses: a shared [`LinkHealth`] table (so
    /// breaker state survives across failover attempts) plus hedge
    /// tuning. Each edge's health lane is its pre-order slot, so the
    /// observation stream — and therefore breaker state — is a pure
    /// function of the seeded fault grid, independent of thread schedule.
    /// Hedged relays are restricted to the edge's audit set `𝒮ₙ`.
    pub fn with_hedge(mut self, health: &'a LinkHealth, config: HedgeConfig) -> Runtime<'a> {
        self.hedge = Some((health, config));
        self
    }

    /// Attach live policy-churn enforcement: every fragment re-checks the
    /// pinned catalog epoch at batch granularity (a revocation newer than
    /// the pin aborts the attempt with [`GeoError::PolicyChurn`] before
    /// the next batch leaves), and — when a [`StaleGuard`] rides along —
    /// a site whose catalog replica cannot prove it has applied the
    /// pinned sequence refuses to originate its transfer with
    /// [`GeoError::CatalogStale`].
    ///
    /// [`StaleGuard`]: geoqp_common::StaleGuard
    pub fn with_churn(mut self, watch: ChurnWatch) -> Runtime<'a> {
        self.churn = Some(watch);
        self
    }

    /// Execute `plan` with one worker thread per fragment.
    ///
    /// `audits`, when given, holds the shipping trait `𝒮` of each SHIP's
    /// input in pre-order; every batch is checked against its edge's set
    /// before leaving the producer site, and a violation aborts the run
    /// with [`GeoError::NonCompliant`] — the Definition-1 runtime audit.
    pub fn run(
        &self,
        plan: &PhysicalPlan,
        source: &(dyn DataSource + Sync),
        audits: Option<&[LocationSet]>,
    ) -> Result<RunOutput> {
        let (result, transfers) = self.try_run(plan, source, audits);
        let (rows, metrics) = result?;
        Ok(RunOutput {
            rows,
            transfers,
            metrics,
        })
    }

    /// [`Runtime::run`], but the normalized transfer log — including the
    /// dropped attempts of a failed run — is returned either way, so a
    /// failover path can fold it into its evidence.
    pub fn try_run(
        &self,
        plan: &PhysicalPlan,
        source: &(dyn DataSource + Sync),
        audits: Option<&[LocationSet]>,
    ) -> (Result<(Rows, RuntimeMetrics)>, TransferLog) {
        let cut = match cut(plan) {
            Ok(c) => c,
            Err(e) => return (Err(e), TransferLog::new()),
        };
        if let Some(a) = audits {
            if a.len() != cut.edges.len() {
                return (
                    Err(GeoError::Execution(format!(
                        "runtime audit covers {} SHIP edges but the plan has {}",
                        a.len(),
                        cut.edges.len()
                    ))),
                    TransferLog::new(),
                );
            }
        }
        if let Some((_, specs)) = &self.checkpoints {
            if specs.len() != cut.edges.len() {
                return (
                    Err(GeoError::Execution(format!(
                        "checkpoint specs cover {} SHIP edges but the plan has {}",
                        specs.len(),
                        cut.edges.len()
                    ))),
                    TransferLog::new(),
                );
            }
        }
        let shared = Shared {
            cut: &cut,
            exchanges: (0..cut.edges.len())
                .map(|_| Exchange::new(self.config.channel_capacity))
                .collect(),
            log: Mutex::new(TransferLog::new()),
            errors: Mutex::new(Vec::new()),
            sites: Mutex::new(BTreeMap::new()),
        };
        let root_slot = cut.edges.len();
        let root_out: Mutex<Option<(Rows, f64)>> = Mutex::new(None);

        // One shared morsel pool per fragment-hosting site, so every
        // fragment a site runs draws CPU workers from the same pool.
        // Pools live exactly as long as this run: dropping the map at
        // return joins every worker thread, so runs never leak threads.
        let pools: BTreeMap<Location, MorselPool> =
            if self.config.columnar && self.config.workers_per_site > 1 {
                let mut sites: BTreeSet<Location> = BTreeSet::new();
                sites.insert(plan.location.clone());
                for edge in &cut.edges {
                    sites.insert(edge.from.clone());
                }
                sites
                    .into_iter()
                    .map(|s| (s, MorselPool::new(self.config.workers_per_site)))
                    .collect()
            } else {
                BTreeMap::new()
            };
        let runner_for =
            |site: &Location| pools.get(site).map(|p| p.runner(self.config.morsel_rows));

        std::thread::scope(|s| {
            for edge in &cut.edges {
                let shared = &shared;
                let runner = runner_for(&edge.from);
                s.spawn(move || self.run_producer(edge, shared, source, audits, runner));
            }
            let shared = &shared;
            let root_out = &root_out;
            let root_runner = runner_for(&plan.location);
            s.spawn(move || {
                let view = FragmentView::new(self, shared, source, root_runner);
                let result = if self.config.columnar {
                    execute_fragment_columnar(plan, source, &mut LocalShip, &view)
                        .map(|b| b.to_rows())
                } else {
                    execute_fragment(plan, source, &mut LocalShip, &view)
                };
                match result.and_then(|rows| {
                    let done_ms = view.ready_ms();
                    self.control.check(done_ms, "root fragment completion")?;
                    Ok((rows, done_ms))
                }) {
                    Ok((rows, done_ms)) => {
                        shared.note_site(&plan.location, view.attempts.get(), done_ms);
                        *root_out.lock().unwrap() = Some((rows, done_ms));
                    }
                    Err(e) => shared.fail(root_slot, e),
                }
            });
        });

        // Attribute pool activity to its site before the metrics freeze.
        // Counters are deterministic except `steals`/`peak_workers`, which
        // record real scheduling and are excluded from differential
        // comparisons.
        for (site, pool) in &pools {
            let stats = pool.stats();
            if stats.morsels > 0 {
                let mut sites = shared.sites.lock().unwrap();
                sites.entry(site.clone()).or_default().pool.absorb(&stats);
            }
        }

        let mut errors = shared.errors.into_inner().unwrap();
        let mut log = shared.log.into_inner().unwrap();
        log.normalize();
        if !errors.is_empty() {
            // Deterministic winner: the failure at the lowest pre-order
            // slot, independent of which thread recorded its error first.
            // Token cancellations rank last — when a real failure raced
            // the unwind, the originating failure is the answer.
            errors.sort_by_key(|(slot, e)| (matches!(e, GeoError::Cancelled(_)), *slot));
            return (Err(errors.remove(0).1), log);
        }
        let (rows, completion_ms) = root_out
            .into_inner()
            .unwrap()
            .expect("root fragment finished without a result or an error");

        let edges = cut
            .edges
            .iter()
            .zip(&shared.exchanges)
            .map(|(e, ex)| EdgeMetrics {
                edge: e.id,
                from: e.from.clone(),
                to: e.to.clone(),
                stats: ex.stats(),
                arrival_ms: ex.arrival_ms(),
            })
            .collect::<Vec<_>>();
        let health = self.hedge.as_ref().map(|(h, _)| *h);
        let metrics = RuntimeMetrics {
            completion_ms,
            network_ms: log.total_cost_ms(),
            batches: edges.iter().map(|e| e.stats.batches).sum(),
            bytes: log.total_bytes(),
            stalls: edges
                .iter()
                .map(|e| e.stats.send_stalls + e.stats.recv_stalls)
                .sum(),
            hedges_launched: health.map_or(0, |h| h.hedges_launched()),
            hedges_won: health.map_or(0, |h| h.hedges_won()),
            relays_used: health.map_or(0, |h| h.relays_used()),
            breaker_trips: health.map_or(0, |h| h.breaker_trips()),
            sites: shared.sites.into_inner().unwrap(),
            edges,
        };
        (Ok((rows, metrics)), log)
    }

    /// One producer worker: evaluate the edge's subtree, then stream it.
    fn run_producer(
        &self,
        edge: &Edge<'_>,
        shared: &Shared<'_, '_>,
        source: &(dyn DataSource + Sync),
        audits: Option<&[LocationSet]>,
        runner: Option<PoolRunner>,
    ) {
        let view = FragmentView::new(self, shared, source, runner);
        let result = if self.config.columnar {
            execute_fragment_columnar(edge.subtree(), source, &mut LocalShip, &view)
                .map(|b| Produced::Columnar(b.materialize()))
        } else {
            execute_fragment(edge.subtree(), source, &mut LocalShip, &view)
                .map(|rows| Produced::Rows(rows.into_rows()))
        };
        let ready_ms = view.ready_ms();
        let outcome = result.and_then(|produced| {
            self.stream(
                edge,
                produced,
                ready_ms,
                view.attempts.get(),
                shared,
                audits,
            )
        });
        if let Err(e) = outcome {
            shared.fail(edge.id, e);
        }
    }

    /// Chunk `rows` into batches and push them through the edge's channel,
    /// auditing, fault-checking, and cost-charging each batch.
    fn stream(
        &self,
        edge: &Edge<'_>,
        produced: Produced,
        ready_ms: f64,
        fragment_attempts: u64,
        shared: &Shared<'_, '_>,
        audits: Option<&[LocationSet]>,
    ) -> Result<()> {
        let link = self.topology.link(&edge.from, &edge.to);
        let arity = edge.ship.schema.len();
        let total = produced.len();
        let batch_rows = self.config.batch_rows.max(1);
        // An empty result still ships one (empty) batch, so transfer
        // counts and header bytes match the sequential interpreter.
        let n_batches = total.div_ceil(batch_rows).max(1);
        let mut arrival_ms = ready_ms;
        let mut attempts_total = fragment_attempts;
        // Backup routes whose α header has been paid: a stream charges a
        // link's header once (the primary pays its own on batch 0), so a
        // hedged leg that delivered keeps its route open and later
        // backups on it pay only β·bytes. A dropped or cancelled leg
        // re-pays the header, like a reconnect after a broken circuit.
        let mut opened_legs: BTreeSet<(Location, Location)> = BTreeSet::new();

        for i in 0..n_batches {
            // Batch granularity for cooperative control: an aborted query
            // stops between batches, never mid-wire.
            self.control
                .check_cancel(&format!("batch {i} on SHIP {} -> {}", edge.from, edge.to))?;
            let lo = (i * batch_rows).min(total);
            let hi = ((i + 1) * batch_rows).min(total);
            if let Some(watch) = &self.churn {
                // Stale-replica fail-safe, once per edge before the first
                // batch leaves: the origin site must prove its catalog
                // replica has applied the pinned sequence, else it cannot
                // trust the audit set it is about to enforce.
                if i == 0 && edge.from != edge.to {
                    if let Some(guard) = &watch.stale {
                        guard.check_origin(&edge.from)?;
                    }
                }
                // Per-batch epoch re-check: revocations push to in-flight
                // queries at batch granularity, on the same deterministic
                // slot clock the fault grid uses. A newer revocation
                // aborts the attempt before this batch leaves; the
                // failover loop re-pins, re-plans, and restitches.
                let churn_step = i as u64 * shared.cut.n_slots() + edge.id as u64;
                if let Some(head) = watch.signal.revoked_since(watch.pin.seq, churn_step) {
                    return Err(GeoError::policy_churn(
                        head.seq,
                        head.epoch,
                        churn_step,
                        format!(
                            "policy revocation at catalog seq {} landed while batch {i} \
                             on SHIP {} -> {} was in flight under pinned seq {}",
                            head.seq, edge.from, edge.to, watch.pin.seq
                        ),
                    ));
                }
            }
            if let Some(audits) = audits {
                if !audits[edge.id].contains(&edge.to) {
                    return Err(GeoError::NonCompliant(format!(
                        "runtime audit: batch {i} on SHIP {} -> {} leaves the operator's \
                         shipping trait (legal: {})",
                        edge.from, edge.to, audits[edge.id]
                    )));
                }
            }
            let (payload, bytes) = match &produced {
                Produced::Rows(all) => {
                    let batch = Rows::from_rows(all[lo..hi].to_vec());
                    // Wire roundtrip, as the sequential SimShip does: the
                    // consumer sees decoded bytes, and the stream pays the
                    // 8-byte batch header only once.
                    let encoded = batch.encode();
                    let bytes = if i == 0 {
                        encoded.len() as u64
                    } else {
                        encoded.len() as u64 - 8
                    };
                    let batch = Rows::decode(&encoded, arity).ok_or_else(|| {
                        GeoError::Execution("wire corruption: batch failed to decode".into())
                    })?;
                    (Payload::Rows(batch), bytes)
                }
                Produced::Columnar(cb) => {
                    // Zero-copy: the slice shares the parent's column
                    // allocations and crosses the exchange as an `Arc`.
                    // Bytes come from column metadata; `encoded_size` is
                    // exactly what the row encoding of these rows costs,
                    // so the header arithmetic matches the row path.
                    let slice = Arc::new(cb.slice(lo, hi - lo));
                    let sz = slice.encoded_size() as u64;
                    let bytes = if i == 0 { sz } else { sz - 8 };
                    (Payload::Columnar(slice), bytes)
                }
            };
            let n_rows = payload.len() as u64;

            let lane = edge.id as u64;
            let alpha = if i == 0 { link.alpha_ms } else { 0.0 };
            let base_ms = alpha + link.beta_ms_per_byte * bytes as f64;
            // Gray-failure gate, from pre-batch health state: a breaker
            // open past its budget condemns the link (a soft exclusion
            // the re-planner prices at ∞); a link past the hedge
            // threshold races a backup for this batch.
            let mut backup_route: Option<Option<Location>> = None;
            if let Some((health, _)) = &self.hedge {
                if edge.from != edge.to {
                    if health.breaker_exhausted(&edge.from, &edge.to, lane) {
                        let state = health.state(&edge.from, &edge.to, lane);
                        return Err(GeoError::breaker_open(
                            edge.from.clone(),
                            edge.to.clone(),
                            format!(
                                "circuit breaker for link {} -> {} is open past its \
                                 budget ({} trips, EWMA cost ratio {:.2}): \
                                 soft-excluding the link",
                                edge.from, edge.to, state.trips, state.ewma_ratio
                            ),
                        ));
                    }
                    if health.should_hedge(&edge.from, &edge.to, lane) {
                        let ratio = health.state(&edge.from, &edge.to, lane).ewma_ratio;
                        // Steady-state route choice: a stream pays each
                        // link's α header once, so the relay decision
                        // compares marginal (β-only) leg costs against
                        // the degraded primary's marginal cost — the
                        // headers are a one-time investment amortized
                        // over the remaining batches. Arrival times
                        // below still charge the full header on a
                        // route's first use, so the race stays honest.
                        let steady = |a: &Location, b: &Location| {
                            self.topology.link(a, b).beta_ms_per_byte * bytes as f64
                        };
                        let via = audits.and_then(|a| {
                            plan_hedge_with(
                                steady,
                                &edge.from,
                                &edge.to,
                                &a[edge.id],
                                ratio.max(1.0) * base_ms,
                            )
                        });
                        backup_route = Some(via);
                    }
                }
            }
            let health = self.hedge.as_ref().map(|(h, _)| *h);
            let mut last_step = 0u64;
            // The step grid is `(attempt, slot)` — every batch of a lane
            // replays the same steps, so window-scheduled faults hit the
            // whole stream uniformly. Probabilistic faults draw from a
            // per-batch coin instead: a loss burst drops *individual*
            // batches, not a lane's every batch or none. Batch 0 keeps
            // coin 0, the classic single-transfer flip.
            let coin = (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            let primary = match self.faults {
                None => Ok((1, 0.0, 0)),
                Some(faults) => {
                    let n_slots = shared.cut.n_slots();
                    let slot = edge.id as u64;
                    // Salting by slot desynchronizes concurrent jittered
                    // backoffs while keeping every replay byte-identical.
                    self.retry
                        .run_salted(slot, |attempt| {
                            let step = (attempt as u64 - 1) * n_slots + slot;
                            last_step = step;
                            match faults.check_transfer_salted(&edge.from, &edge.to, step, coin) {
                                FaultVerdict::Deliver { extra_delay_ms } => {
                                    if let Some(h) = health.filter(|_| edge.from != edge.to) {
                                        h.observe_delivery(
                                            &edge.from,
                                            &edge.to,
                                            lane,
                                            step,
                                            base_ms,
                                            base_ms + extra_delay_ms,
                                        );
                                    }
                                    Ok((extra_delay_ms, step))
                                }
                                // A gray link delivers at factor × the
                                // model; the surcharge rides in extra_ms
                                // so the log prices the batch honestly.
                                FaultVerdict::Degraded {
                                    factor,
                                    extra_delay_ms,
                                } => {
                                    let surcharge = (factor - 1.0) * base_ms + extra_delay_ms;
                                    if let Some(h) = health.filter(|_| edge.from != edge.to) {
                                        h.observe_delivery(
                                            &edge.from,
                                            &edge.to,
                                            lane,
                                            step,
                                            base_ms,
                                            base_ms + surcharge,
                                        );
                                    }
                                    Ok((surcharge, step))
                                }
                                FaultVerdict::Drop {
                                    transient,
                                    culprit,
                                    reason,
                                } => {
                                    shared.log.lock().unwrap().record_fault(
                                        step,
                                        &edge.from,
                                        &edge.to,
                                        reason.clone(),
                                    );
                                    if let Some(h) = health.filter(|_| edge.from != edge.to) {
                                        h.observe_failure(&edge.from, &edge.to, lane, step);
                                    }
                                    Err(GeoError::SiteUnavailable(Unavailable {
                                        site: culprit.or_else(|| Some(edge.to.clone())),
                                        link: Some((edge.from.clone(), edge.to.clone())),
                                        transient,
                                        breaker: false,
                                        message: reason,
                                    }))
                                }
                            }
                        })
                        .map(|d| (d.attempts, d.value.0 + d.backoff_ms, d.value.1))
                }
            };
            // The hedge race: the backup launches on independent fault
            // coins (consuming no grid steps, so hedging never perturbs
            // the primary fault sequence) and may relay via a site inside
            // the edge's audit set 𝒮ₙ. First delivery wins; a delivered
            // backup rescues a primary that failed outright.
            let primary_cost = primary.as_ref().ok().map(|(_, extra, _)| base_ms + extra);
            let mut winner_cost = primary_cost;
            let mut rescued = false;
            if let Some(via) = backup_route {
                let (health_table, config) = self.hedge.as_ref().expect("hedge config present");
                let empty = LocationSet::new();
                let legal = audits.map(|a| &a[edge.id]).unwrap_or(&empty);
                // Marginal pricing: a leg whose route is already open
                // (the direct link after batch 0, or a relay leg that
                // delivered before) pays only β·bytes; an unopened leg
                // pays the full α + β·bytes header. Computed from the
                // link parameters — the identical arithmetic the
                // primary's `base_ms` uses — so an equal-cost duplicate
                // ties the race exactly instead of "winning" by a
                // floating-point cancellation artifact.
                let pricing = |a: &Location, b: &Location| {
                    let leg = self.topology.link(a, b);
                    let wire = leg.beta_ms_per_byte * bytes as f64;
                    if opened_legs.contains(&(a.clone(), b.clone())) {
                        wire
                    } else {
                        leg.alpha_ms + wire
                    }
                };
                let run = run_hedge(
                    pricing,
                    self.faults,
                    config,
                    &edge.from,
                    &edge.to,
                    via.as_ref(),
                    legal,
                    last_step,
                    coin,
                    primary_cost,
                )?;
                for leg in &run.legs {
                    if leg.delivered {
                        opened_legs.insert((leg.from.clone(), leg.to.clone()));
                    }
                }
                {
                    let mut log = shared.log.lock().unwrap();
                    for leg in &run.legs {
                        if leg.delivered {
                            // Every transmitted backup leg is charged:
                            // hedging's shipped-bytes overhead is real.
                            log.push(TransferRecord {
                                step: leg.step,
                                from: leg.from.clone(),
                                to: leg.to.clone(),
                                bytes,
                                rows: n_rows,
                                cost_ms: leg.cost_ms,
                                attempts: 1,
                            });
                        } else {
                            log.record_fault(
                                leg.step,
                                &leg.from,
                                &leg.to,
                                "hedged backup leg dropped".into(),
                            );
                        }
                    }
                }
                let backup_won = match (primary_cost, run.backup_arrival_ms) {
                    (Some(p), Some(b)) => backup_beats(b, p),
                    (None, Some(_)) => true,
                    _ => false,
                };
                rescued = primary_cost.is_none() && run.backup_arrival_ms.is_some();
                if backup_won {
                    winner_cost = run.backup_arrival_ms;
                }
                health_table.note_hedge(
                    backup_won,
                    run.relay.as_ref().map(|r| RelayEvent {
                        lane,
                        from: edge.from.clone(),
                        to: edge.to.clone(),
                        via: r.clone(),
                    }),
                );
            }
            let (attempts, extra_ms, step) = match primary {
                Ok(delivered) => delivered,
                Err(_) if rescued => (0, 0.0, last_step),
                Err(e) => return Err(e),
            };
            attempts_total += attempts as u64;

            // The batch's effective delivery time is the race winner's
            // arrival; an unhedged batch is just the primary.
            arrival_ms += winner_cost.expect("either primary or backup delivered");
            // Simulated-clock deadline, per batch: a batch that would land
            // past the budget is never delivered. Each edge's arrival is a
            // pure function of the plan and the fault schedule, so the
            // verdict is deterministic.
            self.control.check_deadline(
                arrival_ms,
                &format!("batch {i} on SHIP {} -> {}", edge.from, edge.to),
            )?;
            if attempts > 0 {
                shared.log.lock().unwrap().push(TransferRecord {
                    step,
                    from: edge.from.clone(),
                    to: edge.to.clone(),
                    bytes,
                    rows: n_rows,
                    cost_ms: base_ms + extra_ms,
                    attempts,
                });
                // The primary paid the direct link's header (on batch 0):
                // duplicate backups ride the open stream at β-only price.
                opened_legs.insert((edge.from.clone(), edge.to.clone()));
            }
            if !shared.exchanges[edge.id].send_payload(payload, bytes) {
                // Cancelled elsewhere; unwind without recording an error.
                return Ok(());
            }
        }
        shared.exchanges[edge.id].close(arrival_ms);
        shared.note_site(&edge.from, attempts_total, arrival_ms);
        // The edge fully drained: retain its output for failover resume,
        // at both endpoints — the producer computed it there (its site is
        // in ℰ ⊆ 𝒮) and the consumer legally received it (the per-batch
        // audit already held). An illegal home is a typed refusal from
        // the store, surfaced like any other fragment failure.
        if let Some((store, specs)) = &self.checkpoints {
            let spec = &specs[edge.id];
            // Checkpoints persist the row encoding either way, so a resumed
            // plan replays bit-identically no matter which engine captured.
            let encoded = match produced {
                Produced::Rows(all) => Rows::from_rows(all).encode(),
                Produced::Columnar(cb) => cb.to_rows().encode(),
            };
            for home in [&edge.to, &edge.from] {
                store.put(
                    spec.fingerprint,
                    home.clone(),
                    &spec.legal,
                    &spec.logical,
                    encoded.clone(),
                    total as u64,
                    arity,
                )?;
            }
        }
        Ok(())
    }
}

/// State shared by every worker of one run.
struct Shared<'c, 'p> {
    cut: &'c Cut<'p>,
    exchanges: Vec<Exchange>,
    log: Mutex<TransferLog>,
    /// `(pre-order slot, error)` per failed fragment; the root fragment
    /// uses slot `edges.len()`.
    errors: Mutex<Vec<(usize, GeoError)>>,
    sites: Mutex<BTreeMap<Location, SiteMetrics>>,
}

impl Shared<'_, '_> {
    /// Record a fragment failure (unless it is cancellation fallout) and
    /// tear down every channel so no worker stays blocked.
    fn fail(&self, slot: usize, e: GeoError) {
        let is_propagated = matches!(&e, GeoError::Execution(m) if m == CANCELLED);
        if !is_propagated {
            self.errors.lock().unwrap().push((slot, e));
        }
        for ex in &self.exchanges {
            ex.cancel();
        }
    }

    fn note_site(&self, site: &Location, busy_steps: u64, busy_ms: f64) {
        let mut sites = self.sites.lock().unwrap();
        let m = sites.entry(site.clone()).or_default();
        m.fragments += 1;
        m.busy_steps += busy_steps;
        m.busy_ms = m.busy_ms.max(busy_ms);
    }
}

/// One fragment's view of the exchange plane: intercepts boundary Ship
/// nodes (draining their streams) and scan nodes (counting attempts and,
/// under faults, consulting the crash schedule at deterministic steps).
struct FragmentView<'r, 's> {
    runtime: &'r Runtime<'r>,
    shared: &'s Shared<'s, 's>,
    source: &'s (dyn DataSource + Sync),
    /// Max arrival time over the streams this fragment consumed.
    max_arrival_ms: Cell<f64>,
    /// Simulated local delay (scan retry backoff) accumulated here.
    local_extra_ms: Cell<f64>,
    /// Logical steps consumed by this fragment's scans.
    attempts: Cell<u64>,
    /// The site's shared morsel pool, when intra-fragment parallelism is
    /// on. `None` keeps the inline serial runner.
    runner: Option<PoolRunner>,
}

impl<'r, 's> FragmentView<'r, 's> {
    fn new(
        runtime: &'r Runtime<'r>,
        shared: &'s Shared<'s, 's>,
        source: &'s (dyn DataSource + Sync),
        runner: Option<PoolRunner>,
    ) -> FragmentView<'r, 's> {
        FragmentView {
            runtime,
            shared,
            source,
            max_arrival_ms: Cell::new(0.0),
            local_extra_ms: Cell::new(0.0),
            attempts: Cell::new(0),
            runner,
        }
    }

    /// When this fragment's output is fully produced, in simulated ms.
    fn ready_ms(&self) -> f64 {
        self.max_arrival_ms.get() + self.local_extra_ms.get()
    }

    /// Drain one boundary edge into a materialized batch.
    fn collect_edge(&self, id: usize) -> Result<Rows> {
        let ex = &self.shared.exchanges[id];
        let mut out = Rows::new();
        loop {
            match ex.recv() {
                Received::Batch(payload) => {
                    for row in payload.into_rows().into_rows() {
                        out.push(row);
                    }
                }
                Received::Done => {
                    let arrival = ex.arrival_ms();
                    self.max_arrival_ms
                        .set(self.max_arrival_ms.get().max(arrival));
                    return Ok(out);
                }
                Received::Cancelled => {
                    return Err(GeoError::Execution(CANCELLED.into()));
                }
            }
        }
    }

    /// [`FragmentView::collect_edge`] for a columnar consumer: batches
    /// cross as `Arc` clones and are stitched back with one concat, so a
    /// single-batch stream (the common case) is handed through untouched.
    fn collect_edge_columnar(&self, id: usize, arity: usize) -> Result<Arc<ColumnarBatch>> {
        let ex = &self.shared.exchanges[id];
        let mut parts = Vec::new();
        loop {
            match ex.recv() {
                Received::Batch(payload) => parts.push(payload.into_columnar(arity)),
                Received::Done => {
                    let arrival = ex.arrival_ms();
                    self.max_arrival_ms
                        .set(self.max_arrival_ms.get().max(arrival));
                    return Ok(if parts.len() == 1 {
                        parts.pop().expect("one part")
                    } else {
                        Arc::new(ColumnarBatch::concat(&parts, arity))
                    });
                }
                Received::Cancelled => {
                    return Err(GeoError::Execution(CANCELLED.into()));
                }
            }
        }
    }

    /// Gate a leaf read on its site's availability: retried under the
    /// fault plan's crash windows at the leaf's scan slot, at
    /// deterministic steps, charging backoff to this fragment's local
    /// simulated time.
    fn site_gate(&self, node: &PhysicalPlan, what: &str) -> Result<()> {
        match self.runtime.faults {
            None => {
                self.attempts.set(self.attempts.get() + 1);
            }
            Some(faults) => {
                let n_slots = self.shared.cut.n_slots();
                let slot = (self.shared.cut.edges.len()
                    + self.shared.cut.scan_slot[&node_key(node)]) as u64;
                let delivered = self.runtime.retry.run_salted(slot, |attempt| {
                    let step = (attempt as u64 - 1) * n_slots + slot;
                    match faults.site_down_until(&node.location, step) {
                        None => Ok(()),
                        Some(end) => Err(GeoError::SiteUnavailable(Unavailable {
                            site: Some(node.location.clone()),
                            link: None,
                            transient: end != u64::MAX,
                            breaker: false,
                            message: format!(
                                "{what} failed: site {} is down at step {step}",
                                node.location
                            ),
                        })),
                    }
                })?;
                self.attempts
                    .set(self.attempts.get() + delivered.attempts as u64);
                self.local_extra_ms
                    .set(self.local_extra_ms.get() + delivered.backoff_ms);
            }
        }
        Ok(())
    }

    /// A scan, gated on the site's crash windows.
    fn scan(&self, node: &PhysicalPlan, table: &TableRef) -> Result<Rows> {
        self.site_gate(node, &format!("scan of {table}"))?;
        self.source.scan(table, &node.location)
    }

    /// A resume leaf: read a retained checkpoint homed at this node's
    /// site, gated on that site's crash windows like any other leaf.
    fn resume(&self, node: &PhysicalPlan, fingerprint: u64) -> Result<Rows> {
        self.site_gate(node, &format!("resume of checkpoint {fingerprint:016x}"))?;
        let Some((store, _)) = &self.runtime.checkpoints else {
            return Err(GeoError::Execution(format!(
                "no checkpoint store attached: cannot resume fragment \
                 {fingerprint:016x} at {}",
                node.location
            )));
        };
        let cp = store.get(fingerprint, &node.location).ok_or_else(|| {
            GeoError::Execution(format!(
                "checkpoint {fingerprint:016x} is not homed at {}",
                node.location
            ))
        })?;
        Rows::decode(&cp.encoded, cp.arity).ok_or_else(|| {
            GeoError::Execution("checkpoint corruption: batch failed to decode".into())
        })
    }
}

impl ExchangeSource for FragmentView<'_, '_> {
    fn fetch(&self, node: &PhysicalPlan) -> Option<Result<Rows>> {
        // Cooperative cancellation, polled per plan node: even a fragment
        // doing pure local compute notices an abort between operators.
        if let Err(e) =
            self.runtime
                .control
                .check_cancel(&format!("{} at {}", node.op.name(), node.location))
        {
            return Some(Err(e));
        }
        if let Some(&id) = self.shared.cut.edge_of.get(&node_key(node)) {
            return Some(self.collect_edge(id));
        }
        if let PhysOp::Scan { table } = &node.op {
            return Some(self.scan(node, table));
        }
        if let PhysOp::ResumeScan { fingerprint, .. } = &node.op {
            return Some(self.resume(node, *fingerprint));
        }
        None
    }

    fn fetch_columnar(&self, node: &PhysicalPlan) -> Option<Result<Arc<ColumnarBatch>>> {
        if let Err(e) =
            self.runtime
                .control
                .check_cancel(&format!("{} at {}", node.op.name(), node.location))
        {
            return Some(Err(e));
        }
        if let Some(&id) = self.shared.cut.edge_of.get(&node_key(node)) {
            return Some(self.collect_edge_columnar(id, node.schema.len()));
        }
        if let PhysOp::Scan { table } = &node.op {
            // Same site gate as the row scan — the fault clock ticks in
            // the identical order — but the table is handed out as its
            // shared columnar mirror, without materializing rows.
            let gated = self
                .site_gate(node, &format!("scan of {table}"))
                .and_then(|()| {
                    self.source
                        .scan_columnar(table, &node.location, node.schema.len())
                });
            return Some(gated);
        }
        if let PhysOp::ResumeScan { fingerprint, .. } = &node.op {
            return Some(
                self.resume(node, *fingerprint)
                    .map(|rows| Arc::new(ColumnarBatch::from_rows(rows.rows(), node.schema.len()))),
            );
        }
        None
    }

    fn runner(&self) -> &dyn MorselRunner {
        match &self.runner {
            Some(r) => r,
            None => &SERIAL,
        }
    }
}
