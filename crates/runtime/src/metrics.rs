//! Observability for one parallel run.

use crate::exchange::ExchangeStats;
use crate::morsel::PoolStats;
use geoqp_common::Location;
use std::collections::BTreeMap;
use std::fmt;

/// Per-site activity during one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteMetrics {
    /// Plan fragments the site's workers executed.
    pub fragments: u32,
    /// Logical fault-clock steps the site consumed: one per scan attempt
    /// and one per batch-send attempt (retries included). Deterministic
    /// for a given plan and fault schedule.
    pub busy_steps: u64,
    /// Simulated time at which the site's last fragment finished
    /// producing, ms.
    pub busy_ms: f64,
    /// Morsel-pool activity when intra-fragment parallelism is on
    /// (all-zero otherwise). `morsels` and `makespan_morsels` are
    /// deterministic; `steals`/`peak_workers` record real scheduling.
    pub pool: PoolStats,
}

/// Per-exchange-edge activity during one run.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeMetrics {
    /// Pre-order SHIP index.
    pub edge: usize,
    /// Producer site.
    pub from: Location,
    /// Consumer site.
    pub to: Location,
    /// Channel counters: batches, bytes, queue depths, stalls.
    pub stats: ExchangeStats,
    /// Simulated time the stream's last byte arrived, ms.
    pub arrival_ms: f64,
}

/// The runtime's report for one parallel execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeMetrics {
    /// Simulated completion time of the whole query: the root fragment's
    /// critical path over exchange arrivals, ms. This is what pipelining
    /// improves — independent edges overlap instead of queueing.
    pub completion_ms: f64,
    /// Total simulated network time across all batches, ms — identical to
    /// the sequential interpreter's total shipping cost (one α per edge,
    /// β per byte, header bytes charged once per stream).
    pub network_ms: f64,
    /// Batches exchanged.
    pub batches: u64,
    /// Serialized bytes exchanged.
    pub bytes: u64,
    /// Pipeline stalls across all edges (producer + consumer waits).
    pub stalls: u64,
    /// Hedged backup transfers launched (0 when hedging is off).
    pub hedges_launched: u64,
    /// Hedged backups that delivered before their primary.
    pub hedges_won: u64,
    /// Hedged backups that routed via a compliant relay site.
    pub relays_used: u64,
    /// Circuit-breaker closed → open transitions across all link lanes.
    pub breaker_trips: u64,
    /// Per-site breakdown.
    pub sites: BTreeMap<Location, SiteMetrics>,
    /// Per-edge breakdown, in pre-order SHIP order.
    pub edges: Vec<EdgeMetrics>,
}

impl RuntimeMetrics {
    /// Speedup of the pipelined critical path over paying every transfer
    /// back to back (1.0 when there is nothing to overlap).
    pub fn overlap_speedup(&self) -> f64 {
        if self.completion_ms > 0.0 {
            self.network_ms / self.completion_ms
        } else {
            1.0
        }
    }
}

impl fmt::Display for RuntimeMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "completion {:.3} ms  (network total {:.3} ms, overlap speedup {:.2}x)",
            self.completion_ms,
            self.network_ms,
            self.overlap_speedup()
        )?;
        writeln!(
            f,
            "exchanged {} batches / {} bytes, {} pipeline stalls",
            self.batches, self.bytes, self.stalls
        )?;
        if self.hedges_launched > 0 || self.breaker_trips > 0 {
            writeln!(
                f,
                "hedges {} launched / {} won, {} relay(s), {} breaker trip(s)",
                self.hedges_launched, self.hedges_won, self.relays_used, self.breaker_trips
            )?;
        }
        for (site, m) in &self.sites {
            writeln!(
                f,
                "site {site}: {} fragment(s), {} busy step(s), done at {:.3} ms",
                m.fragments, m.busy_steps, m.busy_ms
            )?;
            if m.pool.morsels > 0 {
                writeln!(
                    f,
                    "  morsel pool: {} morsel(s), {} steal(s), peak {} worker(s), \
                     modeled makespan {} morsel-slot(s)",
                    m.pool.morsels, m.pool.steals, m.pool.peak_workers, m.pool.makespan_morsels
                )?;
            }
        }
        for e in &self.edges {
            writeln!(
                f,
                "edge #{} {} -> {}: {} batch(es), {} bytes, queue depth {} \
                 (peak {} B in flight), stalls {}/{}, arrival {:.3} ms",
                e.edge,
                e.from,
                e.to,
                e.stats.batches,
                e.stats.bytes,
                e.stats.max_queue_depth,
                e.stats.peak_bytes_in_flight,
                e.stats.send_stalls,
                e.stats.recv_stalls,
                e.arrival_ms
            )?;
        }
        Ok(())
    }
}
