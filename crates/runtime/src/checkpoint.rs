//! Compliant checkpoint/resume for failover.
//!
//! When a fragment's output fully crosses a SHIP edge, the encoded batches
//! are retained in a [`CheckpointStore`], keyed by a canonical
//! **fingerprint** of the producer subtree (operator parameters, schemas,
//! placement — mixed with the policy-catalog epoch) and homed at a site.
//! The legality rule is the paper's shipping trait `𝒮_n` (AR1–AR4): an
//! operator's output may persist exactly at the sites its output may ship
//! to, so [`CheckpointStore::put`] refuses any home outside the trait with
//! a typed [`GeoError::NonCompliant`] — checkpointing never weakens
//! Definition 1.
//!
//! On a site crash, the engine drops every checkpoint homed on the dead
//! site ([`CheckpointStore::drop_site`]), re-runs Algorithm 2 over the
//! surviving sites, and [`stitch`]es the new plan against the store: any
//! SHIP whose producer subtree's fingerprint has a live, trait-legal
//! checkpoint is replaced by a [`PhysOp::ResumeScan`] leaf at the
//! checkpoint's home, so only the lost work re-executes. Fingerprints are
//! structural (never pointer identity), and Algorithm 2 is deterministic,
//! so subtrees untouched by the crash re-plan to identical placements and
//! hit their checkpoints.

use geoqp_common::{GeoError, Location, LocationSet, Result};
use geoqp_plan::logical::LogicalPlan;
use geoqp_plan::{PhysOp, PhysicalPlan};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What the engine derived for one SHIP edge before execution: the
/// fingerprint of the producer subtree plus the compliance checker's view
/// of it (shipping trait + logical content). The runtime consumes these in
/// the same SHIP order it consumes the per-batch audit traits.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Canonical fingerprint of the edge's producer subtree.
    pub fingerprint: u64,
    /// The subtree's derived shipping trait `𝒮` — the only legal homes.
    pub legal: LocationSet,
    /// The subtree's logical content, for re-auditing resume edges.
    pub logical: Arc<LogicalPlan>,
}

/// One retained intermediate result.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Fingerprint of the subtree that produced it.
    pub fingerprint: u64,
    /// The site holding the encoded rows.
    pub home: Location,
    /// The producing subtree's shipping trait at checkpoint time.
    pub legal: LocationSet,
    /// The producing subtree's logical content.
    pub logical: Arc<LogicalPlan>,
    /// The output rows, encoded with [`Rows::encode`].
    pub encoded: Vec<u8>,
    /// Row count (reporting).
    pub rows: u64,
    /// Column count, needed to decode.
    pub arity: usize,
}

/// The per-query checkpoint store, shared by every fragment worker and
/// surviving across failover re-plans. Interior-mutable: workers `put`
/// concurrently, the re-planner `drop_site`s between attempts.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    by_key: Mutex<BTreeMap<(u64, Location), Checkpoint>>,
    hits: AtomicU64,
    misses: AtomicU64,
    resumed_bytes: AtomicU64,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Retain an intermediate result at `home`. The legality rule of the
    /// whole layer: `home` must lie inside the producing operator's
    /// shipping trait `𝒮_n`, otherwise the checkpoint is refused with a
    /// typed [`GeoError::NonCompliant`] — persisting data at a site its
    /// policies forbid is a Definition-1 violation even if no query ever
    /// reads it back.
    #[allow(clippy::too_many_arguments)]
    pub fn put(
        &self,
        fingerprint: u64,
        home: Location,
        legal: &LocationSet,
        logical: &Arc<LogicalPlan>,
        encoded: Vec<u8>,
        rows: u64,
        arity: usize,
    ) -> Result<()> {
        if !legal.contains(&home) {
            return Err(GeoError::NonCompliant(format!(
                "checkpoint {fingerprint:016x} may not be homed at {home}: \
                 outside its shipping trait {legal}"
            )));
        }
        self.by_key.lock().unwrap().insert(
            (fingerprint, home.clone()),
            Checkpoint {
                fingerprint,
                home,
                legal: legal.clone(),
                logical: Arc::clone(logical),
                encoded,
                rows,
                arity,
            },
        );
        Ok(())
    }

    /// The checkpoint for `fingerprint` homed exactly at `home`.
    pub fn get(&self, fingerprint: u64, home: &Location) -> Option<Checkpoint> {
        self.by_key
            .lock()
            .unwrap()
            .get(&(fingerprint, home.clone()))
            .cloned()
    }

    /// Any surviving checkpoint for `fingerprint`, preferring one homed
    /// at `prefer` (resuming there ships zero bytes); otherwise the first
    /// home in deterministic (sorted) order.
    pub fn lookup(&self, fingerprint: u64, prefer: &Location) -> Option<Checkpoint> {
        let map = self.by_key.lock().unwrap();
        if let Some(cp) = map.get(&(fingerprint, prefer.clone())) {
            return Some(cp.clone());
        }
        map.range((fingerprint, Location::new(""))..)
            .take_while(|((fp, _), _)| *fp == fingerprint)
            .map(|(_, cp)| cp.clone())
            .next()
    }

    /// Drop every checkpoint homed on `site` (it crashed; its retained
    /// state is gone with it). Returns how many were dropped.
    pub fn drop_site(&self, site: &Location) -> usize {
        let mut map = self.by_key.lock().unwrap();
        let before = map.len();
        map.retain(|(_, home), _| home != site);
        before - map.len()
    }

    /// Re-key every checkpoint of one subtree across a policy-epoch bump
    /// (a live revocation re-planned the query): entries under `old_fp`
    /// whose home still lies inside the subtree's *new* shipping trait
    /// move to `new_fp` with the shrunken trait recorded; homes that
    /// fell outside 𝒮ₙ are dropped — retained data may not outlive the
    /// policy that allowed it there. Returns `(kept, dropped)`.
    pub fn migrate(&self, old_fp: u64, new_fp: u64, legal: &LocationSet) -> (usize, usize) {
        if old_fp == new_fp {
            return (0, 0);
        }
        let mut map = self.by_key.lock().unwrap();
        let homes: Vec<Location> = map
            .range((old_fp, Location::new(""))..)
            .take_while(|((fp, _), _)| *fp == old_fp)
            .map(|((_, home), _)| home.clone())
            .collect();
        let (mut kept, mut dropped) = (0, 0);
        for home in homes {
            let mut cp = map
                .remove(&(old_fp, home.clone()))
                .expect("home just listed");
            if legal.contains(&home) {
                cp.fingerprint = new_fp;
                cp.legal = legal.clone();
                map.insert((new_fp, home), cp);
                kept += 1;
            } else {
                dropped += 1;
            }
        }
        (kept, dropped)
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.by_key.lock().unwrap().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every retained checkpoint (tests, diagnostics).
    pub fn snapshot(&self) -> Vec<Checkpoint> {
        self.by_key.lock().unwrap().values().cloned().collect()
    }

    /// Fingerprint lookups that found a live legal checkpoint.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Fingerprint lookups that found nothing (lost or never taken).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::SeqCst)
    }

    /// Encoded bytes served from checkpoints instead of recomputation.
    pub fn resumed_bytes(&self) -> u64 {
        self.resumed_bytes.load(Ordering::SeqCst)
    }
}

/// Canonical structural fingerprint of a physical subtree: a pure
/// function of every node's operator parameters, output schema, and
/// placement, mixed with the policy-catalog `epoch`. Two structurally
/// identical subtrees fingerprint equal across independently built plans
/// (no pointer identity anywhere), which is what lets a re-planned query
/// find the checkpoints its previous attempt left behind.
pub fn fingerprint(plan: &PhysicalPlan, epoch: u64) -> u64 {
    let mut canon = String::new();
    write_canonical(plan, &mut canon);
    // FNV-1a seeded with the policy epoch: a changed catalog invalidates
    // every checkpoint by changing every fingerprint.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ epoch;
    for b in canon.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn write_canonical(plan: &PhysicalPlan, out: &mut String) {
    // Debug forms of the operator enums are stable canonical encodings of
    // their parameters (expressions, keys, table refs — no pointers).
    let _ = write!(out, "{:?}@{}[", plan.op, plan.location);
    for f in plan.schema.fields() {
        let _ = write!(out, "{}:{:?},", f.name, f.data_type);
    }
    let _ = write!(out, "](");
    for c in &plan.inputs {
        write_canonical(c, out);
        out.push(',');
    }
    out.push(')');
}

/// The result of stitching a re-planned physical plan against the store.
#[derive(Debug)]
pub struct StitchOutcome {
    /// The stitched plan (unchanged when no checkpoint matched).
    pub plan: Arc<PhysicalPlan>,
    /// SHIP edges replaced by a resume leaf.
    pub hits: u64,
    /// SHIP edges with no usable checkpoint.
    pub misses: u64,
    /// Encoded bytes the hits will serve from the store.
    pub resumed_bytes: u64,
}

/// Replace every SHIP edge whose producer subtree has a live, trait-legal
/// checkpoint with a [`PhysOp::ResumeScan`] leaf at the checkpoint's home
/// (shipped to the edge's destination when the home differs — legal by
/// construction, since the destination passed the original per-edge
/// audit against the same trait). Subtrees under a hit are skipped;
/// subtrees under a miss are stitched recursively, so inner edges can
/// still resume even when their consumer's work was lost.
pub fn stitch(
    plan: &Arc<PhysicalPlan>,
    store: &CheckpointStore,
    epoch: u64,
) -> Result<StitchOutcome> {
    let mut hits = 0;
    let mut misses = 0;
    let mut resumed_bytes = 0;
    let stitched = stitch_node(
        plan,
        store,
        epoch,
        &mut hits,
        &mut misses,
        &mut resumed_bytes,
    )?;
    store.hits.fetch_add(hits, Ordering::SeqCst);
    store.misses.fetch_add(misses, Ordering::SeqCst);
    store
        .resumed_bytes
        .fetch_add(resumed_bytes, Ordering::SeqCst);
    Ok(StitchOutcome {
        plan: stitched,
        hits,
        misses,
        resumed_bytes,
    })
}

fn stitch_node(
    plan: &Arc<PhysicalPlan>,
    store: &CheckpointStore,
    epoch: u64,
    hits: &mut u64,
    misses: &mut u64,
    resumed_bytes: &mut u64,
) -> Result<Arc<PhysicalPlan>> {
    if matches!(plan.op, PhysOp::Ship) {
        let input = &plan.inputs[0];
        let fp = fingerprint(input, epoch);
        if let Some(cp) = store.lookup(fp, &plan.location) {
            *hits += 1;
            *resumed_bytes += cp.encoded.len() as u64;
            let leaf = Arc::new(PhysicalPlan::new(
                PhysOp::ResumeScan {
                    fingerprint: fp,
                    legal: cp.legal.clone(),
                    logical: Arc::clone(&cp.logical),
                },
                Arc::clone(&input.schema),
                cp.home.clone(),
                vec![],
            )?);
            // No-op when the checkpoint is homed at the destination.
            return Ok(PhysicalPlan::ship(leaf, plan.location.clone()));
        }
        *misses += 1;
    }
    let mut new_inputs = Vec::with_capacity(plan.inputs.len());
    let mut changed = false;
    for c in &plan.inputs {
        let s = stitch_node(c, store, epoch, hits, misses, resumed_bytes)?;
        changed |= !Arc::ptr_eq(&s, c);
        new_inputs.push(s);
    }
    if !changed {
        return Ok(Arc::clone(plan));
    }
    Ok(Arc::new(PhysicalPlan::new(
        plan.op.clone(),
        Arc::clone(&plan.schema),
        plan.location.clone(),
        new_inputs,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, Rows, Schema, TableRef, Value};

    fn scan(table: &str, loc: &str) -> Arc<PhysicalPlan> {
        Arc::new(
            PhysicalPlan::new(
                PhysOp::Scan {
                    table: TableRef::bare(table),
                },
                Arc::new(Schema::new(vec![Field::new("a", DataType::Int64)]).unwrap()),
                Location::new(loc),
                vec![],
            )
            .unwrap(),
        )
    }

    fn logical_of(plan: &PhysicalPlan) -> Arc<LogicalPlan> {
        let PhysOp::Scan { table } = &plan.op else {
            panic!("test helper expects a scan");
        };
        Arc::new(LogicalPlan::TableScan {
            table: table.clone(),
            location: plan.location.clone(),
            schema: Arc::clone(&plan.schema),
        })
    }

    fn encoded_rows() -> (Vec<u8>, u64) {
        let rows = Rows::from_rows(vec![vec![Value::Int64(1)], vec![Value::Int64(2)]]);
        (rows.encode(), rows.len() as u64)
    }

    #[test]
    fn fingerprints_are_structural_not_pointer_identity() {
        let a = scan("t", "L1");
        let b = scan("t", "L1");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(fingerprint(&a, 7), fingerprint(&b, 7));
        // Placement, table, and policy epoch all discriminate.
        assert_ne!(fingerprint(&a, 7), fingerprint(&scan("t", "L2"), 7));
        assert_ne!(fingerprint(&a, 7), fingerprint(&scan("u", "L1"), 7));
        assert_ne!(fingerprint(&a, 7), fingerprint(&a, 8));
    }

    #[test]
    fn illegal_home_is_a_typed_error() {
        let store = CheckpointStore::new();
        let node = scan("t", "L1");
        let legal = LocationSet::from_iter(["L1", "L2"]);
        let (encoded, n) = encoded_rows();
        let err = store
            .put(
                fingerprint(&node, 0),
                Location::new("L3"),
                &legal,
                &logical_of(&node),
                encoded,
                n,
                1,
            )
            .unwrap_err();
        assert_eq!(err.kind(), "non-compliant");
        assert!(err.message().contains("L3"));
        assert!(store.is_empty(), "a refused checkpoint must not persist");
    }

    #[test]
    fn drop_site_forgets_only_that_home() {
        let store = CheckpointStore::new();
        let node = scan("t", "L1");
        let fp = fingerprint(&node, 0);
        let legal = LocationSet::from_iter(["L1", "L2"]);
        let logical = logical_of(&node);
        for home in ["L1", "L2"] {
            let (encoded, n) = encoded_rows();
            store
                .put(fp, Location::new(home), &legal, &logical, encoded, n, 1)
                .unwrap();
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.drop_site(&Location::new("L1")), 1);
        assert!(store.get(fp, &Location::new("L1")).is_none());
        // The surviving home still answers preferred-miss lookups.
        let cp = store.lookup(fp, &Location::new("L9")).unwrap();
        assert_eq!(cp.home, Location::new("L2"));
    }

    #[test]
    fn migrate_rekeys_surviving_homes_and_drops_revoked_ones() {
        let store = CheckpointStore::new();
        let node = scan("t", "L1");
        let old_fp = fingerprint(&node, 1);
        let new_fp = fingerprint(&node, 2);
        let legal = LocationSet::from_iter(["L1", "L2"]);
        let logical = logical_of(&node);
        for home in ["L1", "L2"] {
            let (encoded, n) = encoded_rows();
            store
                .put(old_fp, Location::new(home), &legal, &logical, encoded, n, 1)
                .unwrap();
        }
        // The revocation shrank 𝒮ₙ to {L1}: L2's copy must not survive.
        let shrunken = LocationSet::from_iter(["L1"]);
        assert_eq!(store.migrate(old_fp, new_fp, &shrunken), (1, 1));
        assert_eq!(store.len(), 1);
        assert!(store.get(old_fp, &Location::new("L1")).is_none());
        let cp = store.get(new_fp, &Location::new("L1")).unwrap();
        assert_eq!(cp.legal, shrunken);
        // Same-epoch migration is a no-op.
        assert_eq!(store.migrate(new_fp, new_fp, &shrunken), (0, 0));
    }

    #[test]
    fn stitch_replaces_hit_edges_and_audits_counts() {
        // union(ship(t1@L1 → L4), ship(t3@L3 → L4)); checkpoint only t1.
        let t1 = scan("t1", "L1");
        let t3 = scan("t3", "L3");
        let schema = Arc::clone(&t1.schema);
        let plan = Arc::new(
            PhysicalPlan::new(
                PhysOp::Union,
                schema,
                Location::new("L4"),
                vec![
                    PhysicalPlan::ship(Arc::clone(&t1), Location::new("L4")),
                    PhysicalPlan::ship(Arc::clone(&t3), Location::new("L4")),
                ],
            )
            .unwrap(),
        );
        let store = CheckpointStore::new();
        let fp = fingerprint(&t1, 0);
        let legal = LocationSet::from_iter(["L1", "L4"]);
        let (encoded, n) = encoded_rows();
        let bytes = encoded.len() as u64;
        store
            .put(
                fp,
                Location::new("L4"),
                &legal,
                &logical_of(&t1),
                encoded,
                n,
                1,
            )
            .unwrap();

        let out = stitch(&plan, &store, 0).unwrap();
        assert_eq!((out.hits, out.misses), (1, 1));
        assert_eq!(out.resumed_bytes, bytes);
        assert_eq!((store.hits(), store.misses()), (1, 1));
        // Homed at the destination: the SHIP disappears entirely.
        assert_eq!(out.plan.ship_count(), 1);
        let mut resumes = 0;
        out.plan.visit(&mut |p| {
            if let PhysOp::ResumeScan { fingerprint, .. } = &p.op {
                resumes += 1;
                assert_eq!(*fingerprint, fp);
                assert_eq!(p.location, Location::new("L4"));
            }
        });
        assert_eq!(resumes, 1);

        // Nothing matching: the plan comes back untouched (same Arc).
        let empty = CheckpointStore::new();
        let same = stitch(&plan, &empty, 0).unwrap();
        assert!(Arc::ptr_eq(&same.plan, &plan));
        assert_eq!((same.hits, same.misses), (0, 2));
    }
}
