//! The per-site morsel worker pool: work-stealing execution of the
//! columnar kernels' morsel tasks.
//!
//! One [`MorselPool`] is created per site per run when
//! [`RuntimeConfig::workers_per_site`](crate::RuntimeConfig) exceeds 1.
//! Every fragment thread the runtime pins to that site dispatches its
//! kernels' morsels into the pool, so a site's fragments share one set
//! of CPU workers instead of each being capped at one thread.
//!
//! Scheduling is work-stealing: a dispatch seeds its tasks round-robin
//! across per-worker deques; each worker pops from its own deque front
//! and steals from other deques' backs when empty. The dispatching
//! fragment thread is itself a worker for the duration of the dispatch
//! (it grabs tasks until none remain queued, then blocks until its job
//! completes), so `workers_per_site` counts the fragment thread plus
//! `workers_per_site - 1` pool threads — and task execution can never
//! deadlock on pool capacity.
//!
//! **Determinism**: which worker runs which morsel is scheduling noise,
//! by design. The kernels in `geoqp-exec` merge morsel results by morsel
//! sequence number, so rows, bytes, transfer logs, and fault-clock
//! replay are bit-identical across worker counts and schedules. The only
//! schedule-dependent observables are the pool's own counters
//! ([`PoolStats`]: steals, peak concurrency), which are reported as
//! metrics and excluded from determinism contracts.
//!
//! The pool also maintains a deterministic *model* of parallel CPU time:
//! each dispatch of `n` tasks adds `ceil(n / workers)` to
//! [`PoolStats::makespan_morsels`] and `n` to [`PoolStats::morsels`].
//! The ratio is the ideal parallel fraction of kernel CPU under perfect
//! stealing, and — unlike wall-clock on a core-starved host — is a pure
//! function of the workload, which is what the scale-up experiments
//! report.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use geoqp_exec::MorselRunner;

/// One dispatched batch of morsel tasks sharing a job closure.
struct Job {
    /// The dispatcher's task closure with its lifetime erased. Valid
    /// because `PoolCore::dispatch` does not return until `remaining`
    /// hits zero, and no worker dereferences the pointer after its final
    /// decrement.
    task: *const (dyn Fn(usize) + Sync),
    /// Tasks not yet finished.
    remaining: AtomicUsize,
    /// A task panicked; the dispatcher re-raises.
    panicked: AtomicBool,
}

// SAFETY: the raw closure pointer is only dereferenced while the
// dispatching stack frame is alive (see `Job::task`), and the closure
// itself is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// One queued morsel: a job and the task index to run.
struct Task {
    job: Arc<Job>,
    idx: usize,
}

/// Wake/sleep state shared by the pool's workers.
struct PoolState {
    /// Tasks queued in deques and not yet grabbed.
    queued: usize,
    /// Pool is shutting down; workers exit.
    shutdown: bool,
}

/// Schedule counters, folded into per-site runtime metrics. `steals` and
/// `peak_workers` depend on thread timing and are **not** part of any
/// determinism contract; `morsels` and `makespan_morsels` are exact
/// functions of the workload and configuration.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total morsel tasks dispatched.
    pub morsels: u64,
    /// Tasks executed by a worker other than the deque they were seeded
    /// to (work stealing in action).
    pub steals: u64,
    /// Peak number of workers observed running tasks at once.
    pub peak_workers: u32,
    /// Modeled parallel makespan: `Σ ceil(n / workers)` over dispatches.
    /// `makespan_morsels / morsels` is the ideal parallel fraction of
    /// kernel CPU time at this worker count.
    pub makespan_morsels: u64,
}

impl PoolStats {
    /// Fold another pool's counters into this one.
    pub fn absorb(&mut self, other: &PoolStats) {
        self.morsels += other.morsels;
        self.steals += other.steals;
        self.peak_workers = self.peak_workers.max(other.peak_workers);
        self.makespan_morsels += other.makespan_morsels;
    }
}

/// The shared interior of a pool. Worker threads and [`PoolRunner`]s
/// hold `Arc`s of this — never of [`MorselPool`] itself, which owns the
/// join handles (an `Arc` cycle there would keep workers alive forever).
struct PoolCore {
    /// Per-worker task deques; the last deque belongs to dispatchers.
    deques: Vec<Mutex<VecDeque<Task>>>,
    state: Mutex<PoolState>,
    /// Signals workers that tasks were queued (or shutdown).
    work_cv: Condvar,
    /// Signals dispatchers that a job may have completed.
    done: Mutex<()>,
    done_cv: Condvar,
    /// Round-robin seed origin, rotated per dispatch to spread jobs.
    next_seed: AtomicUsize,
    workers: usize,
    morsels: AtomicU64,
    steals: AtomicU64,
    busy: AtomicU32,
    peak_busy: AtomicU32,
    makespan: AtomicU64,
}

/// A work-stealing morsel pool for one site. Dropping the pool shuts the
/// workers down and joins them (no thread leaks across runs).
pub struct MorselPool {
    core: Arc<PoolCore>,
    handles: Vec<JoinHandle<()>>,
}

impl MorselPool {
    /// Build a pool with `workers` total workers (the dispatching thread
    /// plus `workers - 1` spawned pool threads). `workers` is clamped to
    /// at least 1; a 1-worker pool spawns nothing and runs dispatches
    /// inline.
    pub fn new(workers: usize) -> MorselPool {
        let workers = workers.max(1);
        let core = Arc::new(PoolCore {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                queued: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            next_seed: AtomicUsize::new(0),
            workers,
            morsels: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            busy: AtomicU32::new(0),
            peak_busy: AtomicU32::new(0),
            makespan: AtomicU64::new(0),
        });
        let handles = (0..workers - 1)
            .map(|me| {
                let c = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("geoqp-morsel-{me}"))
                    .spawn(move || c.worker_loop(me))
                    .expect("spawn morsel worker")
            })
            .collect();
        MorselPool { core, handles }
    }

    /// Total workers participating in dispatches (caller included).
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Run `task(t)` for every `t in 0..n_tasks`, blocking until all
    /// have completed. Reentrant across fragment threads: concurrent
    /// dispatches interleave in the same deques and help run each
    /// other's tasks.
    pub fn dispatch(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        self.core.dispatch(n_tasks, task);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.core.stats()
    }

    /// A [`MorselRunner`] over this pool with the run's morsel size. The
    /// runner owns an `Arc` of the pool's interior, so it stays valid
    /// for as long as a fragment holds it (the pool's `Drop` still joins
    /// the worker threads regardless).
    pub fn runner(&self, morsel_rows: usize) -> PoolRunner {
        PoolRunner {
            core: Arc::clone(&self.core),
            morsel_rows,
        }
    }
}

impl Drop for MorselPool {
    fn drop(&mut self) {
        {
            let mut st = self.core.state.lock().unwrap();
            st.shutdown = true;
            self.core.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl PoolCore {
    fn dispatch(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        self.morsels.fetch_add(n_tasks as u64, Ordering::Relaxed);
        self.makespan
            .fetch_add(n_tasks.div_ceil(self.workers) as u64, Ordering::Relaxed);
        if self.workers == 1 {
            for t in 0..n_tasks {
                task(t);
            }
            return;
        }
        // Erase the closure's lifetime; `Job::task` documents why this
        // cannot dangle.
        let raw: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                task,
            )
        };
        let job = Arc::new(Job {
            task: raw,
            remaining: AtomicUsize::new(n_tasks),
            panicked: AtomicBool::new(false),
        });

        // Seed tasks round-robin and publish the count in one wakeup,
        // all under the state lock: a task must never be poppable
        // before it is counted in `queued`, or a concurrent grabber
        // could drive the counter below zero (`grab` takes the state
        // lock only *after* releasing the deque lock, so holding
        // state across the pushes cannot invert lock order).
        let start = self.next_seed.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = self.state.lock().unwrap();
            for t in 0..n_tasks {
                let d = (start + t) % self.deques.len();
                self.deques[d].lock().unwrap().push_back(Task {
                    job: Arc::clone(&job),
                    idx: t,
                });
            }
            st.queued += n_tasks;
            self.work_cv.notify_all();
        }

        // Help: the dispatcher grabs tasks (its own job's or another
        // concurrent dispatch's) until the deques drain.
        let me = self.deques.len() - 1;
        while let Some(task) = self.grab(me) {
            self.run_task(task);
        }

        // Wait for this job's stragglers running on other workers.
        {
            let mut guard = self.done.lock().unwrap();
            while job.remaining.load(Ordering::Acquire) > 0 {
                guard = self.done_cv.wait(guard).unwrap();
            }
        }
        if job.panicked.load(Ordering::Relaxed) {
            resume_unwind(Box::new("morsel task panicked"));
        }
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            morsels: self.morsels.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            peak_workers: self.peak_busy.load(Ordering::Relaxed),
            makespan_morsels: self.makespan.load(Ordering::Relaxed),
        }
    }

    /// Take one queued task: own deque's front first, then steal from
    /// the backs of the others. Returns `None` when every deque is
    /// empty.
    ///
    /// Deque guards must be confined to single `let` statements here:
    /// under edition 2021, an `if let` scrutinee's temporary guard
    /// lives through the *else* branch, and holding one deque's lock
    /// while acquiring another's lets two concurrent stealers deadlock
    /// ABBA-style (each owning its deque, each wanting the other's).
    fn grab(&self, me: usize) -> Option<Task> {
        let n = self.deques.len();
        let mut found = self.deques[me].lock().unwrap().pop_front();
        if found.is_none() {
            for k in 1..n {
                let victim = (me + k) % n;
                found = self.deques[victim].lock().unwrap().pop_back();
                if found.is_some() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        if found.is_some() {
            let mut st = self.state.lock().unwrap();
            st.queued -= 1;
        }
        found
    }

    /// Run one task, tracking occupancy and completing its job.
    fn run_task(&self, task: Task) {
        let now = self.busy.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_busy.fetch_max(now, Ordering::Relaxed);
        // SAFETY: the dispatcher's stack frame is alive until
        // `remaining` reaches zero, which happens strictly after this
        // call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*task.job.task)(task.idx) }));
        self.busy.fetch_sub(1, Ordering::Relaxed);
        if result.is_err() {
            task.job.panicked.store(true, Ordering::Relaxed);
        }
        if task.job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done.lock().unwrap();
            self.done_cv.notify_all();
        }
    }

    fn worker_loop(&self, me: usize) {
        loop {
            if let Some(task) = self.grab(me) {
                self.run_task(task);
                continue;
            }
            let mut st = self.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.queued > 0 {
                    break;
                }
                st = self.work_cv.wait(st).unwrap();
            }
        }
    }
}

/// A [`MorselRunner`] view over a shared site pool, carrying the run's
/// configured morsel size. Fragment threads hand this to the columnar
/// kernels via the exchange source.
pub struct PoolRunner {
    core: Arc<PoolCore>,
    morsel_rows: usize,
}

impl MorselRunner for PoolRunner {
    fn workers(&self) -> usize {
        self.core.workers
    }
    fn morsel_rows(&self) -> usize {
        self.morsel_rows.max(1)
    }
    fn dispatch(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        self.core.dispatch(n_tasks, task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_exec::parallel::parallel_map;

    #[test]
    fn pool_runs_every_task_exactly_once_and_joins_on_drop() {
        let before = count_threads();
        {
            let pool = MorselPool::new(4);
            let runner = pool.runner(8);
            for round in 0..20 {
                let n = 1 + (round * 7) % 40;
                let out = parallel_map(&runner, n, |t| t * 2);
                assert_eq!(out, (0..n).map(|t| t * 2).collect::<Vec<_>>());
            }
            let stats = pool.stats();
            assert!(stats.morsels > 0);
            assert!(stats.makespan_morsels <= stats.morsels);
        }
        // All pool threads joined after drop. Other tests may be
        // spawning concurrently, so poll for quiescence instead of
        // asserting a single instantaneous snapshot.
        for _ in 0..50 {
            if count_threads() <= before + 1 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(count_threads() <= before + 1, "pool threads leaked");
    }

    #[test]
    fn concurrent_dispatchers_share_the_pool() {
        let pool = MorselPool::new(3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let runner = pool.runner(4);
                s.spawn(move || {
                    for _ in 0..50 {
                        let sum: usize = parallel_map(&runner, 16, |t| t).iter().sum();
                        assert_eq!(sum, (0..16).sum::<usize>());
                    }
                });
            }
        });
    }

    #[test]
    fn makespan_model_is_exact() {
        let pool = MorselPool::new(4);
        pool.dispatch(10, &|_| {});
        pool.dispatch(3, &|_| {});
        let stats = pool.stats();
        assert_eq!(stats.morsels, 13);
        // ceil(10/4) + ceil(3/4) = 3 + 1.
        assert_eq!(stats.makespan_morsels, 4);
    }

    fn count_threads() -> usize {
        std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
    }
}
