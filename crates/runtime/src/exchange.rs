//! The bounded, metered exchange channel between two plan fragments.
//!
//! One [`Exchange`] backs one SHIP edge. The producer's worker thread
//! pushes row batches; when the queue is at capacity the producer blocks
//! (backpressure) until the consumer drains a batch. Every wait on either
//! side is counted as a pipeline stall, and the peak queue depth and bytes
//! in flight are tracked for [`RuntimeMetrics`](crate::RuntimeMetrics).
//!
//! Termination is explicit: the producer calls [`Exchange::close`] with
//! the edge's simulated arrival time once the last batch is queued, and
//! the consumer sees [`Received::Done`] after draining. A failed run is
//! torn down with [`Exchange::cancel`], which unblocks both sides so no
//! worker deadlocks on a channel whose peer has died.

use geoqp_common::{ColumnarBatch, Rows};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// One batch in flight on an exchange edge. Row-engine producers queue
/// materialized [`Rows`]; columnar producers queue a shared
/// `Arc<ColumnarBatch>` slice — the consumer clones the `Arc`, so a batch
/// crosses the fragment boundary without copying a single value. Byte
/// accounting is attached by the producer either way (for a columnar
/// batch, computed from column metadata), so the transfer log cannot tell
/// the two apart.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A materialized row batch (row engine).
    Rows(Rows),
    /// A shared columnar batch (columnar engine, zero-copy).
    Columnar(Arc<ColumnarBatch>),
}

impl Payload {
    /// Rows in the batch.
    pub fn len(&self) -> usize {
        match self {
            Payload::Rows(r) => r.len(),
            Payload::Columnar(b) => b.len(),
        }
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The batch as rows (columnar payloads defer the transpose until a
    /// consumer asks for row-major data).
    pub fn into_rows(self) -> Rows {
        match self {
            Payload::Rows(r) => r,
            Payload::Columnar(b) => Rows::from_batch(b),
        }
    }

    /// The batch in columnar form (converts only for row payloads).
    pub fn into_columnar(self, arity: usize) -> Arc<ColumnarBatch> {
        match self {
            Payload::Rows(r) => Arc::new(ColumnarBatch::from_rows(r.rows(), arity)),
            Payload::Columnar(b) => b,
        }
    }
}

/// A bounded single-producer single-consumer batch channel.
pub struct Exchange {
    capacity: usize,
    state: Mutex<State>,
    not_full: Condvar,
    not_empty: Condvar,
}

#[derive(Default)]
struct State {
    queue: VecDeque<(Payload, u64)>,
    bytes_in_flight: u64,
    closed: bool,
    cancelled: bool,
    arrival_ms: f64,
    stats: ExchangeStats,
}

/// What the consumer got from one [`Exchange::recv`].
pub enum Received {
    /// The next batch.
    Batch(Payload),
    /// Producer finished; the stream is fully consumed.
    Done,
    /// The run was aborted by a failure elsewhere.
    Cancelled,
}

/// Observability counters for one exchange edge.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExchangeStats {
    /// Batches sent.
    pub batches: u64,
    /// Serialized bytes sent.
    pub bytes: u64,
    /// Highest queue occupancy observed.
    pub max_queue_depth: usize,
    /// Highest byte volume simultaneously in flight.
    pub peak_bytes_in_flight: u64,
    /// Producer waits on a full queue.
    pub send_stalls: u64,
    /// Consumer waits on an empty queue.
    pub recv_stalls: u64,
}

impl Exchange {
    /// A channel holding at most `capacity` batches (≥ 1).
    pub fn new(capacity: usize) -> Exchange {
        Exchange {
            capacity: capacity.max(1),
            state: Mutex::new(State::default()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Queue one row batch, blocking while the channel is full. Returns
    /// `false` when the run was cancelled (the batch is discarded and the
    /// producer should unwind quietly).
    pub fn send(&self, rows: Rows, bytes: u64) -> bool {
        self.send_payload(Payload::Rows(rows), bytes)
    }

    /// [`Exchange::send`] for an already-wrapped payload — the columnar
    /// producer's entry point.
    pub fn send_payload(&self, payload: Payload, bytes: u64) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.queue.len() >= self.capacity && !st.cancelled {
            st.stats.send_stalls += 1;
            st = self.not_full.wait(st).unwrap();
        }
        if st.cancelled {
            return false;
        }
        st.queue.push_back((payload, bytes));
        st.bytes_in_flight += bytes;
        st.stats.batches += 1;
        st.stats.bytes += bytes;
        st.stats.max_queue_depth = st.stats.max_queue_depth.max(st.queue.len());
        st.stats.peak_bytes_in_flight = st.stats.peak_bytes_in_flight.max(st.bytes_in_flight);
        self.not_empty.notify_one();
        true
    }

    /// Producer is done; `arrival_ms` is the simulated time at which the
    /// stream's last byte reaches the consumer.
    pub fn close(&self, arrival_ms: f64) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        st.arrival_ms = arrival_ms;
        self.not_empty.notify_all();
    }

    /// Abort the run: unblock both sides permanently.
    pub fn cancel(&self) {
        let mut st = self.state.lock().unwrap();
        st.cancelled = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Take the next batch, blocking while the channel is empty and open.
    pub fn recv(&self) -> Received {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some((rows, bytes)) = st.queue.pop_front() {
                st.bytes_in_flight -= bytes;
                self.not_full.notify_one();
                return Received::Batch(rows);
            }
            if st.cancelled {
                return Received::Cancelled;
            }
            if st.closed {
                return Received::Done;
            }
            st.stats.recv_stalls += 1;
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// The stream's simulated arrival time (valid after `close`).
    pub fn arrival_ms(&self) -> f64 {
        self.state.lock().unwrap().arrival_ms
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> ExchangeStats {
        self.state.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::Value;

    fn batch(n: i64) -> Rows {
        Rows::from_rows(vec![vec![Value::Int64(n)]])
    }

    #[test]
    fn send_recv_close_roundtrip() {
        let ex = Exchange::new(2);
        assert!(ex.send(batch(1), 10));
        assert!(ex.send(batch(2), 20));
        ex.close(42.0);
        match ex.recv() {
            Received::Batch(b) => assert_eq!(b.into_rows().rows()[0][0], Value::Int64(1)),
            _ => panic!("expected batch"),
        }
        match ex.recv() {
            Received::Batch(b) => assert_eq!(b.into_rows().rows()[0][0], Value::Int64(2)),
            _ => panic!("expected batch"),
        }
        assert!(matches!(ex.recv(), Received::Done));
        assert_eq!(ex.arrival_ms(), 42.0);
        let st = ex.stats();
        assert_eq!(st.batches, 2);
        assert_eq!(st.bytes, 30);
        assert_eq!(st.max_queue_depth, 2);
        assert_eq!(st.peak_bytes_in_flight, 30);
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let ex = Exchange::new(1);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(ex.send(batch(1), 1));
                // Second send must wait for the consumer.
                assert!(ex.send(batch(2), 1));
                ex.close(0.0);
            });
            let mut got = 0;
            loop {
                match ex.recv() {
                    Received::Batch(_) => got += 1,
                    Received::Done => break,
                    Received::Cancelled => panic!("not cancelled"),
                }
            }
            assert_eq!(got, 2);
        });
        assert_eq!(ex.stats().max_queue_depth, 1);
    }

    #[test]
    fn cancel_unblocks_a_full_sender() {
        let ex = Exchange::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                assert!(ex.send(batch(1), 1));
                // Blocks on the full queue until cancel.
                ex.send(batch(2), 1)
            });
            // Give the sender a chance to block, then tear down.
            std::thread::yield_now();
            ex.cancel();
            assert!(!h.join().unwrap());
        });
        // The queued batch is still drained; then the cancellation shows.
        assert!(matches!(ex.recv(), Received::Batch(_)));
        assert!(matches!(ex.recv(), Received::Cancelled));
    }

    #[test]
    fn columnar_payload_crosses_zero_copy() {
        let ex = Exchange::new(1);
        let b = Arc::new(ColumnarBatch::from_rows(&[vec![Value::Int64(7)]], 1));
        assert!(ex.send_payload(Payload::Columnar(Arc::clone(&b)), 9));
        ex.close(0.0);
        match ex.recv() {
            Received::Batch(Payload::Columnar(got)) => {
                // The consumer holds the producer's allocation, not a copy.
                assert!(Arc::ptr_eq(&got, &b));
            }
            _ => panic!("expected columnar batch"),
        }
        assert!(matches!(ex.recv(), Received::Done));
    }
}
