//! # geoqp-runtime
//!
//! The concurrent pipelined execution runtime.
//!
//! The sequential interpreter in `geoqp-exec` runs a located plan as one
//! recursive evaluation: sites take turns, and every SHIP moves one
//! monolithic batch. This crate executes the same plans the way a real
//! geo-distributed engine would:
//!
//! * the plan is [cut](fragment::cut) into per-site **fragments** at SHIP
//!   boundaries;
//! * each fragment runs on its own worker thread
//!   (`std::thread::scope`), so sites genuinely compute concurrently;
//! * SHIP becomes a **streaming exchange**: bounded batches over bounded
//!   channels with backpressure ([`exchange::Exchange`]);
//! * every batch is charged through the existing
//!   [`NetworkTopology`](geoqp_net::NetworkTopology) cost model and
//!   [`FaultPlan`](geoqp_net::FaultPlan) at **deterministic** logical
//!   steps, so results, bytes, and fault verdicts never depend on thread
//!   scheduling;
//! * the Definition-1 **runtime compliance audit** is enforced per batch:
//!   no batch leaves a site for a destination outside the operator's
//!   shipping trait `𝒮`;
//! * a [`RuntimeMetrics`] report exposes per-site busy steps, exchange
//!   queue depths, bytes in flight, and pipeline stall counts.
//!
//! Row results, total shipped bytes, and total network cost are identical
//! to the sequential interpreter by construction; simulated *completion
//! time* is the critical path instead of the sum, which is the speedup
//! the `scaleup` benchmark figure reports.

pub mod checkpoint;
pub mod exchange;
pub mod fragment;
pub mod metrics;
pub mod morsel;
pub mod runtime;

pub use checkpoint::{
    fingerprint, stitch, Checkpoint, CheckpointSpec, CheckpointStore, StitchOutcome,
};
pub use exchange::{Exchange, ExchangeStats, Payload, Received};
pub use fragment::{cut, Cut, Edge};
pub use metrics::{EdgeMetrics, RuntimeMetrics, SiteMetrics};
pub use morsel::{MorselPool, PoolRunner, PoolStats};
pub use runtime::{RunOutput, Runtime, RuntimeConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field, Location, LocationSet, Rows, Schema, TableRef, Value};
    use geoqp_exec::{execute, MapSource, RetryPolicy, ShipHandler};
    use geoqp_expr::ScalarExpr;
    use geoqp_net::{FaultPlan, NetworkTopology, TransferLog};
    use geoqp_plan::{PhysOp, PhysicalPlan};
    use std::sync::Arc;

    fn loc(n: &str) -> Location {
        Location::new(n)
    }

    /// A sequential ship handler equivalent to core's SimShip (no faults):
    /// encode, charge, decode.
    struct CountingShip<'a> {
        topology: &'a NetworkTopology,
        log: TransferLog,
    }

    impl ShipHandler for CountingShip<'_> {
        fn ship(
            &mut self,
            from: &Location,
            to: &Location,
            rows: Rows,
            schema: &Schema,
        ) -> geoqp_common::Result<Rows> {
            let encoded = rows.encode();
            self.log.record(
                self.topology,
                from,
                to,
                encoded.len() as u64,
                rows.len() as u64,
            );
            Ok(Rows::decode(&encoded, schema.len()).unwrap())
        }
    }

    fn scan_node(table: &str, location: &str, n_cols: usize) -> Arc<PhysicalPlan> {
        let fields = (0..n_cols)
            .map(|i| Field::new(format!("c{i}"), DataType::Int64))
            .collect();
        Arc::new(
            PhysicalPlan::new(
                PhysOp::Scan {
                    table: TableRef::bare(table),
                },
                Arc::new(Schema::new(fields).unwrap()),
                loc(location),
                vec![],
            )
            .unwrap(),
        )
    }

    fn rows_i64(values: &[i64]) -> Rows {
        Rows::from_rows(values.iter().map(|v| vec![Value::Int64(*v)]).collect())
    }

    /// union(ship(t1@L1 -> L4), ship(t3@L3 -> L4)) — two independent
    /// exchange edges feeding one consumer.
    fn two_edge_plan() -> (Arc<PhysicalPlan>, MapSource) {
        let t1 = scan_node("t1", "L1", 1);
        let t3 = scan_node("t3", "L3", 1);
        let schema = Arc::clone(&t1.schema);
        let u = Arc::new(
            PhysicalPlan::new(
                PhysOp::Union,
                schema,
                loc("L4"),
                vec![
                    PhysicalPlan::ship(t1, loc("L4")),
                    PhysicalPlan::ship(t3, loc("L4")),
                ],
            )
            .unwrap(),
        );
        let mut source = MapSource::new();
        source.insert(
            TableRef::bare("t1"),
            loc("L1"),
            rows_i64(&(0..40).collect::<Vec<_>>()),
        );
        source.insert(
            TableRef::bare("t3"),
            loc("L3"),
            rows_i64(&(100..130).collect::<Vec<_>>()),
        );
        (u, source)
    }

    fn multiset(rows: &Rows) -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = rows.rows().to_vec();
        v.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }

    #[test]
    fn matches_sequential_rows_bytes_and_cost() {
        let (plan, source) = two_edge_plan();
        let topology = NetworkTopology::paper_wan();

        let mut seq_ship = CountingShip {
            topology: &topology,
            log: TransferLog::new(),
        };
        let seq_rows = execute(&plan, &source, &mut seq_ship).unwrap();

        // Small batches force multi-batch streams.
        let out = Runtime::new(&topology)
            .with_config(RuntimeConfig {
                batch_rows: 7,
                channel_capacity: 2,
                columnar: false,
                ..RuntimeConfig::default()
            })
            .run(&plan, &source, None)
            .unwrap();

        assert_eq!(multiset(&out.rows), multiset(&seq_rows));
        assert_eq!(out.transfers.total_bytes(), seq_ship.log.total_bytes());
        assert_eq!(out.transfers.total_rows(), seq_ship.log.total_rows());
        assert!(
            (out.transfers.total_cost_ms() - seq_ship.log.total_cost_ms()).abs() < 1e-9,
            "streaming must cost exactly what one monolithic SHIP costs"
        );
        // 40 rows / 7 per batch = 6 batches + 30/7 = 5 batches.
        assert_eq!(out.metrics.batches, 11);
        // Pipelining: the two edges overlap, so completion (critical
        // path) is strictly below the back-to-back total.
        assert!(out.metrics.completion_ms < out.metrics.network_ms);
        assert!(out.metrics.overlap_speedup() > 1.0);
        assert_eq!(out.metrics.sites.len(), 3);
    }

    #[test]
    fn columnar_exchange_matches_row_exchange_exactly() {
        let (plan, source) = two_edge_plan();
        let topology = NetworkTopology::paper_wan();
        let run = |columnar: bool| {
            Runtime::new(&topology)
                .with_config(RuntimeConfig {
                    batch_rows: 7,
                    channel_capacity: 2,
                    columnar,
                    ..RuntimeConfig::default()
                })
                .run(&plan, &source, None)
                .unwrap()
        };
        let row = run(false);
        let col = run(true);
        // Not just equal multisets: identical row order, identical
        // normalized transfer logs (bytes, rows, costs, steps), identical
        // batch counts and completion time.
        assert_eq!(col.rows, row.rows);
        assert_eq!(col.transfers, row.transfers);
        assert_eq!(col.metrics.batches, row.metrics.batches);
        assert_eq!(col.metrics.bytes, row.metrics.bytes);
        assert_eq!(col.metrics.completion_ms, row.metrics.completion_ms);
    }

    #[test]
    fn columnar_exchange_replays_faults_identically() {
        let (plan, source) = two_edge_plan();
        let topology = NetworkTopology::paper_wan();
        let faults = FaultPlan::parse("drop:L1-L4@0..1", 1).unwrap();
        let run = |columnar: bool| {
            Runtime::new(&topology)
                .with_faults(&faults, RetryPolicy::default())
                .with_config(RuntimeConfig {
                    batch_rows: 7,
                    channel_capacity: 2,
                    columnar,
                    ..RuntimeConfig::default()
                })
                .run(&plan, &source, None)
                .unwrap()
        };
        let row = run(false);
        let col = run(true);
        assert_eq!(col.rows, row.rows);
        assert_eq!(
            col.transfers, row.transfers,
            "fault replay must be bit-identical"
        );
        assert!(col.transfers.fault_count() >= 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let (plan, source) = two_edge_plan();
        let topology = NetworkTopology::paper_wan();
        let runs: Vec<_> = (0..4)
            .map(|_| {
                Runtime::new(&topology)
                    .with_config(RuntimeConfig {
                        batch_rows: 3,
                        channel_capacity: 1,
                        columnar: false,
                        ..RuntimeConfig::default()
                    })
                    .run(&plan, &source, None)
                    .unwrap()
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.rows, runs[0].rows);
            assert_eq!(r.transfers, runs[0].transfers, "normalized logs must agree");
            assert_eq!(r.metrics.completion_ms, runs[0].metrics.completion_ms);
            assert_eq!(r.metrics.bytes, runs[0].metrics.bytes);
        }
    }

    #[test]
    fn per_batch_audit_blocks_illegal_destination() {
        let (plan, source) = two_edge_plan();
        let topology = NetworkTopology::paper_wan();
        // Edge 0 may only ship to L5 — the plan ships to L4, so the very
        // first batch must be refused at the source site.
        let audits = vec![
            LocationSet::from_iter(["L1", "L5"]),
            LocationSet::from_iter(["L3", "L4"]),
        ];
        let err = Runtime::new(&topology)
            .run(&plan, &source, Some(&audits))
            .unwrap_err();
        assert_eq!(err.kind(), "non-compliant");

        // With the true traits the run goes through.
        let audits = vec![
            LocationSet::from_iter(["L1", "L4"]),
            LocationSet::from_iter(["L3", "L4"]),
        ];
        Runtime::new(&topology)
            .run(&plan, &source, Some(&audits))
            .unwrap();
    }

    #[test]
    fn transient_faults_heal_and_permanent_site_crash_surfaces() {
        let (plan, source) = two_edge_plan();
        let topology = NetworkTopology::paper_wan();

        // Steps 0 and 1 drop everything on L1->L4 (edge slot 0 attempts 1
        // and... attempt grid: slot 0, n_slots=4 -> steps 0,4,8). Drop
        // window 0..1 kills only attempt 1; attempt 2 (step 4) delivers.
        let faults = FaultPlan::parse("drop:L1-L4@0..1", 1).unwrap();
        let out = Runtime::new(&topology)
            .with_faults(&faults, RetryPolicy::default())
            .run(&plan, &source, None)
            .unwrap();
        assert!(out.transfers.fault_count() >= 1);
        assert!(out
            .transfers
            .records()
            .iter()
            .any(|r| r.attempts == 2 && r.from == loc("L1")));

        // A permanent crash of L3 exhausts the budget with a typed error
        // naming the site.
        let faults = FaultPlan::parse("crash:L3", 1).unwrap();
        let err = Runtime::new(&topology)
            .with_faults(&faults, RetryPolicy::default())
            .run(&plan, &source, None)
            .unwrap_err();
        assert_eq!(err.failed_site(), Some(&loc("L3")));
    }

    #[test]
    fn worker_count_never_changes_results_or_transfers() {
        // A filter above the union gives the root fragment a CPU kernel
        // that actually splits into morsels (70 rows / 8-row morsels).
        let (union_plan, source) = two_edge_plan();
        let schema = Arc::clone(&union_plan.schema);
        let plan = Arc::new(
            PhysicalPlan::new(
                PhysOp::Filter {
                    predicate: ScalarExpr::col("c0").gt(ScalarExpr::lit(3.0)),
                },
                schema,
                loc("L4"),
                vec![union_plan],
            )
            .unwrap(),
        );
        let topology = NetworkTopology::paper_wan();
        let run = |workers: usize| {
            Runtime::new(&topology)
                .with_config(RuntimeConfig {
                    batch_rows: 7,
                    channel_capacity: 2,
                    columnar: true,
                    morsel_rows: 8,
                    workers_per_site: workers,
                })
                .run(&plan, &source, None)
                .unwrap()
        };
        let base = run(1);
        for workers in [2, 4] {
            let out = run(workers);
            assert_eq!(out.rows, base.rows, "rows must be worker-invariant");
            assert_eq!(out.transfers, base.transfers, "logs must be identical");
            assert_eq!(out.metrics.bytes, base.metrics.bytes);
            assert_eq!(out.metrics.completion_ms, base.metrics.completion_ms);
            // The pool saw work, and the deterministic counters agree
            // with the morsel split (8-row morsels over tiny fragments).
            let pooled: u64 = out.metrics.sites.values().map(|m| m.pool.morsels).sum();
            assert!(pooled > 0, "workers={workers} should dispatch morsels");
        }
    }

    #[test]
    fn single_site_plan_has_no_edges() {
        let t1 = scan_node("t1", "L1", 1);
        let mut source = MapSource::new();
        source.insert(TableRef::bare("t1"), loc("L1"), rows_i64(&[1, 2, 3]));
        let topology = NetworkTopology::paper_wan();
        let out = Runtime::new(&topology).run(&t1, &source, None).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.metrics.batches, 0);
        assert_eq!(out.metrics.completion_ms, 0.0);
        assert!(out.metrics.edges.is_empty());
    }
}
