//! Cutting a located physical plan into per-site fragments at SHIP edges.
//!
//! Every [`PhysOp::Ship`] node is an **exchange edge**: its input subtree
//! (located at the Ship's source site) becomes a producer fragment, and the
//! fragment containing the Ship node consumes the edge's stream in place of
//! interpreting the subtree. Because non-Ship operators are validated to be
//! colocated with their inputs, each fragment is single-site by
//! construction, so one worker thread per fragment is one worker per
//! (site, fragment) pair.
//!
//! Edges and scans are numbered in **pre-order**. Those indices are the
//! runtime's determinism anchor: fault-plan steps are derived from them
//! (never from thread arrival order), and per-edge shipping-trait audit
//! sets are passed in the same order.

use geoqp_common::{GeoError, Location, Result};
use geoqp_plan::{PhysOp, PhysicalPlan};
use std::collections::HashMap;

/// Address of a plan node, usable as a map key across worker threads.
pub fn node_key(p: &PhysicalPlan) -> usize {
    p as *const PhysicalPlan as usize
}

/// One exchange edge: a Ship node and its endpoints.
pub struct Edge<'p> {
    /// Pre-order index among the plan's Ship nodes.
    pub id: usize,
    /// The Ship node itself. `ship.inputs[0]` is the producer subtree.
    pub ship: &'p PhysicalPlan,
    /// Producer site.
    pub from: Location,
    /// Consumer site.
    pub to: Location,
}

impl Edge<'_> {
    /// The producer fragment's root.
    pub fn subtree(&self) -> &PhysicalPlan {
        self.ship.inputs[0].as_ref()
    }
}

/// The fragment decomposition of one plan.
pub struct Cut<'p> {
    /// Exchange edges in pre-order.
    pub edges: Vec<Edge<'p>>,
    /// Ship node address → edge id.
    pub edge_of: HashMap<usize, usize>,
    /// Scan node address → scan slot (pre-order among scans).
    pub scan_slot: HashMap<usize, usize>,
    /// Number of scan nodes.
    pub scan_count: usize,
}

impl Cut<'_> {
    /// Width of the deterministic fault-step grid: one slot per exchange
    /// edge plus one per scan. Attempt `a` (1-based) of slot `s` consults
    /// the fault plan at step `(a-1)·n_slots + s`, so verdicts depend only
    /// on the plan shape, never on thread interleaving.
    pub fn n_slots(&self) -> u64 {
        (self.edges.len() + self.scan_count).max(1) as u64
    }
}

/// Decompose `plan` into exchange edges and scan slots. Fails if the plan
/// shares a Ship subtree between two parents (the tree-shaped interpreter
/// would evaluate it twice, but an exchange stream can be consumed once).
pub fn cut(plan: &PhysicalPlan) -> Result<Cut<'_>> {
    let mut out = Cut {
        edges: Vec::new(),
        edge_of: HashMap::new(),
        scan_slot: HashMap::new(),
        scan_count: 0,
    };
    let mut shared_ship = false;
    walk(plan, &mut out, &mut shared_ship);
    if shared_ship {
        return Err(GeoError::Execution(
            "parallel runtime requires a tree-shaped plan: a Ship subtree is shared \
             between two parents"
                .into(),
        ));
    }
    Ok(out)
}

fn walk<'p>(p: &'p PhysicalPlan, out: &mut Cut<'p>, shared_ship: &mut bool) {
    match &p.op {
        PhysOp::Ship => {
            let id = out.edges.len();
            if out.edge_of.insert(node_key(p), id).is_some() {
                *shared_ship = true;
            }
            out.edges.push(Edge {
                id,
                ship: p,
                from: p.inputs[0].location.clone(),
                to: p.location.clone(),
            });
        }
        // ResumeScan is a leaf read gated by its home site's availability,
        // so it draws fault-clock steps from the same scan-slot grid.
        PhysOp::Scan { .. } | PhysOp::ResumeScan { .. } => {
            let slot = out.scan_count;
            out.scan_slot.entry(node_key(p)).or_insert(slot);
            out.scan_count += 1;
        }
        _ => {}
    }
    for c in &p.inputs {
        walk(c, out, shared_ship);
    }
}
