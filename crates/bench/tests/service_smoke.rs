//! CI smoke for the multi-tenant service path: a small closed-loop run
//! through the real `QueryService` (admission, DRR scheduling, plan
//! cache, concurrent execution) over the seeded ad-hoc generator.
//! `GEOQP_SERVICE_SESSIONS` scales the session count (default 40).

use geoqp_bench::experiments::service::{closed_loop, to_json, PER_SESSION};

#[test]
fn closed_loop_service_smoke() {
    let sessions: usize = std::env::var("GEOQP_SERVICE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let b = closed_loop(sessions, 0.001, 2021);

    assert_eq!(b.tenants.len(), 4, "four template tenants");
    assert_eq!(
        b.completed,
        (sessions * PER_SESSION) as u64,
        "every closed-loop query completes"
    );
    assert_eq!(b.failed, 0, "generated queries always plan compliantly");
    assert_eq!(b.rejected, 0, "closed loops never overflow admission");
    assert!(b.queries_per_sec > 0.0);
    let cs = &b.cache;
    assert_eq!(
        cs.hits + cs.misses,
        b.completed + b.cache.invalidations,
        "every query went through the plan cache"
    );
    for t in &b.tenants {
        assert_eq!(t.stats.inflight, 0);
        assert_eq!(t.stats.queued, 0);
        assert_eq!(t.stats.completed + t.stats.failed, t.stats.admitted);
        assert!(t.stats.p99_ms >= t.stats.p50_ms);
    }

    // The JSON document parses-by-eye: key fields present and non-empty.
    let json = to_json(&b, 2021);
    for key in [
        "\"sessions\"",
        "\"queries_per_sec\"",
        "\"fresh_plans_per_sec\"",
        "\"plan_cache\"",
        "\"tenants\"",
        "\"p99_ms\"",
    ] {
        assert!(json.contains(key), "missing {key} in BENCH_service.json");
    }
}
