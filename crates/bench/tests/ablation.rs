//! The ablation claims, pinned as tests:
//!
//! * E1 — without the aggregation-pushdown rule, every delivery-constrained
//!   revenue rollup is rejected (Section 6.4's completeness argument);
//! * E2 — a frontier cap of 1 (cheapest-only, no Pareto diversity) loses at
//!   least the non-reducing rollup;
//! * E3 — the response-time objective never reports a longer critical path
//!   than the total-cost objective's total.

use geoqp_bench::experiments::ablation;

#[test]
fn rule_and_frontier_ablations_behave_as_documented() {
    let results = ablation::rejection_ablation(2021);
    let by_name = |n: &str| {
        results
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, c)| c)
            .unwrap()
    };
    let full = by_name("full optimizer");
    assert_eq!(full.rejected, 0, "full optimizer must plan everything");
    assert!(full.planned >= 10);

    let no_push = by_name("no aggregate pushdown");
    assert_eq!(
        no_push.planned, 0,
        "without eager aggregation no rollup can reach L1"
    );

    let cap1 = by_name("frontier cap = 1");
    assert!(
        cap1.rejected >= 1,
        "cheapest-only pruning must lose the non-reducing rollup"
    );
    assert!(
        cap1.planned >= full.planned - 2,
        "cap-1 should still plan the reducing rollups"
    );
}

#[test]
fn response_time_is_bounded_by_total_cost() {
    for r in ablation::objective_comparison(2021) {
        assert!(
            r.response_time_ms <= r.total_cost_ms + 1e-6,
            "{}: critical path {} exceeds total {}",
            r.query,
            r.response_time_ms,
            r.total_cost_ms
        );
    }
}
