//! Differential suite: the vectorized columnar engine must be
//! *observationally identical* to the row-at-a-time engine.
//!
//! Every TPC-H query that survives compliant optimization is executed on
//! both engines, on both runtimes (sequential interpreter and the
//! concurrent pipelined runtime), under a matrix of deterministic fault
//! schedules. For every cell the two engines must agree on
//!
//! * the result **row multiset** (in fact: the exact rows, in order),
//! * the **shipped bytes** and the full normalized transfer log (every
//!   transfer's source, destination, bytes, rows, attempts, and cost —
//!   which makes the fault replay bit-identical, not just equal in
//!   aggregate), and
//! * the **audit outcome**: success, or the same typed error (policy
//!   rejection, Definition-1 violation, site crash) naming the same site.
//!
//! Columnar execution is a CPU optimization; nothing observable may move.

use geoqp_core::{Engine, ExecutionResult, OptimizerMode, RuntimeConfig};
use geoqp_exec::RetryPolicy;
use geoqp_net::FaultPlan;
use geoqp_plan::PhysicalPlan;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

const SF: f64 = 0.01;
const SEED: u64 = 2021;

/// The fault matrix: drops with a healing window, seeded probabilistic
/// loss, latency degradation, and a permanent single-site crash (which
/// both engines must *fail* on identically for queries that need L3).
const FAULT_SPECS: [&str; 4] = [
    "drop:L1-L4@0..1",
    "flaky:L1-L3:0.25",
    "degrade:L2-L4:4x",
    "crash:L3",
];

/// Build the standard experiment engine and the optimized plans for
/// every query the CRA policy set admits.
fn optimized_queries() -> (Engine, Vec<(&'static str, Arc<PhysicalPlan>)>) {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(SF));
    geoqp_tpch::populate(&catalog, SF, SEED).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::CRA, 10, SEED).expect("policy generation");
    let engine = geoqp_bench::experiments::engine_with_policies(Arc::clone(&catalog), policies);

    let mut plans = Vec::new();
    for (query, plan) in all_queries(&catalog).expect("queries") {
        if let Ok(optimized) = engine.optimize(&plan, OptimizerMode::Compliant, None) {
            plans.push((query, Arc::clone(&optimized.physical)));
        }
    }
    assert!(!plans.is_empty(), "no query survived the policy set");
    (engine, plans)
}

/// Assert that two execution outcomes are observationally identical:
/// same rows in the same order, bit-identical transfer logs (bytes,
/// rows, attempts, faults, costs), or the same typed error.
fn assert_identical(
    query: &str,
    runtime: &str,
    schedule: &str,
    row: Result<ExecutionResult, geoqp_common::GeoError>,
    col: Result<ExecutionResult, geoqp_common::GeoError>,
) {
    let ctx = format!("{query} [{runtime}, faults={schedule}]");
    match (row, col) {
        (Ok(r), Ok(c)) => {
            assert_eq!(r.rows, c.rows, "{ctx}: rows diverged");
            assert_eq!(
                r.transfers.total_bytes(),
                c.transfers.total_bytes(),
                "{ctx}: shipped bytes diverged"
            );
            assert_eq!(r.transfers, c.transfers, "{ctx}: transfer logs diverged");
        }
        (Err(r), Err(c)) => {
            assert_eq!(r.kind(), c.kind(), "{ctx}: error kinds diverged");
            assert_eq!(
                r.failed_site(),
                c.failed_site(),
                "{ctx}: failed sites diverged"
            );
        }
        (Ok(_), Err(c)) => panic!("{ctx}: row engine succeeded, columnar failed: {c}"),
        (Err(r), Ok(_)) => panic!("{ctx}: columnar engine succeeded, row failed: {r}"),
    }
}

#[test]
fn sequential_engines_agree_without_faults() {
    let (engine, plans) = optimized_queries();
    for (query, plan) in &plans {
        assert_identical(
            query,
            "sequential",
            "none",
            engine.execute(plan),
            engine.execute_columnar(plan),
        );
    }
}

#[test]
fn sequential_engines_agree_under_every_fault_schedule() {
    let (engine, plans) = optimized_queries();
    let retry = RetryPolicy::default();
    for spec in FAULT_SPECS {
        let faults = FaultPlan::parse(spec, SEED).expect("fault spec");
        for (query, plan) in &plans {
            faults.reset_clock();
            let row = engine.execute_with_faults(plan, &faults, &retry);
            faults.reset_clock();
            let col = engine.execute_with_faults_columnar(plan, &faults, &retry);
            assert_identical(query, "sequential", spec, row, col);
        }
    }
}

#[test]
fn parallel_runtime_agrees_without_faults() {
    let (engine, plans) = optimized_queries();
    let retry = RetryPolicy::none();
    for (query, plan) in &plans {
        let run = |columnar: bool| {
            let config = RuntimeConfig {
                columnar,
                ..RuntimeConfig::default()
            };
            engine
                .execute_parallel_opts(plan, None, &retry, &config)
                .map(|p| ExecutionResult {
                    rows: p.rows,
                    transfers: p.transfers,
                })
        };
        assert_identical(query, "parallel", "none", run(false), run(true));
    }
}

#[test]
fn parallel_runtime_agrees_under_every_fault_schedule() {
    let (engine, plans) = optimized_queries();
    let retry = RetryPolicy::default();
    for spec in FAULT_SPECS {
        let faults = FaultPlan::parse(spec, SEED).expect("fault spec");
        for (query, plan) in &plans {
            let run = |columnar: bool| {
                faults.reset_clock();
                let config = RuntimeConfig {
                    columnar,
                    ..RuntimeConfig::default()
                };
                engine
                    .execute_parallel_opts(plan, Some(&faults), &retry, &config)
                    .map(|p| ExecutionResult {
                        rows: p.rows,
                        transfers: p.transfers,
                    })
            };
            assert_identical(query, "parallel", spec, run(false), run(true));
        }
    }
}

#[test]
fn sequential_and_parallel_columnar_ship_the_same_bytes() {
    // Cross-runtime invariant on the columnar path itself: streaming a
    // batch as column vectors must charge exactly what the sequential
    // engine's one monolithic row encoding charges.
    let (engine, plans) = optimized_queries();
    for (query, plan) in &plans {
        let seq = engine.execute_columnar(plan).expect("sequential columnar");
        let config = RuntimeConfig {
            columnar: true,
            ..RuntimeConfig::default()
        };
        let par = engine
            .execute_parallel_opts(plan, None, &RetryPolicy::none(), &config)
            .expect("parallel columnar");
        assert_eq!(
            seq.transfers.total_bytes(),
            par.transfers.total_bytes(),
            "{query}: columnar runtimes shipped different bytes"
        );
        assert_eq!(
            seq.rows.len(),
            par.rows.len(),
            "{query}: cardinality diverged"
        );
    }
}
