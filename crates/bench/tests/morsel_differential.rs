//! Differential suite: morsel-driven intra-fragment parallelism must be
//! *observationally invisible*.
//!
//! Every TPC-H query that survives compliant optimization is executed on
//! the columnar parallel runtime at 1, 2, and 4 morsel workers per
//! site, under a matrix of deterministic fault schedules. For every
//! cell the multi-worker run must reproduce the one-worker run's
//!
//! * **rows**, bit-for-bit and in the same order (the partitioned hash
//!   join and parallel aggregates merge per-morsel results in morsel
//!   sequence order, so not even row order may move),
//! * **transfer log** — every transfer's source, destination, bytes,
//!   rows, attempts, and cost, which makes fault replay identical, and
//! * **audit outcome**: success, or the same typed error naming the
//!   same site.
//!
//! The worker pool is a scheduling freedom, not a semantic one; only
//! the steal/occupancy counters may differ between runs.

use geoqp_core::{Engine, OptimizerMode, ParallelResult, RuntimeConfig};
use geoqp_exec::RetryPolicy;
use geoqp_net::FaultPlan;
use geoqp_plan::PhysicalPlan;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

const SF: f64 = 0.01;
const SEED: u64 = 2021;

/// Worker counts under test; the first is the serial baseline.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Small morsels so the SF 0.01 fragments split into many tasks and
/// the steal paths actually run.
const MORSEL_ROWS: usize = 128;

/// Same fault matrix as the columnar differential suite: drops with a
/// healing window, seeded probabilistic loss, latency degradation, and
/// a permanent single-site crash.
const FAULT_SPECS: [&str; 4] = [
    "drop:L1-L4@0..1",
    "flaky:L1-L3:0.25",
    "degrade:L2-L4:4x",
    "crash:L3",
];

fn optimized_queries() -> (Engine, Vec<(&'static str, Arc<PhysicalPlan>)>) {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(SF));
    geoqp_tpch::populate(&catalog, SF, SEED).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::CRA, 10, SEED).expect("policy generation");
    let engine = geoqp_bench::experiments::engine_with_policies(Arc::clone(&catalog), policies);

    let mut plans = Vec::new();
    for (query, plan) in all_queries(&catalog).expect("queries") {
        if let Ok(optimized) = engine.optimize(&plan, OptimizerMode::Compliant, None) {
            plans.push((query, Arc::clone(&optimized.physical)));
        }
    }
    assert!(!plans.is_empty(), "no query survived the policy set");
    (engine, plans)
}

fn config_for(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        columnar: true,
        workers_per_site: workers,
        morsel_rows: MORSEL_ROWS,
        ..RuntimeConfig::default()
    }
}

/// Total pooled morsels a run dispatched across its site pools.
fn pooled_morsels(run: &ParallelResult) -> u64 {
    run.metrics.sites.values().map(|m| m.pool.morsels).sum()
}

/// Assert a multi-worker outcome is bit-identical to the one-worker
/// baseline: exact rows in order, exact transfer log, or the same
/// typed error naming the same site.
fn assert_identical(
    query: &str,
    workers: usize,
    schedule: &str,
    base: &Result<ParallelResult, geoqp_common::GeoError>,
    run: &Result<ParallelResult, geoqp_common::GeoError>,
) {
    let ctx = format!("{query} [workers={workers}, faults={schedule}]");
    match (base, run) {
        (Ok(b), Ok(r)) => {
            assert_eq!(b.rows, r.rows, "{ctx}: rows diverged");
            assert_eq!(b.transfers, r.transfers, "{ctx}: transfer logs diverged");
            assert_eq!(
                b.transfers.total_bytes(),
                r.transfers.total_bytes(),
                "{ctx}: shipped bytes diverged"
            );
        }
        (Err(b), Err(r)) => {
            assert_eq!(b.kind(), r.kind(), "{ctx}: error kinds diverged");
            assert_eq!(
                b.failed_site(),
                r.failed_site(),
                "{ctx}: failed sites diverged"
            );
        }
        (Ok(_), Err(r)) => panic!("{ctx}: one worker succeeded, {workers} failed: {r}"),
        (Err(b), Ok(_)) => panic!("{ctx}: {workers} workers succeeded, one failed: {b}"),
    }
}

#[test]
fn worker_counts_agree_without_faults() {
    let (engine, plans) = optimized_queries();
    let retry = RetryPolicy::none();
    let mut pooled = 0u64;
    for (query, plan) in &plans {
        let base = engine.execute_parallel_opts(plan, None, &retry, &config_for(1));
        for &workers in &WORKER_COUNTS[1..] {
            let run = engine.execute_parallel_opts(plan, None, &retry, &config_for(workers));
            if let Ok(r) = &run {
                pooled += pooled_morsels(r);
            }
            assert_identical(query, workers, "none", &base, &run);
        }
    }
    assert!(
        pooled > 0,
        "no query dispatched a single pooled morsel — the suite is vacuous"
    );
}

#[test]
fn worker_counts_agree_under_every_fault_schedule() {
    let (engine, plans) = optimized_queries();
    let retry = RetryPolicy::default();
    for spec in FAULT_SPECS {
        let faults = FaultPlan::parse(spec, SEED).expect("fault spec");
        for (query, plan) in &plans {
            faults.reset_clock();
            let base = engine.execute_parallel_opts(plan, Some(&faults), &retry, &config_for(1));
            for &workers in &WORKER_COUNTS[1..] {
                faults.reset_clock();
                let run =
                    engine.execute_parallel_opts(plan, Some(&faults), &retry, &config_for(workers));
                assert_identical(query, workers, spec, &base, &run);
            }
        }
    }
}

#[test]
fn merge_order_is_pure_across_repeated_runs() {
    // Purity of the deterministic merge: re-running the *same* worker
    // count must reproduce rows and transfers exactly, run after run,
    // even though the work-stealing schedule differs every time. Only
    // the steal/occupancy counters are allowed to move.
    let (engine, plans) = optimized_queries();
    let retry = RetryPolicy::none();
    for (query, plan) in plans.iter().take(6) {
        let reference = engine
            .execute_parallel_opts(plan, None, &retry, &config_for(4))
            .expect("reference run");
        for round in 0..3 {
            let again = engine
                .execute_parallel_opts(plan, None, &retry, &config_for(4))
                .expect("repeat run");
            assert_eq!(
                reference.rows, again.rows,
                "{query}: round {round} rows diverged from the reference schedule"
            );
            assert_eq!(
                reference.transfers, again.transfers,
                "{query}: round {round} transfer logs diverged"
            );
            assert_eq!(
                pooled_morsels(&reference),
                pooled_morsels(&again),
                "{query}: round {round} morsel counts diverged (dispatch is not pure)"
            );
        }
    }
}
