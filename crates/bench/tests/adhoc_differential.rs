//! Differential fuzz over the generated ad-hoc workload: a seeded
//! sample of generator queries (default 500 in release builds, override
//! with `GEOQP_ADHOC_N`) is optimized in compliant mode and executed
//! row vs columnar × sequential vs parallel. Engine pairs must agree on
//! rows, shipped bytes, and the full normalized transfer log; the two
//! runtimes must agree on the row multiset and shipped bytes. A slice
//! of the sample additionally replays under drop and flaky fault
//! schedules, where both engines must agree outcome-for-outcome —
//! including failing with the same typed error at the same site.

use geoqp_core::{Engine, ExecutionResult, OptimizerMode, RuntimeConfig};
use geoqp_exec::RetryPolicy;
use geoqp_net::FaultPlan;
use geoqp_plan::PhysicalPlan;
use geoqp_tpch::adhoc::generate_adhoc;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use std::sync::Arc;

const SF: f64 = 0.001;
const SEED: u64 = 2021;

/// The fault slice: a healing partition and a seeded flaky link.
const FAULT_SPECS: [&str; 2] = ["drop:L1-L4@0..1", "flaky:L1-L3:0.25"];

/// Sample size: `GEOQP_ADHOC_N`, defaulting to the acceptance-level 500
/// in release builds and a quicker round under `cargo test` (debug).
fn adhoc_n() -> usize {
    std::env::var("GEOQP_ADHOC_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 80 } else { 500 })
}

/// Generate the sample and optimize every query in compliant mode. The
/// generator's contract says nothing may fail to plan.
fn optimized_adhoc() -> (Engine, Vec<(usize, Arc<PhysicalPlan>)>) {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(SF));
    geoqp_tpch::populate(&catalog, SF, SEED).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::CRA, 10, SEED).expect("policy generation");
    let engine = geoqp_bench::experiments::engine_with_policies(Arc::clone(&catalog), policies);
    let queries = generate_adhoc(&catalog, adhoc_n(), SEED).expect("generate");
    let plans = queries
        .iter()
        .map(|q| {
            let opt = engine
                .optimize(&q.plan, OptimizerMode::Compliant, None)
                .unwrap_or_else(|e| panic!("query #{} failed to plan: {e}\n{}", q.id, q.sql));
            (q.id, Arc::clone(&opt.physical))
        })
        .collect();
    (engine, plans)
}

/// Two executions of the *same engine pair* must be observationally
/// identical: same rows in the same order, bit-identical transfer logs,
/// or the same typed error naming the same site.
fn assert_identical(
    id: usize,
    runtime: &str,
    schedule: &str,
    row: Result<ExecutionResult, geoqp_common::GeoError>,
    col: Result<ExecutionResult, geoqp_common::GeoError>,
) {
    let ctx = format!("adhoc #{id} [{runtime}, faults={schedule}]");
    match (row, col) {
        (Ok(r), Ok(c)) => {
            assert_eq!(r.rows, c.rows, "{ctx}: rows diverged");
            assert_eq!(
                r.transfers.total_bytes(),
                c.transfers.total_bytes(),
                "{ctx}: shipped bytes diverged"
            );
            assert_eq!(r.transfers, c.transfers, "{ctx}: transfer logs diverged");
        }
        (Err(r), Err(c)) => {
            assert_eq!(r.kind(), c.kind(), "{ctx}: error kinds diverged");
            assert_eq!(
                r.failed_site(),
                c.failed_site(),
                "{ctx}: failed sites diverged"
            );
        }
        (Ok(_), Err(c)) => panic!("{ctx}: row engine succeeded, columnar failed: {c}"),
        (Err(r), Ok(_)) => panic!("{ctx}: columnar engine succeeded, row failed: {r}"),
    }
}

/// Sorted row fingerprints, for cross-runtime comparison (the pipelined
/// runtime may emit unsorted results in a different order).
fn sorted_rows(r: &ExecutionResult) -> Vec<String> {
    let mut v: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
    v.sort();
    v
}

#[test]
fn engines_and_runtimes_agree_on_generated_queries() {
    let (engine, plans) = optimized_adhoc();
    assert!(plans.len() >= adhoc_n(), "sample came up short");
    let retry = RetryPolicy::none();
    for (id, plan) in &plans {
        let seq_row = engine.execute(plan);
        let seq_col = engine.execute_columnar(plan);
        let par = |columnar: bool| {
            let config = RuntimeConfig {
                columnar,
                ..RuntimeConfig::default()
            };
            engine
                .execute_parallel_opts(plan, None, &retry, &config)
                .map(|p| ExecutionResult {
                    rows: p.rows,
                    transfers: p.transfers,
                })
        };
        let par_row = par(false);
        let par_col = par(true);

        // Engine pairs: bit-identical within each runtime.
        let seq_row = seq_row.unwrap_or_else(|e| panic!("adhoc #{id} sequential: {e}"));
        let seq_col = seq_col.unwrap_or_else(|e| panic!("adhoc #{id} seq columnar: {e}"));
        let par_row = par_row.unwrap_or_else(|e| panic!("adhoc #{id} parallel: {e}"));
        let par_col = par_col.unwrap_or_else(|e| panic!("adhoc #{id} par columnar: {e}"));
        let (seq_sorted, seq_bytes) = (sorted_rows(&seq_row), seq_row.transfers.total_bytes());
        let (par_sorted, par_bytes) = (sorted_rows(&par_row), par_row.transfers.total_bytes());
        assert_identical(*id, "sequential", "none", Ok(seq_row), Ok(seq_col));
        assert_identical(*id, "parallel", "none", Ok(par_row), Ok(par_col));

        // Runtimes: same multiset of rows, same shipped bytes.
        assert_eq!(
            seq_sorted, par_sorted,
            "adhoc #{id}: runtimes returned different rows"
        );
        assert_eq!(
            seq_bytes, par_bytes,
            "adhoc #{id}: runtimes shipped different bytes"
        );
    }
}

#[test]
fn fault_schedule_slice_agrees_across_engines() {
    let (engine, plans) = optimized_adhoc();
    let slice = &plans[..plans.len().min(60)];
    let retry = RetryPolicy::default();
    for spec in FAULT_SPECS {
        let faults = FaultPlan::parse(spec, SEED).expect("fault spec");
        for (id, plan) in slice {
            faults.reset_clock();
            let row = engine.execute_with_faults(plan, &faults, &retry);
            faults.reset_clock();
            let col = engine.execute_with_faults_columnar(plan, &faults, &retry);
            assert_identical(*id, "sequential", spec, row, col);

            let par = |columnar: bool| {
                faults.reset_clock();
                let config = RuntimeConfig {
                    columnar,
                    ..RuntimeConfig::default()
                };
                engine
                    .execute_parallel_opts(plan, Some(&faults), &retry, &config)
                    .map(|p| ExecutionResult {
                        rows: p.rows,
                        transfers: p.transfers,
                    })
            };
            assert_identical(*id, "parallel", spec, par(false), par(true));
        }
    }
}
