//! Criterion micro-benchmark: Algorithm 2 (site selection DP) as the
//! location count grows — the phase-2 cost reported alongside Figures
//! 7(d,e) and 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoqp_bench::experiments::setup::engine_with_policies;
use geoqp_common::{Location, LocationPattern, LocationSet};
use geoqp_core::{select_sites, OptimizerMode};
use geoqp_net::NetworkTopology;
use geoqp_tpch::policy_gen::star_policies_with_destinations;
use std::sync::Arc;

fn bench_site_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("site_selection");
    for n in [5usize, 10, 20] {
        let mut catalog = geoqp_tpch::paper_catalog(10.0);
        for i in 6..=n.max(5) {
            catalog.add_location(Location::new(format!("L{i}")));
        }
        let catalog = Arc::new(catalog);
        let to = LocationPattern::Set(LocationSet::from_iter((1..=n).map(|i| format!("L{i}"))));
        let policies = star_policies_with_destinations(&catalog, to).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        let plan = geoqp_tpch::query_by_name(&catalog, "Q5").unwrap();
        let annotated = engine
            .optimize(&plan, OptimizerMode::Compliant, None)
            .unwrap()
            .annotated;
        let topo = NetworkTopology::paper_wan();
        group.bench_with_input(BenchmarkId::new("q5", n), &n, |b, _| {
            b.iter(|| select_sites(&annotated, &topo, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_site_selection);
criterion_main!(benches);
