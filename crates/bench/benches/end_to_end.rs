//! Criterion macro-benchmark: full pipeline (optimize + distributed
//! execution with simulated SHIPs) on a small populated deployment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoqp_bench::experiments::setup::engine_with_policies;
use geoqp_core::OptimizerMode;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use std::sync::Arc;

fn bench_end_to_end(c: &mut Criterion) {
    let sf = 0.002;
    let catalog = Arc::new(geoqp_tpch::paper_catalog(sf));
    geoqp_tpch::populate(&catalog, sf, 2021).unwrap();
    let policies = generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let engine = engine_with_policies(Arc::clone(&catalog), policies);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for query in ["Q3", "Q5", "Q10"] {
        let plan = geoqp_tpch::query_by_name(&catalog, query).unwrap();
        group.bench_with_input(BenchmarkId::new("compliant", query), &plan, |b, plan| {
            b.iter(|| {
                let opt = engine
                    .optimize(plan, OptimizerMode::Compliant, None)
                    .unwrap();
                engine.execute(&opt.physical).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
