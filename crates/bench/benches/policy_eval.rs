//! Criterion micro-benchmark: Algorithm 1 (policy evaluation) throughput
//! as the expression count grows — the per-call cost behind Figure 7's η
//! scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
use geoqp_plan::descriptor::describe_local;
use geoqp_policy::PolicyEvaluator;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::scan;

fn bench_policy_eval(c: &mut Criterion) {
    let catalog = geoqp_tpch::paper_catalog(10.0);
    // A masked customer projection and a grouped lineitem aggregate — the
    // two descriptor shapes AR4 evaluates most often.
    let projection = scan(&catalog, "customer")
        .unwrap()
        .filter(ScalarExpr::col("c_acctbal").gt(ScalarExpr::lit(0.0)))
        .unwrap()
        .project_columns(&["c_custkey", "c_name", "c_mktsegment"])
        .unwrap()
        .build();
    let aggregate = scan(&catalog, "lineitem")
        .unwrap()
        .aggregate(
            &["l_orderkey"],
            vec![AggCall::new(
                AggFunc::Sum,
                ScalarExpr::col("l_extendedprice")
                    .mul(ScalarExpr::lit(1i64).sub(ScalarExpr::col("l_discount"))),
                "rev",
            )],
        )
        .unwrap()
        .build();
    let proj_q = describe_local(&projection).unwrap();
    let agg_q = describe_local(&aggregate).unwrap();

    let mut group = c.benchmark_group("policy_eval");
    for n in [10usize, 50, 100, 200] {
        let policies = generate_policies(&catalog, PolicyTemplate::CRA, n, 2021).unwrap();
        let universe = catalog.locations().clone();
        group.bench_with_input(BenchmarkId::new("projection", n), &n, |b, _| {
            let ev = PolicyEvaluator::new(&policies, &universe);
            b.iter(|| ev.evaluate(&proj_q))
        });
        group.bench_with_input(BenchmarkId::new("aggregate", n), &n, |b, _| {
            let ev = PolicyEvaluator::new(&policies, &universe);
            b.iter(|| ev.evaluate(&agg_q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_eval);
criterion_main!(benches);
