//! Criterion micro-benchmark: optimization time per TPC-H query, both
//! optimizers (the measurement behind Figures 6(b)–6(f)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoqp_bench::experiments::setup::engine_with_policies;
use geoqp_core::OptimizerMode;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use std::sync::Arc;

fn bench_optimization(c: &mut Criterion) {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(10.0));
    let policies = generate_policies(&catalog, PolicyTemplate::CRA, 10, 2021).unwrap();
    let engine = engine_with_policies(Arc::clone(&catalog), policies);
    let mut group = c.benchmark_group("optimize");
    group.sample_size(20);
    for query in ["Q2", "Q3", "Q5", "Q9", "Q10"] {
        let plan = geoqp_tpch::query_by_name(&catalog, query).unwrap();
        group.bench_with_input(BenchmarkId::new("compliant", query), &plan, |b, plan| {
            b.iter(|| {
                engine
                    .optimize(plan, OptimizerMode::Compliant, None)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("traditional", query), &plan, |b, plan| {
            b.iter(|| {
                engine
                    .optimize(plan, OptimizerMode::Traditional, None)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimization);
criterion_main!(benches);
