//! Kernel microbenchmarks: row-at-a-time vs vectorized columnar
//! throughput for the three workhorse operators (filter, hash join,
//! hash aggregate).
//!
//! Each kernel is a hand-built physical plan over the Table 2
//! deployment, executed end to end through [`Engine::execute`] (the
//! row interpreter) and [`Engine::execute_columnar`] (the vectorized
//! engine). Both paths ship exactly the same bytes and return exactly
//! the same rows — asserted per kernel via `rows_match` — so the only
//! thing the throughput numbers compare is CPU work per row.

use crate::experiments::setup::{engine_with_policies, EXEC_SF};
use geoqp_common::{DataType, Field, Location, Schema, TableRef};
use geoqp_core::{Engine, ExecutionResult, ParallelResult, RuntimeConfig};
use geoqp_exec::RetryPolicy;
use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
use geoqp_plan::{PhysOp, PhysicalPlan};
use geoqp_policy::PolicyCatalog;
use geoqp_tpch::schema::schema_of;
use std::sync::Arc;
use std::time::Instant;

/// Worker counts swept by the morsel benchmark.
pub const MORSEL_WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Rows per morsel used by the sweep (small enough that the 60k-row
/// kernels split into tens of morsels).
pub const MORSEL_SWEEP_ROWS: usize = 1024;

/// One worker count's measurement of a kernel under morsel dispatch.
#[derive(Debug)]
pub struct MorselPoint {
    /// Workers per site (`1` = inline serial kernels).
    pub workers: usize,
    /// Best-of-N real wall clock through the parallel runtime, ms.
    /// Meaningful only on a multi-core host; on a core-starved CI box
    /// threads time-slice one core and this stays flat (or regresses
    /// slightly from dispatch overhead).
    pub wall_ms: f64,
    /// `makespan_morsels / morsels` over the run's site pools: the
    /// deterministic modeled fraction of serial kernel CPU on the
    /// critical worker under perfect stealing. `1.0` at one worker.
    pub makespan_fraction: f64,
    /// `columnar_ms × makespan_fraction`: the modeled kernel CPU time
    /// at this worker count.
    pub modeled_ms: f64,
    /// Rows and shipped bytes identical to the one-worker run.
    pub rows_match: bool,
}

/// One kernel's row-vs-columnar comparison.
#[derive(Debug)]
pub struct KernelBench {
    /// Kernel name: `filter`, `hash_join`, or `hash_aggregate`.
    pub kernel: &'static str,
    /// Rows fed into the kernel (base-table cardinalities).
    pub input_rows: usize,
    /// Rows the kernel produced (identical across engines).
    pub output_rows: usize,
    /// Best-of-N wall clock for the row interpreter, milliseconds.
    pub row_ms: f64,
    /// Best-of-N wall clock for the columnar engine, milliseconds.
    pub columnar_ms: f64,
    /// Whether the two engines returned identical rows and shipped
    /// identical bytes.
    pub rows_match: bool,
    /// Morsel-parallel sweep over [`MORSEL_WORKER_SWEEP`].
    pub morsel: Vec<MorselPoint>,
}

impl KernelBench {
    /// Row-engine throughput in input rows per second.
    pub fn row_rows_per_sec(&self) -> f64 {
        if self.row_ms > 0.0 {
            self.input_rows as f64 / (self.row_ms / 1e3)
        } else {
            f64::INFINITY
        }
    }

    /// Columnar-engine throughput in input rows per second.
    pub fn columnar_rows_per_sec(&self) -> f64 {
        if self.columnar_ms > 0.0 {
            self.input_rows as f64 / (self.columnar_ms / 1e3)
        } else {
            f64::INFINITY
        }
    }

    /// `row_ms / columnar_ms` (>1 means the vectorized kernel wins).
    pub fn speedup(&self) -> f64 {
        if self.columnar_ms > 0.0 {
            self.row_ms / self.columnar_ms
        } else {
            1.0
        }
    }
}

fn loc(n: &str) -> Location {
    Location::new(n)
}

/// Scan of a TPC-H base table at its Table 2 home site.
fn scan(table: &str, location: &str) -> Arc<PhysicalPlan> {
    Arc::new(
        PhysicalPlan::new(
            PhysOp::Scan {
                table: TableRef::bare(table),
            },
            Arc::new(schema_of(table).expect("built-in TPC-H table")),
            loc(location),
            vec![],
        )
        .expect("valid scan"),
    )
}

/// `σ(l_quantity < 25 ∧ l_returnflag = 'R')` over lineitem@L4 — one
/// numeric comparison plus one dictionary-encoded string comparison,
/// exercising both vectorized mask paths.
fn filter_plan() -> Arc<PhysicalPlan> {
    let li = scan("lineitem", "L4");
    let schema = Arc::clone(&li.schema);
    let predicate = ScalarExpr::col("l_quantity")
        .lt(ScalarExpr::lit(25i64))
        .and(ScalarExpr::col("l_returnflag").eq(ScalarExpr::lit("R")));
    Arc::new(
        PhysicalPlan::new(PhysOp::Filter { predicate }, schema, loc("L4"), vec![li])
            .expect("valid filter"),
    )
}

/// `orders@L1 ⋈ lineitem@L4 on orderkey` — orders ships to L4 (same
/// bytes either engine), then the join probes per-batch key
/// fingerprints on the columnar path.
fn join_plan() -> Arc<PhysicalPlan> {
    let orders = scan("orders", "L1");
    let li = scan("lineitem", "L4");
    let schema = Arc::new(orders.schema.join(&li.schema).expect("disjoint columns"));
    let shipped = PhysicalPlan::ship(orders, loc("L4"));
    Arc::new(
        PhysicalPlan::new(
            PhysOp::HashJoin {
                left_keys: vec!["o_orderkey".into()],
                right_keys: vec!["l_orderkey".into()],
                filter: None,
            },
            schema,
            loc("L4"),
            vec![shipped, li],
        )
        .expect("valid join"),
    )
}

/// Q1-shaped aggregate: group lineitem by `(l_returnflag, l_linestatus)`
/// with three aggregates — the kernel that moved from per-row BTreeMap
/// probes to per-batch fingerprint hashing with one final sort.
fn aggregate_plan() -> Arc<PhysicalPlan> {
    let li = scan("lineitem", "L4");
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("l_returnflag", DataType::Str),
            Field::new("l_linestatus", DataType::Str),
            Field::new("sum_qty", DataType::Int64),
            Field::new("sum_base_price", DataType::Float64),
            Field::new("count_order", DataType::Int64),
        ])
        .expect("valid schema"),
    );
    Arc::new(
        PhysicalPlan::new(
            PhysOp::HashAggregate {
                group_by: vec!["l_returnflag".into(), "l_linestatus".into()],
                aggs: vec![
                    AggCall::new(AggFunc::Sum, ScalarExpr::col("l_quantity"), "sum_qty"),
                    AggCall::new(
                        AggFunc::Sum,
                        ScalarExpr::col("l_extendedprice"),
                        "sum_base_price",
                    ),
                    AggCall::count_star("count_order"),
                ],
            },
            schema,
            loc("L4"),
            vec![li],
        )
        .expect("valid aggregate"),
    )
}

/// Best-of-`runs` wall clock in milliseconds, plus the last result.
fn best_of(runs: usize, mut f: impl FnMut() -> ExecutionResult) -> (ExecutionResult, f64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (last.expect("at least one run"), best)
}

/// Best-of-`runs` wall clock through the parallel runtime at `workers`
/// morsel workers per site, plus the last result.
fn best_of_parallel(
    engine: &Engine,
    plan: &Arc<PhysicalPlan>,
    workers: usize,
    runs: usize,
) -> (ParallelResult, f64) {
    let config = RuntimeConfig {
        columnar: true,
        workers_per_site: workers,
        morsel_rows: MORSEL_SWEEP_ROWS,
        ..RuntimeConfig::default()
    };
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let r = engine
            .execute_parallel_opts(plan, None, &RetryPolicy::none(), &config)
            .expect("parallel execute");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (last.expect("at least one run"), best)
}

/// The run's pooled `makespan_morsels / morsels` over all sites, `1.0`
/// when nothing was dispatched (one worker, or no kernels split).
fn makespan_fraction(result: &ParallelResult) -> f64 {
    let morsels: u64 = result.metrics.sites.values().map(|m| m.pool.morsels).sum();
    let makespan: u64 = result
        .metrics
        .sites
        .values()
        .map(|m| m.pool.makespan_morsels)
        .sum();
    if morsels > 0 {
        makespan as f64 / morsels as f64
    } else {
        1.0
    }
}

fn bench_kernel(
    engine: &Engine,
    kernel: &'static str,
    plan: &Arc<PhysicalPlan>,
    input_rows: usize,
    runs: usize,
) -> KernelBench {
    let (row, row_ms) = best_of(runs, || engine.execute(plan).expect("row execute"));
    let (col, columnar_ms) = best_of(runs, || {
        engine.execute_columnar(plan).expect("columnar execute")
    });
    let rows_match =
        row.rows == col.rows && row.transfers.total_bytes() == col.transfers.total_bytes();

    // Morsel sweep: same plan through the parallel runtime at 1/2/4/8
    // workers per site. Rows and bytes must be identical at every
    // point; the modeled time applies the deterministic makespan
    // fraction to the measured serial columnar CPU.
    let mut morsel = Vec::new();
    let mut baseline: Option<ParallelResult> = None;
    for workers in MORSEL_WORKER_SWEEP {
        let (run, wall_ms) = best_of_parallel(engine, plan, workers, runs);
        let fraction = makespan_fraction(&run);
        // The one-worker run anchors the sweep: later worker counts
        // must reproduce its rows and transfer log bit-for-bit. Against
        // the row engine only cardinality and bytes are compared (the
        // runtimes may interleave exchange streams differently).
        let rows_match = match &baseline {
            None => {
                let identical = run.rows.len() == row.rows.len()
                    && run.transfers.total_bytes() == row.transfers.total_bytes();
                baseline = Some(run);
                identical
            }
            Some(base) => run.rows == base.rows && run.transfers == base.transfers,
        };
        morsel.push(MorselPoint {
            workers,
            wall_ms,
            makespan_fraction: fraction,
            modeled_ms: columnar_ms * fraction,
            rows_match,
        });
    }

    KernelBench {
        kernel,
        input_rows,
        output_rows: row.rows.len(),
        row_ms,
        columnar_ms,
        rows_match,
        morsel,
    }
}

/// Run the three kernel microbenchmarks over a populated Table 2
/// deployment. The kernels measure execution, not optimization, so the
/// only policy registered is the one grant the hand-built join plan
/// needs: the parallel runtime's per-batch Definition-1 audit must see
/// the `orders` SHIP into L4 as legal, or the sweep would be rejected
/// before it runs a single morsel.
pub fn measure(seed: u64, runs: usize) -> Vec<KernelBench> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(EXEC_SF));
    geoqp_tpch::populate(&catalog, EXEC_SF, seed).expect("populate");
    let mut policies = PolicyCatalog::new();
    let orders_schema = catalog
        .resolve_one(&TableRef::bare("orders"))
        .expect("orders")
        .schema
        .clone();
    policies
        .register(
            geoqp_parser::parse_policy("ship * from orders to L4").expect("grant"),
            &orders_schema,
        )
        .expect("register grant");
    let engine = engine_with_policies(Arc::clone(&catalog), policies);

    let rows_of = |t: &str| -> usize {
        catalog
            .resolve_one(&TableRef::bare(t))
            .expect("table")
            .data()
            .expect("populated")
            .row_count()
    };
    let lineitem = rows_of("lineitem");
    let orders = rows_of("orders");

    vec![
        bench_kernel(&engine, "filter", &filter_plan(), lineitem, runs),
        bench_kernel(&engine, "hash_join", &join_plan(), lineitem + orders, runs),
        bench_kernel(&engine, "hash_aggregate", &aggregate_plan(), lineitem, runs),
    ]
}

/// Hand-rolled JSON for `BENCH_kernels.json` (the workspace has no
/// serde; the schema is flat enough that formatting by hand is safer
/// than adding a dependency).
pub fn to_json(rows: &[KernelBench], seed: u64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"scale_factor\": {EXEC_SF},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"kernel\": \"{}\", ", r.kernel));
        s.push_str(&format!("\"input_rows\": {}, ", r.input_rows));
        s.push_str(&format!("\"output_rows\": {}, ", r.output_rows));
        s.push_str(&format!("\"row_ms\": {:.3}, ", r.row_ms));
        s.push_str(&format!("\"columnar_ms\": {:.3}, ", r.columnar_ms));
        s.push_str(&format!(
            "\"row_rows_per_sec\": {:.0}, ",
            r.row_rows_per_sec()
        ));
        s.push_str(&format!(
            "\"columnar_rows_per_sec\": {:.0}, ",
            r.columnar_rows_per_sec()
        ));
        s.push_str(&format!("\"speedup\": {:.2}, ", r.speedup()));
        s.push_str(&format!("\"rows_match\": {}, ", r.rows_match));
        s.push_str("\"morsel\": [");
        for (j, m) in r.morsel.iter().enumerate() {
            s.push_str(&format!(
                "{{\"workers\": {}, \"wall_ms\": {:.3}, \
                 \"makespan_fraction\": {:.4}, \"modeled_ms\": {:.3}, \
                 \"rows_match\": {}}}",
                m.workers, m.wall_ms, m.makespan_fraction, m.modeled_ms, m.rows_match
            ));
            if j + 1 < r.morsel.len() {
                s.push_str(", ");
            }
        }
        s.push(']');
        s.push('}');
        if i + 1 < rows.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_across_engines() {
        let rows = measure(2021, 1);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.rows_match, "{}: engines diverged", r.kernel);
            assert!(r.output_rows > 0, "{}: produced no rows", r.kernel);
            assert!(r.row_ms.is_finite() && r.columnar_ms.is_finite());
            assert_eq!(r.morsel.len(), MORSEL_WORKER_SWEEP.len());
            for m in &r.morsel {
                assert!(
                    m.rows_match,
                    "{} at {} workers diverged from one worker",
                    r.kernel, m.workers
                );
                assert!(m.makespan_fraction > 0.0 && m.makespan_fraction <= 1.0);
            }
            // More workers never increase the modeled makespan, and the
            // 60k-row kernels genuinely split (fraction < 1 beyond one
            // worker).
            for pair in r.morsel.windows(2) {
                assert!(
                    pair[1].makespan_fraction <= pair[0].makespan_fraction + 1e-12,
                    "{}: fraction not monotone over workers",
                    r.kernel
                );
            }
            assert!(
                r.morsel.last().unwrap().makespan_fraction < 1.0,
                "{}: no intra-fragment parallelism surfaced",
                r.kernel
            );
        }
        let json = to_json(&rows, 2021);
        assert!(json.contains("\"kernel\": \"hash_join\""));
        assert!(json.contains("\"rows_match\": true"));
        assert!(json.contains("\"makespan_fraction\""));
    }
}
