//! Extension E11: the closed-loop multi-tenant service benchmark.
//!
//! Thousands of concurrent sessions, split across four tenants with
//! disjoint template policy sets (T / C / CR / CR+A, each generated from
//! a different seed), drive seeded ad-hoc queries through the
//! [`QueryService`]: every session submits a query, waits for the rows,
//! and submits the next — a classic closed loop, so measured latency is
//! end-to-end (admission queue + planning-or-cache + distributed
//! execution). Reported: queries/sec, fresh plans/sec (plan-cache
//! misses over the wall clock), the global plan-cache hit rate, and
//! per-tenant p50/p99 latency — written as `BENCH_service.json`.

use geoqp_net::NetworkTopology;
use geoqp_server::{
    CacheStats, QueryRequest, QueryService, ServiceConfig, TenantConfig, TenantStats,
};
use geoqp_tpch::adhoc::{generate_adhoc, AdhocQuery};
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use std::sync::Arc;
use std::time::Instant;

/// Worker threads for the service pool (the session count is independent:
/// sessions block on their tickets, workers execute). Floored at 4 so the
/// benchmark exercises a shared pool even on single-core containers.
fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().clamp(4, 8))
        .unwrap_or(4)
}

/// Distinct ad-hoc queries in each tenant's working set. Sessions draw
/// from this pool, so steady-state cache hit rate ≈ 1 − pool/queries.
const POOL_PER_TENANT: usize = 150;

/// Queries each session runs back-to-back.
pub const PER_SESSION: usize = 3;

/// splitmix64 — the workspace's standard cheap deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One tenant's slice of the run.
#[derive(Debug)]
pub struct TenantRow {
    /// Template set the tenant's policies were generated from.
    pub template: PolicyTemplate,
    /// Policy expressions in the tenant's catalog.
    pub expressions: usize,
    /// Sessions bound to this tenant.
    pub sessions: usize,
    /// Service-side counters (admitted/rejected/completed, p50/p99, …).
    pub stats: TenantStats,
}

/// The whole closed-loop measurement.
#[derive(Debug)]
pub struct ServiceBench {
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Queries per session.
    pub per_session: usize,
    /// Service worker threads.
    pub workers: usize,
    /// TPC-H scale factor the catalog was populated at.
    pub scale_factor: f64,
    /// Wall-clock time for the whole run, ms.
    pub wall_ms: f64,
    /// Completed queries across all tenants.
    pub completed: u64,
    /// Failed queries (the compliant optimizer plans every generated
    /// query under every template, so this should stay 0).
    pub failed: u64,
    /// Admission rejections (0 in the closed loop: a session never has
    /// more than one query outstanding).
    pub rejected: u64,
    /// Completed queries per second of wall-clock time.
    pub queries_per_sec: f64,
    /// Fresh optimizations (plan-cache misses) per second.
    pub fresh_plans_per_sec: f64,
    /// Global plan-cache counters.
    pub cache: CacheStats,
    /// Per-tenant breakdown, in tenant order.
    pub tenants: Vec<TenantRow>,
}

/// Drive `sessions` concurrent closed-loop sessions (each running
/// [`PER_SESSION`] queries) across four template tenants over the
/// populated paper catalog at `sf`, and collect service-side metrics.
pub fn closed_loop(sessions: usize, sf: f64, seed: u64) -> ServiceBench {
    let templates = [
        PolicyTemplate::T,
        PolicyTemplate::C,
        PolicyTemplate::CR,
        PolicyTemplate::CRA,
    ];
    let catalog = Arc::new(geoqp_tpch::paper_catalog(sf));
    geoqp_tpch::populate(&catalog, sf, seed).expect("populate");

    let workers = worker_count();
    let svc = QueryService::new(ServiceConfig {
        workers,
        cache_capacity: 1024,
        columnar: true,
        max_replans: 4,
    });

    // Four tenants with disjoint policy sets: different templates AND
    // different generation seeds.
    let mut tenant_ids = Vec::new();
    let mut pools: Vec<Vec<AdhocQuery>> = Vec::new();
    let mut expressions = Vec::new();
    for (i, template) in templates.iter().enumerate() {
        let policies =
            generate_policies(&catalog, *template, 10, seed ^ (i as u64 + 1)).expect("policies");
        expressions.push(policies.len());
        let id = svc.add_tenant(
            template.name(),
            catalog.clone(),
            Arc::new(policies),
            NetworkTopology::paper_wan(),
            TenantConfig {
                max_inflight: 8,
                max_queue: sessions.max(16),
                quantum: 1,
            },
        );
        tenant_ids.push(id);
        pools.push(
            generate_adhoc(&catalog, POOL_PER_TENANT, seed ^ ((i as u64 + 1) << 8))
                .expect("adhoc pool"),
        );
    }

    let started = Instant::now();
    std::thread::scope(|scope| {
        for s in 0..sessions {
            let svc = &svc;
            let pools = &pools;
            let tenant_ids = &tenant_ids;
            scope.spawn(move || {
                let tenant = s % tenant_ids.len();
                let pool = &pools[tenant];
                let mut rng = seed ^ (s as u64).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..PER_SESSION {
                    let q = &pool[(splitmix64(&mut rng) as usize) % pool.len()];
                    let ticket = svc
                        .submit(tenant_ids[tenant], QueryRequest::new(&q.sql))
                        .expect("closed-loop sessions never overflow admission");
                    ticket.wait().expect("generated queries plan and execute");
                }
            });
        }
    });
    svc.wait_idle();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut tenants = Vec::new();
    let (mut completed, mut failed, mut rejected) = (0, 0, 0);
    for (i, (id, template)) in tenant_ids.iter().zip(&templates).enumerate() {
        let stats = svc.tenant_stats(*id).expect("tenant registered");
        completed += stats.completed;
        failed += stats.failed;
        rejected += stats.rejected;
        tenants.push(TenantRow {
            template: *template,
            expressions: expressions[i],
            sessions: sessions / templates.len() + usize::from(i < sessions % templates.len()),
            stats,
        });
    }
    let cache = svc.cache_stats();
    ServiceBench {
        sessions,
        per_session: PER_SESSION,
        workers,
        scale_factor: sf,
        wall_ms,
        completed,
        failed,
        rejected,
        queries_per_sec: completed as f64 / (wall_ms / 1e3).max(1e-9),
        fresh_plans_per_sec: cache.misses as f64 / (wall_ms / 1e3).max(1e-9),
        cache,
        tenants,
    }
}

/// Render the measurement as the `BENCH_service.json` document.
pub fn to_json(b: &ServiceBench, seed: u64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"scale_factor\": {},\n", b.scale_factor));
    s.push_str(&format!("  \"sessions\": {},\n", b.sessions));
    s.push_str(&format!("  \"per_session\": {},\n", b.per_session));
    s.push_str(&format!("  \"workers\": {},\n", b.workers));
    s.push_str(&format!("  \"wall_ms\": {:.1},\n", b.wall_ms));
    s.push_str(&format!("  \"completed\": {},\n", b.completed));
    s.push_str(&format!("  \"failed\": {},\n", b.failed));
    s.push_str(&format!("  \"rejected\": {},\n", b.rejected));
    s.push_str(&format!(
        "  \"queries_per_sec\": {:.1},\n",
        b.queries_per_sec
    ));
    s.push_str(&format!(
        "  \"fresh_plans_per_sec\": {:.1},\n",
        b.fresh_plans_per_sec
    ));
    s.push_str(&format!(
        "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
         \"evictions\": {}, \"len\": {}, \"capacity\": {}}},\n",
        b.cache.hits,
        b.cache.misses,
        b.cache.hit_rate(),
        b.cache.evictions,
        b.cache.len,
        b.cache.capacity
    ));
    s.push_str("  \"tenants\": [\n");
    for (i, t) in b.tenants.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"name\": \"{}\", ", t.stats.name));
        s.push_str(&format!("\"template\": \"{}\", ", t.template.name()));
        s.push_str(&format!("\"expressions\": {}, ", t.expressions));
        s.push_str(&format!("\"sessions\": {}, ", t.sessions));
        s.push_str(&format!("\"admitted\": {}, ", t.stats.admitted));
        s.push_str(&format!("\"rejected\": {}, ", t.stats.rejected));
        s.push_str(&format!("\"completed\": {}, ", t.stats.completed));
        s.push_str(&format!("\"failed\": {}, ", t.stats.failed));
        s.push_str(&format!("\"cache_hits\": {}, ", t.stats.cache_hits));
        s.push_str(&format!("\"cache_misses\": {}, ", t.stats.cache_misses));
        s.push_str(&format!(
            "\"cache_hit_rate\": {:.4}, ",
            t.stats.cache_hit_rate()
        ));
        s.push_str(&format!("\"replans\": {}, ", t.stats.replans));
        s.push_str(&format!("\"p50_ms\": {:.2}, ", t.stats.p50_ms));
        s.push_str(&format!("\"p99_ms\": {:.2}, ", t.stats.p99_ms));
        s.push_str(&format!("\"mean_ms\": {:.2}", t.stats.mean_ms));
        s.push('}');
        if i + 1 < b.tenants.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature closed loop: every query completes, no admission
    /// rejections, all four tenants served, and the cache sees reuse.
    #[test]
    fn small_closed_loop_completes_everything() {
        let b = closed_loop(12, 0.001, 5);
        assert_eq!(b.tenants.len(), 4);
        assert_eq!(b.completed, 12 * PER_SESSION as u64);
        assert_eq!(b.failed, 0);
        assert_eq!(b.rejected, 0);
        assert!(b.queries_per_sec > 0.0);
        for t in &b.tenants {
            assert_eq!(t.stats.completed, t.stats.admitted);
            assert_eq!(t.stats.inflight, 0);
            assert_eq!(t.stats.queued, 0);
            assert!(t.stats.p99_ms >= t.stats.p50_ms);
        }
        let json = to_json(&b, 5);
        assert!(json.contains("\"tenants\""));
        assert!(json.contains("\"queries_per_sec\""));
    }
}
