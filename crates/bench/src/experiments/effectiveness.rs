//! Effectiveness experiments: Figure 5(a) (TPC-H queries × template sets),
//! Figure 6(a) (400 ad-hoc queries), and the Figure 5(b–e) plan excerpts.

use crate::experiments::setup::{engine_with_policies, OPT_SF};
use geoqp_core::{Engine, OptimizerMode};
use geoqp_tpch::adhoc::generate_adhoc;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

/// Compliance verdict for one optimized plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Plan found and it passes the Definition-1 audit.
    Compliant,
    /// Plan found but it violates a policy.
    NonCompliant,
    /// The optimizer rejected the query (compliant mode only).
    Rejected,
}

impl Verdict {
    /// The paper's C / NC labels.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Compliant => "C",
            Verdict::NonCompliant => "NC",
            Verdict::Rejected => "rej",
        }
    }
}

/// One cell of the Figure 5(a) matrix.
#[derive(Debug)]
pub struct MatrixCell {
    /// Query name.
    pub query: &'static str,
    /// Template set.
    pub template: PolicyTemplate,
    /// Verdict of the traditional optimizer's plan.
    pub traditional: Verdict,
    /// Verdict of the compliant optimizer's plan.
    pub compliant: Verdict,
}

/// Optimize a plan in a mode and audit it.
pub fn verdict_for(
    engine: &Engine,
    plan: &Arc<geoqp_plan::LogicalPlan>,
    mode: OptimizerMode,
) -> Verdict {
    match engine.optimize(plan, mode, None) {
        Err(_) => Verdict::Rejected,
        Ok(opt) => {
            if engine.audit(&opt.physical).is_ok() {
                Verdict::Compliant
            } else {
                Verdict::NonCompliant
            }
        }
    }
}

/// Figure 5(a): both optimizers on the six TPC-H queries under each
/// template set.
pub fn tpch_matrix(seed: u64) -> Vec<MatrixCell> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let mut out = Vec::new();
    for template in [
        PolicyTemplate::T,
        PolicyTemplate::C,
        PolicyTemplate::CR,
        PolicyTemplate::CRA,
    ] {
        let policies = generate_policies(&catalog, template, template.base_count(), seed).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        for (query, plan) in all_queries(&catalog).unwrap() {
            out.push(MatrixCell {
                query,
                template,
                traditional: verdict_for(&engine, &plan, OptimizerMode::Traditional),
                compliant: verdict_for(&engine, &plan, OptimizerMode::Compliant),
            });
        }
    }
    out
}

/// One template's ad-hoc effectiveness numbers (Figure 6(a)).
#[derive(Debug)]
pub struct AdhocResult {
    /// Template set.
    pub template: PolicyTemplate,
    /// Expression count used.
    pub expressions: usize,
    /// Queries evaluated.
    pub queries: usize,
    /// Fraction of queries for which the *traditional* plan was compliant.
    pub traditional_fraction: f64,
    /// Fraction for the compliant optimizer (the paper finds 1.0).
    pub compliant_fraction: f64,
}

/// Figure 6(a): ad-hoc queries split evenly across the four template
/// sets — T with its 8 base expressions, the others with 50 expressions,
/// matching the paper's setup (the paper uses 400 queries in total).
pub fn adhoc_effectiveness(total_queries: usize, seed: u64) -> Vec<AdhocResult> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let per_group = total_queries / 4;
    let mut out = Vec::new();
    for (i, template) in [
        PolicyTemplate::T,
        PolicyTemplate::C,
        PolicyTemplate::CR,
        PolicyTemplate::CRA,
    ]
    .into_iter()
    .enumerate()
    {
        let n_expr = match template {
            PolicyTemplate::T => 8,
            _ => 50,
        };
        let policies = generate_policies(&catalog, template, n_expr, seed).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        let queries = generate_adhoc(&catalog, per_group, seed.wrapping_add(i as u64)).unwrap();
        // The engine is shareable (immutable catalogs, atomic counters);
        // fan the per-query optimizations out over worker threads.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4);
        let chunk = queries.len().div_ceil(workers);
        let (trad_ok, comp_ok) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in queries.chunks(chunk.max(1)) {
                let engine = &engine;
                handles.push(scope.spawn(move || {
                    let mut t = 0usize;
                    let mut c = 0usize;
                    for q in part {
                        if verdict_for(engine, &q.plan, OptimizerMode::Traditional)
                            == Verdict::Compliant
                        {
                            t += 1;
                        }
                        if verdict_for(engine, &q.plan, OptimizerMode::Compliant)
                            == Verdict::Compliant
                        {
                            c += 1;
                        }
                    }
                    (t, c)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .fold((0, 0), |(a, b), (t, c)| (a + t, b + c))
        });
        out.push(AdhocResult {
            template,
            expressions: n_expr,
            queries: per_group,
            traditional_fraction: trad_ok as f64 / per_group as f64,
            compliant_fraction: comp_ok as f64 / per_group as f64,
        });
    }
    out
}

/// Figure 5(b–e): the Q2 (under CR) and Q3 (under CR+A) plan excerpts for
/// both optimizers, rendered as located physical plans.
pub fn plan_excerpts(seed: u64) -> Vec<(String, String)> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let mut out = Vec::new();
    let cases = [("Q2", PolicyTemplate::CR), ("Q3", PolicyTemplate::CRA)];
    for (query, template) in cases {
        let policies = generate_policies(&catalog, template, template.base_count(), seed).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        let plan = geoqp_tpch::query_by_name(&catalog, query).unwrap();
        for mode in [OptimizerMode::Traditional, OptimizerMode::Compliant] {
            let title = format!(
                "{query} under {} — {} optimizer",
                template.name(),
                match mode {
                    OptimizerMode::Traditional => "traditional",
                    OptimizerMode::Compliant => "compliant",
                }
            );
            let body = match engine.optimize(&plan, mode, None) {
                Err(e) => format!("<{e}>"),
                Ok(opt) => {
                    let audit = match engine.audit(&opt.physical) {
                        Ok(()) => "COMPLIANT".to_string(),
                        Err(e) => format!("NON-COMPLIANT: {e}"),
                    };
                    format!(
                        "{}[audit: {audit}]",
                        geoqp_plan::display::display_physical(&opt.physical)
                    )
                }
            };
            out.push((title, body));
        }
    }
    out
}
