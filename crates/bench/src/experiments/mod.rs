//! Experiment implementations, one module per paper artifact family.

pub mod ablation;
pub mod churn;
pub mod effectiveness;
pub mod failover;
pub mod grayfail;
pub mod kernels;
pub mod optimizer;
pub mod overhead;
pub mod quality;
pub mod scalability;
pub mod scaleup;
pub mod service;
pub mod setup;

pub use setup::engine_with_policies;
