//! Pipelined scale-up experiment: sequential vs concurrent runtime.
//!
//! Every TPC-H query is optimized once (compliant mode) and executed
//! twice over the Table 2 deployment — on the sequential engine and on
//! the concurrent pipelined runtime (`geoqp-runtime`). The two runtimes
//! ship exactly the same bytes over exactly the same SHIP edges and
//! return the same row multiset; what changes is the simulated wall
//! clock. The sequential engine pays the *sum* of all transfer costs,
//! while the pipelined runtime pays the *critical path*: fragments on
//! different sites stream batches concurrently, so independent SHIP
//! edges overlap.

use crate::experiments::setup::{engine_with_policies, EXEC_SF};
use geoqp_common::Rows;
use geoqp_core::{OptimizerMode, RuntimeConfig};
use geoqp_exec::RetryPolicy;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

/// Workers per site for the intra-fragment (morsel) column.
pub const SCALEUP_WORKERS: usize = 4;

/// Rows per morsel for the scale-up runs: small enough that the
/// SF 0.01 fragments split into many morsels.
pub const SCALEUP_MORSEL_ROWS: usize = 256;

/// One query's sequential-vs-pipelined comparison.
#[derive(Debug)]
pub struct ScaleupRow {
    /// Query name.
    pub query: &'static str,
    /// Number of SHIP edges (= exchange edges = extra worker threads).
    pub ship_edges: usize,
    /// Result cardinality (identical across runtimes by construction;
    /// asserted via `rows_match`).
    pub rows: usize,
    /// Total bytes shipped by the sequential engine.
    pub bytes_sequential: u64,
    /// Total bytes shipped by the pipelined runtime.
    pub bytes_parallel: u64,
    /// Sequential completion: the sum of every transfer's simulated cost.
    pub sequential_ms: f64,
    /// Pipelined completion: the critical path through the fragment DAG.
    pub parallel_ms: f64,
    /// `sequential_ms / parallel_ms` (1.0 = no overlap to exploit).
    pub speedup: f64,
    /// Whether the two runtimes returned identical row multisets.
    pub rows_match: bool,
    /// Best-of-N CPU wall clock for the row-at-a-time engine, ms.
    pub row_cpu_ms: f64,
    /// Best-of-N CPU wall clock for the vectorized columnar engine, ms.
    pub columnar_cpu_ms: f64,
    /// Whether the columnar engine returned exactly the sequential
    /// engine's rows and shipped exactly its bytes.
    pub columnar_identical: bool,
    /// Deterministic makespan fraction at [`SCALEUP_WORKERS`] morsel
    /// workers per site: `Σ makespan_morsels / Σ morsels` over the
    /// run's site pools (`1.0` when no kernel split).
    pub makespan_fraction_w: f64,
    /// Whether the [`SCALEUP_WORKERS`]-worker run reproduced the
    /// one-worker run's rows and transfer log bit-for-bit.
    pub workers_identical: bool,
}

impl ScaleupRow {
    /// `row_cpu_ms / columnar_cpu_ms` (>1 = vectorization wins).
    pub fn cpu_speedup(&self) -> f64 {
        if self.columnar_cpu_ms > 0.0 {
            self.row_cpu_ms / self.columnar_cpu_ms
        } else {
            1.0
        }
    }

    /// Modeled end-to-end completion at one morsel worker: pipelined
    /// network critical path plus serial columnar kernel CPU.
    pub fn endtoend_w1_ms(&self) -> f64 {
        self.parallel_ms + self.columnar_cpu_ms
    }

    /// Modeled end-to-end completion at [`SCALEUP_WORKERS`] workers:
    /// the kernel CPU term shrinks by the deterministic makespan
    /// fraction; the network critical path is worker-invariant.
    pub fn endtoend_w_ms(&self) -> f64 {
        self.parallel_ms + self.columnar_cpu_ms * self.makespan_fraction_w
    }

    /// `endtoend_w1_ms / endtoend_w_ms` (>1 = intra-fragment
    /// parallelism shortens the modeled completion).
    pub fn intra_speedup(&self) -> f64 {
        let w = self.endtoend_w_ms();
        if w > 0.0 {
            self.endtoend_w1_ms() / w
        } else {
            1.0
        }
    }
}

/// Order-insensitive row-multiset equality.
fn same_multiset(a: &Rows, b: &Rows) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let key = |rows: &Rows| {
        let mut k: Vec<String> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1f}")
            })
            .collect();
        k.sort_unstable();
        k
    };
    key(a) == key(b)
}

/// Run every TPC-H query on both runtimes and compare.
pub fn measure(seed: u64) -> Vec<ScaleupRow> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(EXEC_SF));
    geoqp_tpch::populate(&catalog, EXEC_SF, seed).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::CRA, 10, seed).expect("policy generation");
    let engine = engine_with_policies(Arc::clone(&catalog), policies);

    let mut out = Vec::new();
    for (query, plan) in all_queries(&catalog).expect("queries") {
        let Ok(optimized) = engine.optimize(&plan, OptimizerMode::Compliant, None) else {
            continue; // rejected under this policy set; nothing to execute
        };
        let sequential = engine.execute(&optimized.physical).expect("sequential");
        let parallel = engine
            .execute_parallel(&optimized.physical)
            .expect("parallel");
        let sequential_ms = sequential.transfers.total_cost_ms();
        let parallel_ms = parallel.metrics.completion_ms;

        // Row vs columnar CPU: best-of-3 real wall clock for the same
        // plan through each engine, with an exact identity check (rows
        // in order, shipped bytes) rather than a multiset comparison.
        let best_of = |f: &dyn Fn() -> geoqp_core::ExecutionResult| {
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..3 {
                let t = std::time::Instant::now();
                let r = f();
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
                last = Some(r);
            }
            (last.expect("three runs"), best)
        };
        let (row_run, row_cpu_ms) = best_of(&|| engine.execute(&optimized.physical).expect("row"));
        let (col_run, columnar_cpu_ms) = best_of(&|| {
            engine
                .execute_columnar(&optimized.physical)
                .expect("columnar")
        });
        let columnar_identical = row_run.rows == col_run.rows
            && row_run.transfers.total_bytes() == col_run.transfers.total_bytes();

        // Intra-fragment morsel parallelism: the same plan through the
        // columnar parallel runtime at 1 and SCALEUP_WORKERS workers
        // per site. Results and transfer logs must be bit-identical;
        // what changes is the deterministic makespan fraction the
        // worker pools report.
        let run_workers = |workers: usize| {
            let config = RuntimeConfig {
                columnar: true,
                workers_per_site: workers,
                morsel_rows: SCALEUP_MORSEL_ROWS,
                ..RuntimeConfig::default()
            };
            engine
                .execute_parallel_opts(&optimized.physical, None, &RetryPolicy::none(), &config)
                .expect("parallel columnar")
        };
        let one = run_workers(1);
        let many = run_workers(SCALEUP_WORKERS);
        let workers_identical = one.rows == many.rows && one.transfers == many.transfers;
        let pool_morsels: u64 = many.metrics.sites.values().map(|m| m.pool.morsels).sum();
        let pool_makespan: u64 = many
            .metrics
            .sites
            .values()
            .map(|m| m.pool.makespan_morsels)
            .sum();
        let makespan_fraction_w = if pool_morsels > 0 {
            pool_makespan as f64 / pool_morsels as f64
        } else {
            1.0
        };

        out.push(ScaleupRow {
            query,
            ship_edges: optimized.physical.ship_count(),
            rows: sequential.rows.len(),
            bytes_sequential: sequential.transfers.total_bytes(),
            bytes_parallel: parallel.transfers.total_bytes(),
            sequential_ms,
            parallel_ms,
            speedup: if parallel_ms > 0.0 {
                sequential_ms / parallel_ms
            } else {
                1.0
            },
            rows_match: same_multiset(&sequential.rows, &parallel.rows),
            row_cpu_ms,
            columnar_cpu_ms,
            columnar_identical,
            makespan_fraction_w,
            workers_identical,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_overlaps_without_changing_results() {
        let rows = measure(2021);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.rows_match, "{}: row multisets diverged", r.query);
            assert!(
                r.columnar_identical,
                "{}: columnar engine diverged from the row engine",
                r.query
            );
            assert_eq!(
                r.bytes_sequential, r.bytes_parallel,
                "{}: shipped bytes diverged",
                r.query
            );
            assert!(
                r.parallel_ms <= r.sequential_ms + 1e-6,
                "{}: pipelined completion {} exceeds sequential {}",
                r.query,
                r.parallel_ms,
                r.sequential_ms
            );
        }
        // The acceptance bar: at least one multi-site query genuinely
        // overlaps its transfers.
        assert!(
            rows.iter()
                .any(|r| r.ship_edges >= 2 && r.speedup > 1.0 + 1e-9),
            "no multi-site query beat the sequential runtime: {rows:?}"
        );
        // Morsel workers never perturb results, and at least one query's
        // kernels genuinely split (modeled end-to-end improves at
        // SCALEUP_WORKERS workers).
        for r in &rows {
            assert!(
                r.workers_identical,
                "{}: {SCALEUP_WORKERS}-worker run diverged from one worker",
                r.query
            );
            assert!(r.makespan_fraction_w > 0.0 && r.makespan_fraction_w <= 1.0);
            assert!(r.endtoend_w_ms() <= r.endtoend_w1_ms() + 1e-9);
        }
        assert!(
            rows.iter().any(|r| r.intra_speedup() > 1.0 + 1e-9),
            "no query's modeled completion improved with morsel workers: {rows:?}"
        );
    }
}
