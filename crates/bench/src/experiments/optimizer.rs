//! Optimizer-throughput benchmarking over the scaled-out ad-hoc
//! workload (`repro --figure adhoc`).
//!
//! Two measurements share one generator. [`adhoc_curves`] reproduces the
//! paper's 400-query Section 7 evaluation per template set — compliance
//! effectiveness of both optimizers *and* their planning overhead — in a
//! single pass. [`adhoc_throughput`] then scales the same workload to
//! ~100k queries (sized via `GEOQP_ADHOC_N`) and measures the optimizer
//! as a system: plans per second across a worker pool, implication-memo
//! hit rates, Algorithm 2 DP states explored, and the fraction of
//! queries for which a compliant plan exists. Results feed
//! `BENCH_optimizer.json`.

use crate::experiments::setup::{engine_with_policies, OPT_SF};
use geoqp_core::OptimizerMode;
use geoqp_tpch::adhoc::generate_adhoc;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use std::sync::Arc;
use std::time::Instant;

/// The four template sets, in the paper's order.
pub const TEMPLATES: [PolicyTemplate; 4] = [
    PolicyTemplate::T,
    PolicyTemplate::C,
    PolicyTemplate::CR,
    PolicyTemplate::CRA,
];

/// Expressions per template set in the paper's ad-hoc experiments: T has
/// only its 8 base expressions, the rest use 50.
pub fn expressions_for(template: PolicyTemplate) -> usize {
    match template {
        PolicyTemplate::T => 8,
        _ => 50,
    }
}

/// Worker threads used for the fan-out (the engine is shareable).
fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
}

/// One template's effectiveness/overhead curve point (the 400-query run).
#[derive(Debug)]
pub struct AdhocCurve {
    /// Template set.
    pub template: PolicyTemplate,
    /// Expression count used.
    pub expressions: usize,
    /// Queries evaluated.
    pub queries: usize,
    /// Fraction of queries whose *traditional* plan audits compliant.
    pub traditional_fraction: f64,
    /// Fraction for the compliant optimizer (the paper finds 1.0).
    pub compliant_fraction: f64,
    /// Mean traditional optimization time, ms.
    pub traditional_mean_ms: f64,
    /// Mean compliant optimization time, ms.
    pub compliant_mean_ms: f64,
}

impl AdhocCurve {
    /// Compliant-over-traditional planning-time overhead factor.
    pub fn overhead_factor(&self) -> f64 {
        if self.traditional_mean_ms > 0.0 {
            self.compliant_mean_ms / self.traditional_mean_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The paper's 400-query curves: queries split evenly across the four
/// template sets, both optimizers run on every query, effectiveness
/// audited per Definition 1 and planning time taken from
/// [`geoqp_core::OptimizeStats`].
pub fn adhoc_curves(total_queries: usize, seed: u64) -> Vec<AdhocCurve> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let per_group = total_queries / 4;
    let mut out = Vec::new();
    for (i, template) in TEMPLATES.into_iter().enumerate() {
        let n_expr = expressions_for(template);
        let policies = generate_policies(&catalog, template, n_expr, seed).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        let queries = generate_adhoc(&catalog, per_group, seed.wrapping_add(i as u64)).unwrap();
        let chunk = queries.len().div_ceil(worker_count()).max(1);
        let (t_ok, c_ok, t_ms, c_ms) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in queries.chunks(chunk) {
                let engine = &engine;
                handles.push(scope.spawn(move || {
                    let (mut t_ok, mut c_ok) = (0usize, 0usize);
                    let (mut t_ms, mut c_ms) = (0f64, 0f64);
                    for q in part {
                        if let Ok(opt) = engine.optimize(&q.plan, OptimizerMode::Traditional, None)
                        {
                            t_ms += opt.stats.total_ms;
                            if engine.audit(&opt.physical).is_ok() {
                                t_ok += 1;
                            }
                        }
                        if let Ok(opt) = engine.optimize(&q.plan, OptimizerMode::Compliant, None) {
                            c_ms += opt.stats.total_ms;
                            if engine.audit(&opt.physical).is_ok() {
                                c_ok += 1;
                            }
                        }
                    }
                    (t_ok, c_ok, t_ms, c_ms)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker")).fold(
                (0, 0, 0.0, 0.0),
                |acc, part| {
                    (
                        acc.0 + part.0,
                        acc.1 + part.1,
                        acc.2 + part.2,
                        acc.3 + part.3,
                    )
                },
            )
        });
        out.push(AdhocCurve {
            template,
            expressions: n_expr,
            queries: per_group,
            traditional_fraction: t_ok as f64 / per_group as f64,
            compliant_fraction: c_ok as f64 / per_group as f64,
            traditional_mean_ms: t_ms / per_group as f64,
            compliant_mean_ms: c_ms / per_group as f64,
        });
    }
    out
}

/// One template's optimizer-throughput numbers from the scale run.
#[derive(Debug)]
pub struct AdhocThroughput {
    /// Template set.
    pub template: PolicyTemplate,
    /// Expression count used.
    pub expressions: usize,
    /// Queries optimized (compliant mode).
    pub queries: usize,
    /// Worker threads in the fan-out.
    pub workers: usize,
    /// Wall-clock for the whole batch, ms.
    pub wall_ms: f64,
    /// Optimizations per second of wall clock across all workers.
    pub plans_per_sec: f64,
    /// Mean per-query optimization time, ms (sum of per-query stats).
    pub mean_opt_ms: f64,
    /// Fraction of queries for which a compliant plan was found.
    pub compliant_fraction: f64,
    /// Implication-memo hits over the batch.
    pub memo_hits: u64,
    /// Implication-memo misses (proofs actually run).
    pub memo_misses: u64,
    /// `hits / (hits + misses)` over the batch.
    pub memo_hit_rate: f64,
    /// Total Algorithm 2 DP states across all queries.
    pub dp_states_total: u64,
    /// Mean DP states per query.
    pub dp_states_mean: f64,
    /// Mean η (expressions passing overlap + implication) per query.
    pub eta_mean: f64,
}

/// The scale run: `total_queries` split evenly across the four template
/// sets, compliant-mode optimization only, measuring throughput and
/// search-volume counters. Memo counters are engine-wide, so they are
/// reset per template batch and read back as batch totals.
pub fn adhoc_throughput(total_queries: usize, seed: u64) -> Vec<AdhocThroughput> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let per_group = total_queries / 4;
    let workers = worker_count();
    let mut out = Vec::new();
    for (i, template) in TEMPLATES.into_iter().enumerate() {
        let n_expr = expressions_for(template);
        let policies = generate_policies(&catalog, template, n_expr, seed).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        let queries = generate_adhoc(&catalog, per_group, seed.wrapping_add(i as u64)).unwrap();
        let chunk = queries.len().div_ceil(workers).max(1);
        engine.implication_memo().reset_counters();
        let t0 = Instant::now();
        let (found, opt_ms, dp, eta) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in queries.chunks(chunk) {
                let engine = &engine;
                handles.push(scope.spawn(move || {
                    let mut found = 0usize;
                    let mut opt_ms = 0f64;
                    let mut dp = 0u64;
                    let mut eta = 0u64;
                    for q in part {
                        if let Ok(opt) = engine.optimize(&q.plan, OptimizerMode::Compliant, None) {
                            found += 1;
                            opt_ms += opt.stats.total_ms;
                            dp += opt.stats.dp_states as u64;
                            eta += opt.stats.eta;
                        }
                    }
                    (found, opt_ms, dp, eta)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker")).fold(
                (0, 0.0, 0, 0),
                |acc, part| {
                    (
                        acc.0 + part.0,
                        acc.1 + part.1,
                        acc.2 + part.2,
                        acc.3 + part.3,
                    )
                },
            )
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let memo = engine.implication_memo();
        out.push(AdhocThroughput {
            template,
            expressions: n_expr,
            queries: per_group,
            workers,
            wall_ms,
            plans_per_sec: if wall_ms > 0.0 {
                per_group as f64 / (wall_ms / 1e3)
            } else {
                f64::INFINITY
            },
            mean_opt_ms: opt_ms / per_group.max(1) as f64,
            compliant_fraction: found as f64 / per_group.max(1) as f64,
            memo_hits: memo.hits(),
            memo_misses: memo.misses(),
            memo_hit_rate: memo.hit_rate(),
            dp_states_total: dp,
            dp_states_mean: dp as f64 / per_group.max(1) as f64,
            eta_mean: eta as f64 / per_group.max(1) as f64,
        });
    }
    out
}

/// Render both measurements as the `BENCH_optimizer.json` document.
pub fn to_json(curves: &[AdhocCurve], throughput: &[AdhocThroughput], seed: u64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"scale_factor\": {OPT_SF},\n"));
    s.push_str("  \"curves\": [\n");
    for (i, c) in curves.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"template\": \"{}\", ", c.template.name()));
        s.push_str(&format!("\"expressions\": {}, ", c.expressions));
        s.push_str(&format!("\"queries\": {}, ", c.queries));
        s.push_str(&format!(
            "\"traditional_fraction\": {:.4}, ",
            c.traditional_fraction
        ));
        s.push_str(&format!(
            "\"compliant_fraction\": {:.4}, ",
            c.compliant_fraction
        ));
        s.push_str(&format!(
            "\"traditional_mean_ms\": {:.4}, ",
            c.traditional_mean_ms
        ));
        s.push_str(&format!(
            "\"compliant_mean_ms\": {:.4}, ",
            c.compliant_mean_ms
        ));
        s.push_str(&format!("\"overhead_factor\": {:.2}", c.overhead_factor()));
        s.push('}');
        if i + 1 < curves.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str("  \"throughput\": [\n");
    for (i, t) in throughput.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"template\": \"{}\", ", t.template.name()));
        s.push_str(&format!("\"expressions\": {}, ", t.expressions));
        s.push_str(&format!("\"queries\": {}, ", t.queries));
        s.push_str(&format!("\"workers\": {}, ", t.workers));
        s.push_str(&format!("\"wall_ms\": {:.1}, ", t.wall_ms));
        s.push_str(&format!("\"plans_per_sec\": {:.0}, ", t.plans_per_sec));
        s.push_str(&format!("\"mean_opt_ms\": {:.4}, ", t.mean_opt_ms));
        s.push_str(&format!(
            "\"compliant_fraction\": {:.4}, ",
            t.compliant_fraction
        ));
        s.push_str(&format!("\"memo_hits\": {}, ", t.memo_hits));
        s.push_str(&format!("\"memo_misses\": {}, ", t.memo_misses));
        s.push_str(&format!("\"memo_hit_rate\": {:.4}, ", t.memo_hit_rate));
        s.push_str(&format!("\"dp_states_total\": {}, ", t.dp_states_total));
        s.push_str(&format!("\"dp_states_mean\": {:.2}, ", t.dp_states_mean));
        s.push_str(&format!("\"eta_mean\": {:.2}", t.eta_mean));
        s.push('}');
        if i + 1 < throughput.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_cover_all_templates_and_find_compliant_plans() {
        let curves = adhoc_curves(16, 7);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            assert_eq!(c.queries, 4);
            assert!(
                (c.compliant_fraction - 1.0).abs() < f64::EPSILON,
                "{}: compliant optimizer must always find a plan (got {})",
                c.template.name(),
                c.compliant_fraction
            );
            assert!((0.0..=1.0).contains(&c.traditional_fraction));
            assert!(c.compliant_mean_ms >= 0.0 && c.traditional_mean_ms >= 0.0);
        }
    }

    #[test]
    fn throughput_counters_are_populated() {
        let rows = adhoc_throughput(16, 9);
        assert_eq!(rows.len(), 4);
        for t in &rows {
            assert_eq!(t.queries, 4);
            assert!((t.compliant_fraction - 1.0).abs() < f64::EPSILON);
            assert!(t.plans_per_sec > 0.0);
            assert!(
                t.dp_states_total > 0,
                "{}: Algorithm 2 must report DP states",
                t.template.name()
            );
            assert!(t.memo_hits + t.memo_misses > 0);
            assert!((0.0..=1.0).contains(&t.memo_hit_rate));
        }
        let json = to_json(&[], &rows, 9);
        assert!(json.contains("\"plans_per_sec\""));
        assert!(json.contains("\"dp_states_mean\""));
    }
}
