//! Shared experiment setup: catalogs, engines, policy sets.

use geoqp_core::Engine;
use geoqp_net::NetworkTopology;
use geoqp_policy::PolicyCatalog;
use geoqp_storage::Catalog;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use std::sync::Arc;

/// The evaluation's scale factor for optimization experiments (paper:
/// SF 10; scale does not influence plan choice, only byte magnitudes).
pub const OPT_SF: f64 = 10.0;

/// Scale factor for experiments that actually execute plans.
pub const EXEC_SF: f64 = 0.01;

/// Build an engine over the Table 2 catalog with a given policy catalog.
pub fn engine_with_policies(catalog: Arc<Catalog>, policies: PolicyCatalog) -> Engine {
    Engine::new(catalog, Arc::new(policies), NetworkTopology::paper_wan())
}

/// Engine over the paper catalog with a generated template set.
pub fn engine_for_template(sf: f64, template: PolicyTemplate, count: usize, seed: u64) -> Engine {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(sf));
    let policies = generate_policies(&catalog, template, count, seed).expect("policy generation");
    engine_with_policies(catalog, policies)
}
