//! Scalability experiments: Figures 7(a)–(c) (#policy expressions),
//! 7(d)–(e) (#table locations), and 8(a)–(b) (#to-locations per
//! expression).

use crate::experiments::setup::{engine_with_policies, OPT_SF};
use geoqp_common::{Location, LocationPattern, LocationSet};
use geoqp_core::OptimizerMode;
use geoqp_tpch::policy_gen::{generate_policies, star_policies_with_destinations, PolicyTemplate};
use geoqp_tpch::queries::query_by_name;
use std::sync::Arc;

/// One measurement point of a scalability sweep.
#[derive(Debug)]
pub struct SweepPoint {
    /// The x-axis value (#expressions, #locations, ...).
    pub x: usize,
    /// Mean optimization time over the runs, ms.
    pub mean_ms: f64,
    /// η — policy expressions considered (Figure 7's bar annotations).
    pub eta: u64,
    /// Phase-2 (site selection) share of the time, ms.
    pub phase2_ms: f64,
}

fn sweep_mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Figure 7(a–c): optimization time of a query under CR+A with 12, 25,
/// 50, and 100 policy expressions.
pub fn expression_sweep(query: &str, runs: usize, seed: u64) -> Vec<SweepPoint> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let plan = query_by_name(&catalog, query).unwrap();
    let mut out = Vec::new();
    for n in [12usize, 25, 50, 100] {
        let policies = generate_policies(&catalog, PolicyTemplate::CRA, n, seed).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        let mut times = Vec::new();
        let mut eta = 0;
        let mut p2 = Vec::new();
        for _ in 0..runs {
            let o = engine
                .optimize(&plan, OptimizerMode::Compliant, None)
                .expect("optimize");
            times.push(o.stats.total_ms);
            p2.push(o.stats.phase2_ms);
            eta = o.stats.eta;
        }
        out.push(SweepPoint {
            x: n,
            mean_ms: sweep_mean(&times),
            eta,
            phase2_ms: sweep_mean(&p2),
        });
    }
    out
}

/// Figure 7(d–e): optimization time of Q3/Q10 with Customer and Orders
/// partitioned over 1–5 locations (1 = the standard Table 2 layout).
pub fn location_sweep(query: &str, runs: usize, seed: u64) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for n in 1usize..=5 {
        let catalog = Arc::new(if n == 1 {
            geoqp_tpch::paper_catalog(OPT_SF)
        } else {
            geoqp_tpch::paper_catalog_partitioned(OPT_SF, n).unwrap()
        });
        let policies = generate_policies(&catalog, PolicyTemplate::CRA, 10, seed).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        let plan = query_by_name(&catalog, query).unwrap();
        let mut times = Vec::new();
        let mut eta = 0;
        let mut p2 = Vec::new();
        for _ in 0..runs {
            let o = engine
                .optimize(&plan, OptimizerMode::Compliant, None)
                .expect("optimize");
            times.push(o.stats.total_ms);
            p2.push(o.stats.phase2_ms);
            eta = o.stats.eta;
        }
        out.push(SweepPoint {
            x: n,
            mean_ms: sweep_mean(&times),
            eta,
            phase2_ms: sweep_mean(&p2),
        });
    }
    out
}

/// Figure 8(a–b): optimization time of Q2/Q3 with eight
/// `ship * from t to L1..Ln` expressions as `n` grows from 3 to 20.
/// Locations beyond L5 are registered as extra (dataless) sites.
pub fn to_location_sweep(query: &str, runs: usize) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for n in [3usize, 5, 10, 15, 20] {
        let mut catalog = geoqp_tpch::paper_catalog(OPT_SF);
        for i in 6..=n.max(5) {
            catalog.add_location(Location::new(format!("L{i}")));
        }
        let catalog = Arc::new(catalog);
        let to = LocationPattern::Set(LocationSet::from_iter((1..=n).map(|i| format!("L{i}"))));
        let policies = star_policies_with_destinations(&catalog, to).unwrap();
        let engine = engine_with_policies(Arc::clone(&catalog), policies);
        let plan = query_by_name(&catalog, query).unwrap();
        let mut times = Vec::new();
        let mut p2 = Vec::new();
        let mut eta = 0;
        for _ in 0..runs {
            let o = engine
                .optimize(&plan, OptimizerMode::Compliant, None)
                .expect("optimize");
            times.push(o.stats.total_ms);
            p2.push(o.stats.phase2_ms);
            eta = o.stats.eta;
        }
        out.push(SweepPoint {
            x: n,
            mean_ms: sweep_mean(&times),
            eta,
            phase2_ms: sweep_mean(&p2),
        });
    }
    out
}
