//! Extension E12: live policy churn — mid-flight revocations against
//! epoch-pinned queries.
//!
//! Each cell of the grid runs one TPC-H query under a scripted catalog
//! log: the query is admitted pinned to log sequence 0 (the base
//! catalog), a revocation is already appended at sequence 1, and the
//! churn signal releases it at a chosen executor step. A revocation
//! released before the query's last SHIP edge aborts the attempt and
//! re-plans under the new epoch (checkpoints migrated, compliance
//! re-verified); one released too late never bites. Cells where the
//! shrunken policy set leaves no compliant placement refuse typed.
//!
//! The stale sweep layers a catalog-plane partition on top: after the
//! churn re-plan re-pins the query to sequence 1, the partitioned
//! site's replica cannot prove it has seen the new epoch, so a re-plan
//! that ships from that site refuses typed (`catalog-stale`) instead
//! of originating a transfer it cannot re-audit.
//!
//! The grant grid exercises the quiesce-free grant retry: the
//! revocation releases at step 0, and the *same* expression is
//! re-granted at sequence 2, released at a swept grant step. A query
//! the revocation refuses outright is rescued — re-pinned forward onto
//! the grant and completed — exactly when the grant had landed by the
//! abort step; a grant releasing after the abort cannot rescue in
//! hindsight. Each grant cell also runs under a catalog-plane crash
//! with an aggressively compacted log, so the crashed replica's
//! recovery path (wipe, then snapshot bootstrap) is part of the figure.
//!
//! Everything is simulated-clock and seed-driven: identically-seeded
//! runs serialize byte-identically.

use crate::experiments::setup::EXEC_SF;
use geoqp_common::{ChurnEvent, Location, Rows, Value};
use geoqp_core::{CatalogHealth, CatalogService, Engine, FailoverOpts, OptimizerMode};
use geoqp_exec::RetryPolicy;
use geoqp_net::{FaultPlan, NetworkTopology, StepWindow};
use geoqp_policy::PolicyCatalog;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

/// Revocation-release steps of the grid: the executor's transfer clock
/// at which the revocation becomes visible to the in-flight query. The
/// last value is past any query's edge count — the control column where
/// churn never bites.
pub const REVOKE_STEPS: [u64; 5] = [0, 1, 2, 4, 1_000];

/// Grant-release steps of the grant grid: the executor step at which
/// the re-grant of the revoked expression becomes visible. The last
/// value lands after any abort, so it can never rescue — the control
/// column proving retries consult only grants the query could have
/// seen.
pub const GRANT_STEPS: [u64; 5] = [0, 1, 2, 4, 1_000];

/// What happened to one (query, revocation-step) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOutcome {
    /// The revocation landed after the query's last transfer: finished
    /// under the admission pin, untouched.
    Finished,
    /// Caught in flight: re-planned under the new epoch the given
    /// number of times and completed.
    Replanned(u64),
    /// Degraded into a typed refusal of the given kind
    /// (`non-compliant`, `catalog-stale`, …).
    Refused(String),
}

impl ChurnOutcome {
    /// Compact grid label.
    pub fn label(&self) -> String {
        match self {
            ChurnOutcome::Finished => "finished".into(),
            ChurnOutcome::Replanned(n) => format!("replanned×{n}"),
            ChurnOutcome::Refused(kind) => format!("refused:{kind}"),
        }
    }
}

/// One cell of the churn grid.
#[derive(Debug)]
pub struct ChurnCell {
    /// Query name.
    pub query: &'static str,
    /// Executor step the revocation was released at.
    pub revoke_step: u64,
    /// The stable policy id revoked.
    pub revoked_pid: u64,
    /// What happened.
    pub outcome: ChurnOutcome,
    /// Total re-plans (site failures + churn; here churn only).
    pub replans: usize,
    /// Bytes shipped across all attempts.
    pub total_bytes: u64,
    /// Bytes the fault-free, churn-free reference run shipped.
    pub reference_bytes: u64,
    /// Bytes re-shipped after the abort (checkpoint misses); the re-plan
    /// overhead the checkpoint migration is there to bound.
    pub recomputed_bytes: u64,
    /// Bytes served from migrated checkpoints instead of re-shipping.
    pub resumed_bytes: u64,
    /// Completed cells only: the answer matched the reference multiset.
    pub rows_match: bool,
}

/// One cell of the grant grid: revocation at step 0, the same
/// expression re-granted at sequence 2 and released at `grant_step`,
/// under a catalog-plane crash and an auto-compacted log.
#[derive(Debug)]
pub struct GrantCell {
    /// Query name.
    pub query: &'static str,
    /// Executor step the re-grant was released at.
    pub grant_step: u64,
    /// The stable policy id revoked (and whose expression was
    /// re-granted).
    pub revoked_pid: u64,
    /// What happened.
    pub outcome: ChurnOutcome,
    /// Quiesce-free grant retries the execution performed.
    pub grant_retries: u64,
    /// The query was refused under the revocation's pin and completed
    /// under the re-granted head — the rescue the retry exists for.
    pub rescued: bool,
    /// Completed cells only: the answer matched the reference multiset.
    pub rows_match: bool,
}

/// Catalog-plane resilience counters aggregated across a sweep's
/// scripted services: how often replicas lost state, how they
/// recovered, and how far they trailed the head while faults bit.
#[derive(Debug, Default, Clone)]
pub struct PlaneStats {
    /// Replica state losses from catalog-plane crashes.
    pub wipes: u64,
    /// Snapshot bootstraps that recovered a wiped (or floored-out)
    /// replica.
    pub bootstraps: u64,
    /// Snapshots refused by chain verification (always 0 honestly).
    pub chain_rejects: u64,
    /// Bytes of floor snapshots shipped to bootstrapping replicas.
    pub snapshot_bytes: u64,
    /// Bytes of log entries shipped on replication pulls.
    pub entry_bytes: u64,
    /// Worst median replica lag observed while faults were active.
    pub lag_p50: u64,
    /// Worst single-replica lag observed while faults were active.
    pub lag_max: u64,
}

impl PlaneStats {
    /// Fold one service's lifetime counters into the aggregate.
    /// `while_faulted` is the health captured before the healing sync —
    /// its lag picture shows the fault actually biting.
    pub fn absorb(&mut self, while_faulted: &CatalogHealth, final_health: &CatalogHealth) {
        self.wipes += final_health.wipes;
        self.bootstraps += final_health.bootstraps;
        self.chain_rejects += final_health.chain_rejects;
        self.snapshot_bytes += final_health.snapshot_bytes;
        self.entry_bytes += final_health.entry_bytes;
        self.lag_p50 = self.lag_p50.max(while_faulted.lag_p50);
        self.lag_max = self.lag_max.max(while_faulted.lag_max);
    }
}

/// One cell of the stale sweep: revocation at step 0 with one site's
/// catalog replica partitioned away from the coordinator.
#[derive(Debug)]
pub struct StaleCell {
    /// Query name.
    pub query: &'static str,
    /// The site whose replica cannot catch up.
    pub partitioned: Location,
    /// What happened (a re-plan shipping from the partitioned site
    /// refuses `catalog-stale`; others finish or refuse compliance).
    pub outcome: ChurnOutcome,
    /// Completed cells only: the answer matched the reference multiset.
    pub rows_match: bool,
}

fn multiset(rows: &Rows) -> Vec<Vec<Value>> {
    let mut v: Vec<Vec<Value>> = rows.rows().to_vec();
    v.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    v
}

struct Fixture {
    catalog: Arc<geoqp_storage::Catalog>,
    policies: PolicyCatalog,
    engine: Engine,
    coordinator: Location,
}

fn fixture(seed: u64) -> Fixture {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(EXEC_SF));
    geoqp_tpch::populate(&catalog, EXEC_SF, seed).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::CRA, 10, seed).expect("policy generation");
    let engine = Engine::new(
        Arc::clone(&catalog),
        Arc::new(policies.clone()),
        NetworkTopology::paper_wan(),
    );
    let coordinator = catalog
        .locations()
        .iter()
        .next()
        .cloned()
        .expect("the paper catalog has sites");
    Fixture {
        catalog,
        policies,
        engine,
        coordinator,
    }
}

/// A catalog service whose log already holds the revocation of `pid`
/// at sequence 1, with the signal scripted to release it at `step`.
/// All replicas are fully synced to the head before execution begins —
/// staleness, where wanted, comes from the catalog-plane fault plan.
fn scripted_service(
    fx: &Fixture,
    pid: u64,
    step: u64,
    faults: Option<FaultPlan>,
) -> Arc<CatalogService> {
    let svc = CatalogService::new(
        Arc::clone(&fx.catalog),
        fx.policies.clone(),
        fx.coordinator.clone(),
    );
    let rev = svc.revoke(pid).expect("revoking a live template pid");
    let planned = vec![ChurnEvent {
        step,
        seq: rev.seq,
        epoch: rev.epoch,
        revocation: true,
    }];
    let mut svc = svc.with_planned(planned);
    if let Some(f) = faults {
        svc = svc.with_faults(f);
    } else {
        svc.sync_full();
    }
    Arc::new(svc)
}

/// The E12 grid: every TPC-H query × every revocation-release step,
/// revoking a different live policy per cell (cycling through the
/// template set in pid order).
pub fn churn_grid(seed: u64) -> Vec<ChurnCell> {
    let fx = fixture(seed);
    let sites = fx.catalog.locations().len();
    let retry = RetryPolicy::default();
    let probe = CatalogService::new(
        Arc::clone(&fx.catalog),
        fx.policies.clone(),
        fx.coordinator.clone(),
    );
    let pids: Vec<u64> = probe.live_policies().iter().map(|(pid, _)| *pid).collect();
    assert!(!pids.is_empty(), "the template set registered no policies");
    let mut out = Vec::new();
    for (qi, (query, plan)) in all_queries(&fx.catalog)
        .expect("queries")
        .iter()
        .enumerate()
    {
        let Ok(optimized) = fx.engine.optimize(plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        let Ok(reference) =
            fx.engine
                .execute_resilient(&optimized, &FaultPlan::new(seed), &retry, 0)
        else {
            continue;
        };
        let reference_rows = multiset(&reference.rows);
        let reference_bytes = reference.transfers.total_bytes();
        for (si, &step) in REVOKE_STEPS.iter().enumerate() {
            let pid = pids[(qi * REVOKE_STEPS.len() + si) % pids.len()];
            let svc = scripted_service(&fx, pid, step, None);
            let pin = geoqp_common::CatalogPin::new(0, fx.engine.policies().epoch());
            let opts = FailoverOpts::new(sites).with_churn(Arc::clone(&svc), pin);
            let cell = match fx.engine.execute_resilient_opts(
                &optimized,
                &FaultPlan::new(seed),
                &retry,
                &opts,
            ) {
                Ok(res) => ChurnCell {
                    query,
                    revoke_step: step,
                    revoked_pid: pid,
                    outcome: if res.churn_replans == 0 {
                        ChurnOutcome::Finished
                    } else {
                        ChurnOutcome::Replanned(res.churn_replans)
                    },
                    replans: res.replans,
                    total_bytes: res.transfers.total_bytes(),
                    reference_bytes,
                    recomputed_bytes: res.recomputed_bytes,
                    resumed_bytes: res.resumed_bytes,
                    rows_match: multiset(&res.rows) == reference_rows,
                },
                Err(e) => ChurnCell {
                    query,
                    revoke_step: step,
                    revoked_pid: pid,
                    outcome: ChurnOutcome::Refused(e.kind().to_string()),
                    replans: 0,
                    total_bytes: 0,
                    reference_bytes,
                    recomputed_bytes: 0,
                    resumed_bytes: 0,
                    rows_match: true,
                },
            };
            out.push(cell);
        }
    }
    out
}

/// The grant grid: every TPC-H query × every grant-release step. Each
/// cell's scripted log holds the revocation of a live pid at sequence 1
/// (released at executor step 0) and a re-grant of the *same*
/// expression at sequence 2 (released at the swept grant step), with
/// the log auto-compacted to one tail entry and the first
/// non-coordinator site's catalog replica crashing across sync steps
/// [0, 2) — so every churn re-plan's sync round exercises the wipe /
/// snapshot-bootstrap recovery path while the grant retry decides the
/// query's fate.
pub fn grant_grid(seed: u64) -> (Vec<GrantCell>, PlaneStats) {
    let fx = fixture(seed);
    let sites = fx.catalog.locations().len();
    let retry = RetryPolicy::default();
    let probe = CatalogService::new(
        Arc::clone(&fx.catalog),
        fx.policies.clone(),
        fx.coordinator.clone(),
    );
    let live = probe.live_policies();
    assert!(!live.is_empty(), "the template set registered no policies");
    let crash_site = fx
        .catalog
        .locations()
        .iter()
        .find(|s| **s != fx.coordinator)
        .cloned()
        .expect("the paper catalog has a non-coordinator site");
    let mut out = Vec::new();
    let mut plane = PlaneStats::default();
    for (qi, (query, plan)) in all_queries(&fx.catalog)
        .expect("queries")
        .iter()
        .enumerate()
    {
        let Ok(optimized) = fx.engine.optimize(plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        let Ok(reference) =
            fx.engine
                .execute_resilient(&optimized, &FaultPlan::new(seed), &retry, 0)
        else {
            continue;
        };
        let reference_rows = multiset(&reference.rows);
        for (si, &grant_step) in GRANT_STEPS.iter().enumerate() {
            let (pid, display) = &live[(qi * GRANT_STEPS.len() + si) % live.len()];
            let svc = CatalogService::new(
                Arc::clone(&fx.catalog),
                fx.policies.clone(),
                fx.coordinator.clone(),
            )
            .with_auto_compact(1);
            let rev = svc.revoke(*pid).expect("revoking a live template pid");
            let regrant = geoqp_parser::parse_policy(display).expect("live display forms re-parse");
            let re = svc
                .grant(regrant)
                .expect("re-granting the revoked expression");
            let svc = Arc::new(
                svc.with_planned(vec![
                    ChurnEvent {
                        step: 0,
                        seq: rev.seq,
                        epoch: rev.epoch,
                        revocation: true,
                    },
                    ChurnEvent {
                        step: grant_step,
                        seq: re.seq,
                        epoch: re.epoch,
                        revocation: false,
                    },
                ])
                .with_faults(
                    FaultPlan::new(seed ^ 0xB007)
                        .with_crash(crash_site.clone(), StepWindow::new(0, 2)),
                ),
            );
            svc.sync_full();
            let pin = geoqp_common::CatalogPin::new(0, fx.engine.policies().epoch());
            let opts = FailoverOpts::new(sites).with_churn(Arc::clone(&svc), pin);
            let cell = match fx.engine.execute_resilient_opts(
                &optimized,
                &FaultPlan::new(seed),
                &retry,
                &opts,
            ) {
                Ok(res) => GrantCell {
                    query,
                    grant_step,
                    revoked_pid: *pid,
                    outcome: if res.churn_replans == 0 {
                        ChurnOutcome::Finished
                    } else {
                        ChurnOutcome::Replanned(res.churn_replans)
                    },
                    grant_retries: res.grant_retries,
                    rescued: res.grant_retries > 0,
                    rows_match: multiset(&res.rows) == reference_rows,
                },
                Err(e) => GrantCell {
                    query,
                    grant_step,
                    revoked_pid: *pid,
                    outcome: ChurnOutcome::Refused(e.kind().to_string()),
                    grant_retries: 0,
                    rescued: false,
                    rows_match: true,
                },
            };
            // Capture the lag picture while the crash still bites, then
            // close the window: the wiped replica bootstraps from the
            // floor snapshot and tails the remaining entry.
            let while_faulted = svc.health();
            svc.sync_at(2);
            plane.absorb(&while_faulted, &svc.health());
            out.push(cell);
        }
    }
    (out, plane)
}

/// The stale sweep: revocation released at step 0 while one site's
/// catalog replica is partitioned away from the coordinator for the
/// whole run, for every query × every non-coordinator site.
pub fn stale_sweep(seed: u64) -> Vec<StaleCell> {
    let fx = fixture(seed);
    let sites_all: Vec<Location> = fx.catalog.locations().iter().cloned().collect();
    let sites = sites_all.len();
    let retry = RetryPolicy::default();
    let probe = CatalogService::new(
        Arc::clone(&fx.catalog),
        fx.policies.clone(),
        fx.coordinator.clone(),
    );
    let pids: Vec<u64> = probe.live_policies().iter().map(|(pid, _)| *pid).collect();
    let mut out = Vec::new();
    for (qi, (query, plan)) in all_queries(&fx.catalog)
        .expect("queries")
        .iter()
        .enumerate()
    {
        let Ok(optimized) = fx.engine.optimize(plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        let Ok(reference) =
            fx.engine
                .execute_resilient(&optimized, &FaultPlan::new(seed), &retry, 0)
        else {
            continue;
        };
        let reference_rows = multiset(&reference.rows);
        for (pi, site) in sites_all.iter().enumerate() {
            if *site == fx.coordinator {
                continue;
            }
            let pid = pids[(qi * sites_all.len() + pi) % pids.len()];
            let catalog_faults =
                FaultPlan::new(seed).with_partition([site.clone()], StepWindow::ALWAYS);
            let svc = scripted_service(&fx, pid, 0, Some(catalog_faults));
            let pin = geoqp_common::CatalogPin::new(0, fx.engine.policies().epoch());
            let opts = FailoverOpts::new(sites).with_churn(Arc::clone(&svc), pin);
            let cell = match fx.engine.execute_resilient_opts(
                &optimized,
                &FaultPlan::new(seed),
                &retry,
                &opts,
            ) {
                Ok(res) => StaleCell {
                    query,
                    partitioned: site.clone(),
                    outcome: if res.churn_replans == 0 {
                        ChurnOutcome::Finished
                    } else {
                        ChurnOutcome::Replanned(res.churn_replans)
                    },
                    rows_match: multiset(&res.rows) == reference_rows,
                },
                Err(e) => StaleCell {
                    query,
                    partitioned: site.clone(),
                    outcome: ChurnOutcome::Refused(e.kind().to_string()),
                    rows_match: true,
                },
            };
            out.push(cell);
        }
    }
    out
}

/// Per-outcome counts plus the re-plan byte overhead across a grid.
#[derive(Debug, Default)]
pub struct ChurnSummary {
    /// Cells that finished under their admission pin.
    pub finished: u64,
    /// Cells that re-planned under a new epoch and completed.
    pub replanned: u64,
    /// Cells refused `non-compliant`.
    pub refused_non_compliant: u64,
    /// Cells refused `catalog-stale`.
    pub refused_catalog_stale: u64,
    /// Cells refused with any other typed kind.
    pub refused_other: u64,
    /// Re-shipped bytes across all re-planned cells.
    pub recomputed_bytes: u64,
    /// Checkpoint-resumed bytes across all re-planned cells.
    pub resumed_bytes: u64,
    /// Reference (churn-free) bytes of the re-planned cells.
    pub replanned_reference_bytes: u64,
    /// Grant-grid cells refused under the revocation's pin and rescued
    /// by a quiesce-free grant retry.
    pub grants_rescued: u64,
    /// Quiesce-free grant retries summed over the grant grid.
    pub grant_retries: u64,
}

impl ChurnSummary {
    /// Bytes re-shipped by churn re-plans as a fraction of what the
    /// affected queries ship churn-free.
    pub fn replan_byte_overhead(&self) -> f64 {
        if self.replanned_reference_bytes == 0 {
            0.0
        } else {
            self.recomputed_bytes as f64 / self.replanned_reference_bytes as f64
        }
    }

    fn count(&mut self, outcome: &ChurnOutcome) {
        match outcome {
            ChurnOutcome::Finished => self.finished += 1,
            ChurnOutcome::Replanned(_) => self.replanned += 1,
            ChurnOutcome::Refused(kind) => match kind.as_str() {
                "non-compliant" => self.refused_non_compliant += 1,
                "catalog-stale" => self.refused_catalog_stale += 1,
                _ => self.refused_other += 1,
            },
        }
    }
}

/// Tally a grid, a stale sweep, and a grant grid into one summary.
pub fn summarize(grid: &[ChurnCell], stale: &[StaleCell], grants: &[GrantCell]) -> ChurnSummary {
    let mut s = ChurnSummary::default();
    for c in grid {
        s.count(&c.outcome);
        if matches!(c.outcome, ChurnOutcome::Replanned(_)) {
            s.recomputed_bytes += c.recomputed_bytes;
            s.resumed_bytes += c.resumed_bytes;
            s.replanned_reference_bytes += c.reference_bytes;
        }
    }
    for c in stale {
        s.count(&c.outcome);
    }
    for c in grants {
        s.count(&c.outcome);
        s.grant_retries += c.grant_retries;
        if c.rescued {
            s.grants_rescued += 1;
        }
    }
    s
}

/// Serialize the grids, sweeps, catalog-plane stats, and summary as
/// deterministic JSON (no wall-clock anywhere: same seed, same bytes).
pub fn to_json(
    grid: &[ChurnCell],
    stale: &[StaleCell],
    grants: &[GrantCell],
    plane: &PlaneStats,
    seed: u64,
) -> String {
    let summary = summarize(grid, stale, grants);
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"churn\",\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"scale_factor\": {EXEC_SF},\n"));
    s.push_str("  \"grid\": [\n");
    for (i, c) in grid.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"query\": \"{}\", ", c.query));
        s.push_str(&format!("\"revoke_step\": {}, ", c.revoke_step));
        s.push_str(&format!("\"revoked_pid\": {}, ", c.revoked_pid));
        s.push_str(&format!("\"outcome\": \"{}\", ", c.outcome.label()));
        s.push_str(&format!("\"replans\": {}, ", c.replans));
        s.push_str(&format!("\"total_bytes\": {}, ", c.total_bytes));
        s.push_str(&format!("\"reference_bytes\": {}, ", c.reference_bytes));
        s.push_str(&format!("\"recomputed_bytes\": {}, ", c.recomputed_bytes));
        s.push_str(&format!("\"resumed_bytes\": {}, ", c.resumed_bytes));
        s.push_str(&format!("\"rows_match\": {}", c.rows_match));
        s.push('}');
        if i + 1 < grid.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str("  \"stale\": [\n");
    for (i, c) in stale.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"query\": \"{}\", ", c.query));
        s.push_str(&format!("\"partitioned\": \"{}\", ", c.partitioned));
        s.push_str(&format!("\"outcome\": \"{}\", ", c.outcome.label()));
        s.push_str(&format!("\"rows_match\": {}", c.rows_match));
        s.push('}');
        if i + 1 < stale.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str("  \"grants\": [\n");
    for (i, c) in grants.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"query\": \"{}\", ", c.query));
        s.push_str(&format!("\"grant_step\": {}, ", c.grant_step));
        s.push_str(&format!("\"revoked_pid\": {}, ", c.revoked_pid));
        s.push_str(&format!("\"outcome\": \"{}\", ", c.outcome.label()));
        s.push_str(&format!("\"grant_retries\": {}, ", c.grant_retries));
        s.push_str(&format!("\"rescued\": {}, ", c.rescued));
        s.push_str(&format!("\"rows_match\": {}", c.rows_match));
        s.push('}');
        if i + 1 < grants.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str("  \"catalog_plane\": {\n");
    s.push_str(&format!("    \"wipes\": {},\n", plane.wipes));
    s.push_str(&format!("    \"bootstraps\": {},\n", plane.bootstraps));
    s.push_str(&format!(
        "    \"chain_rejects\": {},\n",
        plane.chain_rejects
    ));
    s.push_str(&format!(
        "    \"snapshot_bytes\": {},\n",
        plane.snapshot_bytes
    ));
    s.push_str(&format!("    \"entry_bytes\": {},\n", plane.entry_bytes));
    s.push_str(&format!("    \"lag_p50\": {},\n", plane.lag_p50));
    s.push_str(&format!("    \"lag_max\": {}\n", plane.lag_max));
    s.push_str("  },\n");
    s.push_str("  \"summary\": {\n");
    s.push_str(&format!("    \"finished\": {},\n", summary.finished));
    s.push_str(&format!("    \"replanned\": {},\n", summary.replanned));
    s.push_str(&format!(
        "    \"refused_non_compliant\": {},\n",
        summary.refused_non_compliant
    ));
    s.push_str(&format!(
        "    \"refused_catalog_stale\": {},\n",
        summary.refused_catalog_stale
    ));
    s.push_str(&format!(
        "    \"refused_other\": {},\n",
        summary.refused_other
    ));
    s.push_str(&format!(
        "    \"recomputed_bytes\": {},\n",
        summary.recomputed_bytes
    ));
    s.push_str(&format!(
        "    \"resumed_bytes\": {},\n",
        summary.resumed_bytes
    ));
    s.push_str(&format!(
        "    \"grants_rescued\": {},\n",
        summary.grants_rescued
    ));
    s.push_str(&format!(
        "    \"grant_retries\": {},\n",
        summary.grant_retries
    ));
    s.push_str(&format!(
        "    \"replan_byte_overhead\": {:.4}\n",
        summary.replan_byte_overhead()
    ));
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_grid_resolves_every_cell_typed_and_deterministically() {
        let grid = churn_grid(2021);
        assert!(!grid.is_empty());
        // Every cell is one of the three typed outcomes; completed cells
        // answer exactly what the churn-free reference answered.
        let mut replanned = 0;
        let mut finished_control = 0;
        for c in &grid {
            assert!(
                c.rows_match,
                "{} @ step {}: answer changed",
                c.query, c.revoke_step
            );
            match &c.outcome {
                ChurnOutcome::Replanned(n) => {
                    assert!(*n >= 1);
                    replanned += 1;
                }
                ChurnOutcome::Finished if c.revoke_step == 1_000 => finished_control += 1,
                _ => {}
            }
        }
        assert!(
            replanned >= 1,
            "no revocation ever caught a query in flight: {:?}",
            grid.iter().map(|c| c.outcome.label()).collect::<Vec<_>>()
        );
        assert!(
            finished_control >= 1,
            "the past-the-end control step must leave some query untouched"
        );
        // Identically-seeded runs serialize byte-identically.
        let stale = stale_sweep(2021);
        let (grants, plane) = grant_grid(2021);
        let (grants2, plane2) = grant_grid(2021);
        assert_eq!(
            to_json(&grid, &stale, &grants, &plane, 2021),
            to_json(
                &churn_grid(2021),
                &stale_sweep(2021),
                &grants2,
                &plane2,
                2021
            )
        );
    }

    #[test]
    fn grant_grid_rescues_refused_queries_and_recovers_crashed_replicas() {
        let (grants, plane) = grant_grid(2021);
        assert!(!grants.is_empty());
        let mut rescued = 0;
        let mut refused_control = 0;
        for c in &grants {
            assert!(
                c.rows_match,
                "{} @ grant step {}: answer changed",
                c.query, c.grant_step
            );
            if c.rescued {
                assert!(
                    matches!(c.outcome, ChurnOutcome::Replanned(_)),
                    "a rescued query completed by definition"
                );
                rescued += 1;
            }
            // The past-the-abort control column can never rescue: any
            // refusal there stays a refusal.
            if c.grant_step == 1_000 {
                assert_eq!(c.grant_retries, 0, "{}: hindsight rescue", c.query);
                if matches!(c.outcome, ChurnOutcome::Refused(_)) {
                    refused_control += 1;
                }
            }
        }
        assert!(
            rescued >= 1,
            "no refused query was ever rescued by the in-flight grant: {:?}",
            grants.iter().map(|c| c.outcome.label()).collect::<Vec<_>>()
        );
        assert!(
            refused_control >= 1,
            "the control column must show what rescue-less churn looks like"
        );
        // The catalog-plane crash actually bit, and recovery went
        // through verified snapshot bootstraps — never a bypass.
        assert!(plane.wipes >= 1, "the crash never wiped a replica");
        assert!(
            plane.bootstraps > plane.wipes,
            "wiped replicas must re-bootstrap"
        );
        assert_eq!(plane.chain_rejects, 0, "honest snapshots always verify");
        assert!(plane.snapshot_bytes > 0, "bootstraps are byte-charged");
        assert!(plane.lag_max >= 1, "the crashed replica trailed the head");
    }

    #[test]
    fn stale_sweep_refuses_unprovable_origins_typed() {
        let stale = stale_sweep(2021);
        assert!(!stale.is_empty());
        for c in &stale {
            assert!(c.rows_match, "{}: answer changed", c.query);
            if let ChurnOutcome::Refused(kind) = &c.outcome {
                assert!(
                    kind == "catalog-stale" || kind == "non-compliant",
                    "{} partitioned {}: unexpected refusal kind {kind}",
                    c.query,
                    c.partitioned
                );
            }
        }
        assert!(
            stale
                .iter()
                .any(|c| matches!(&c.outcome, ChurnOutcome::Refused(k) if k == "catalog-stale")),
            "no partitioned replica was ever caught stale: {:?}",
            stale.iter().map(|c| c.outcome.label()).collect::<Vec<_>>()
        );
    }
}
