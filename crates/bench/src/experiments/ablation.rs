//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! These are *extensions* beyond the paper's figures, probing two claims
//! the paper makes qualitatively:
//!
//! * **E1 — rule completeness (Section 6.4):** without the
//!   aggregation-pushdown rule, masking-by-aggregation plans (Figure 1(b))
//!   are unreachable and affected queries get rejected.
//! * **E2 — traits as interesting properties (Section 6.1):** keeping only
//!   the cheapest candidate per memo group (frontier cap 1) discards the
//!   costlier-but-better-annotated alternatives and loses compliant plans.
//! * **E3 — alternative cost model (Section 3.3 discussion):** the site
//!   selector under a response-time objective (parallel transfers, max
//!   instead of sum).

use crate::experiments::setup::{engine_with_policies, OPT_SF};
use geoqp_core::{Objective, OptimizerMode, OptimizerOptions};
use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
use geoqp_plan::LogicalPlan;
use geoqp_storage::Catalog;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::{all_queries, scan};
use std::sync::Arc;

/// Outcome counts for one optimizer configuration over a workload.
#[derive(Debug, Default)]
pub struct AblationCounts {
    /// Queries planned and audited compliant.
    pub planned: usize,
    /// Queries rejected.
    pub rejected: usize,
}

/// Build the delivery-constrained workload: lineitem-revenue rollups of
/// the shape the e5-style aggregate grant covers (SUM over extendedprice /
/// discount, inner grouping ⊆ {l_orderkey, l_suppkey}), joined against
/// orders and/or customer, with the result demanded at L1. Raw revenue
/// columns cannot reach L1 (the ship-date window is not implied), so a
/// compliant plan exists *only* via aggregation pushdown.
fn delivery_constrained_queries(catalog: &Catalog) -> Vec<(String, Arc<LogicalPlan>)> {
    let mut out: Vec<(String, Arc<LogicalPlan>)> = Vec::new();
    let revenue = || {
        ScalarExpr::col("l_extendedprice")
            .mul(ScalarExpr::lit(1i64).sub(ScalarExpr::col("l_discount")))
    };
    type AggArg = Box<dyn Fn() -> ScalarExpr>;
    let agg_cols: [(&str, AggArg); 3] = [
        ("revenue", Box::new(revenue)),
        ("extprice", Box::new(|| ScalarExpr::col("l_extendedprice"))),
        ("discount", Box::new(|| ScalarExpr::col("l_discount"))),
    ];
    for (label, arg) in &agg_cols {
        // orders ⋈ lineitem, grouped by an orders attribute.
        for group in ["o_custkey", "o_orderdate", "o_orderkey"] {
            let plan = scan(catalog, "orders")
                .unwrap()
                .join(
                    scan(catalog, "lineitem").unwrap(),
                    vec![("o_orderkey", "l_orderkey")],
                )
                .unwrap()
                .aggregate(&[group], vec![AggCall::new(AggFunc::Sum, arg(), "s")])
                .unwrap()
                .build();
            out.push((format!("sum({label}) by {group}"), plan));
        }
        // customer ⋈ orders ⋈ lineitem by market segment.
        let plan = scan(catalog, "customer")
            .unwrap()
            .join(
                scan(catalog, "orders").unwrap(),
                vec![("c_custkey", "o_custkey")],
            )
            .unwrap()
            .join(
                scan(catalog, "lineitem").unwrap(),
                vec![("o_orderkey", "l_orderkey")],
            )
            .unwrap()
            .aggregate(
                &["c_mktsegment"],
                vec![AggCall::new(AggFunc::Sum, arg(), "s")],
            )
            .unwrap()
            .build();
        out.push((format!("sum({label}) by c_mktsegment"), plan));
    }
    // A non-reducing rollup: grouping by (o_custkey, l_suppkey) forces the
    // pushed-down partial aggregate to group by (l_suppkey, l_orderkey),
    // which reduces nothing — so the compliance-carrying candidate is
    // strictly *costlier* than the raw plan in phase 1's cost model. Only
    // a Pareto frontier keeps it alive (extension E2).
    let plan = scan(catalog, "orders")
        .unwrap()
        .join(
            scan(catalog, "lineitem").unwrap(),
            vec![("o_orderkey", "l_orderkey")],
        )
        .unwrap()
        .aggregate(
            &["o_custkey", "l_suppkey"],
            vec![AggCall::new(
                AggFunc::Sum,
                ScalarExpr::col("l_extendedprice"),
                "s",
            )],
        )
        .unwrap()
        .build();
    out.push((
        "sum(extprice) by o_custkey, l_suppkey (non-reducing)".into(),
        plan,
    ));
    out
}

/// E1/E2: rejection counts over the delivery-constrained workload.
pub fn rejection_ablation(seed: u64) -> Vec<(&'static str, AblationCounts)> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let policies = generate_policies(&catalog, PolicyTemplate::CRA, 10, seed).unwrap();
    let engine = engine_with_policies(Arc::clone(&catalog), policies);
    let queries = delivery_constrained_queries(&catalog);

    let configs: Vec<(&'static str, OptimizerOptions)> = vec![
        ("full optimizer", OptimizerOptions::default()),
        (
            "no aggregate pushdown",
            OptimizerOptions {
                disable_aggregate_pushdown: true,
                ..Default::default()
            },
        ),
        (
            "frontier cap = 1",
            OptimizerOptions {
                frontier_cap: Some(1),
                ..Default::default()
            },
        ),
    ];
    let mut out = Vec::new();
    for (name, opts) in configs {
        let mut counts = AblationCounts::default();
        for (_label, plan) in &queries {
            match engine.optimize_opts(
                plan,
                OptimizerMode::Compliant,
                Some(geoqp_common::Location::new("L1")),
                &opts,
            ) {
                Ok(opt) => {
                    engine
                        .audit(&opt.physical)
                        .expect("compliant mode must stay sound under ablations");
                    counts.planned += 1;
                }
                Err(_) => counts.rejected += 1,
            }
        }
        out.push((name, counts));
    }
    out
}

/// E3: total-cost vs response-time placement on the six TPC-H queries
/// (estimated shipping metrics from the site selector).
#[derive(Debug)]
pub struct ObjectiveRow {
    /// Query name.
    pub query: &'static str,
    /// Estimated cost under the total-cost objective (its own metric).
    pub total_cost_ms: f64,
    /// Estimated critical path under the response-time objective.
    pub response_time_ms: f64,
    /// Whether the two placements differ.
    pub placements_differ: bool,
}

/// Run E3.
pub fn objective_comparison(seed: u64) -> Vec<ObjectiveRow> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let policies = generate_policies(&catalog, PolicyTemplate::CRA, 10, seed).unwrap();
    let engine = engine_with_policies(Arc::clone(&catalog), policies);
    let mut out = Vec::new();
    for (query, plan) in all_queries(&catalog).unwrap() {
        let total = engine
            .optimize_opts(
                &plan,
                OptimizerMode::Compliant,
                None,
                &OptimizerOptions::default(),
            )
            .unwrap();
        let rt = engine
            .optimize_opts(
                &plan,
                OptimizerMode::Compliant,
                None,
                &OptimizerOptions {
                    objective: Objective::ResponseTime,
                    ..Default::default()
                },
            )
            .unwrap();
        out.push(ObjectiveRow {
            query,
            total_cost_ms: total.stats.est_ship_cost_ms,
            response_time_ms: rt.stats.est_ship_cost_ms,
            placements_differ: total.physical != rt.physical,
        });
    }
    out
}
