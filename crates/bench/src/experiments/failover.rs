//! Failover experiment: each TPC-H query executed under the permanent
//! crash of each site in turn.
//!
//! For every (query, crashed site) pair the engine runs
//! [`Engine::execute_resilient`]: the crash surfaces as a typed
//! `SiteUnavailable`, Algorithm 2 re-runs with the dead site excluded
//! from every execution trait, and the new placement is re-verified
//! against Definition 1 before execution resumes. The matrix reports,
//! per cell, whether the query completed (and after how many re-plans)
//! or degraded into a typed rejection — never a silent non-compliant
//! answer.

use crate::experiments::setup::{engine_with_policies, EXEC_SF};
use geoqp_common::{Location, Rows, Value};
use geoqp_core::{Engine, FailoverOpts, OptimizerMode};
use geoqp_exec::RetryPolicy;
use geoqp_net::{FaultPlan, StepWindow};
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

/// What happened to one (query, crashed site) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The crash never bit: the plan did not touch the dead site.
    Unaffected,
    /// Completed after the given number of compliant re-plans (≥ 1).
    FailedOver(usize),
    /// Degraded into a typed error of the given kind (`rejected`,
    /// `unavailable`, …) — the compliant refusal path.
    TypedError(String),
}

impl Outcome {
    /// Compact matrix label.
    pub fn label(&self) -> String {
        match self {
            Outcome::Unaffected => "ok".into(),
            Outcome::FailedOver(n) => format!("failover×{n}"),
            Outcome::TypedError(kind) => format!("err:{kind}"),
        }
    }
}

/// One cell of the crash matrix.
#[derive(Debug)]
pub struct FailoverCell {
    /// Query name.
    pub query: &'static str,
    /// The site crashed for this run.
    pub crashed: Location,
    /// What happened.
    pub outcome: Outcome,
    /// Fault events the network simulator recorded along the way.
    pub faults: usize,
}

/// Run one query under one permanently crashed site.
pub fn crash_one(
    engine: &Engine,
    optimized: &geoqp_core::OptimizedQuery,
    site: &Location,
    max_replans: usize,
) -> (Outcome, usize) {
    let faults = FaultPlan::new(0).with_crash(site.clone(), StepWindow::ALWAYS);
    match engine.execute_resilient(optimized, &faults, &RetryPolicy::default(), max_replans) {
        Ok(res) => {
            let outcome = if res.replans == 0 {
                Outcome::Unaffected
            } else {
                Outcome::FailedOver(res.replans)
            };
            (outcome, res.transfers.fault_count())
        }
        Err(e) => (Outcome::TypedError(e.kind().to_string()), 0),
    }
}

/// The full matrix: all six TPC-H queries × every site of the paper's
/// deployment, each under a permanent single-site crash.
pub fn crash_matrix(seed: u64) -> Vec<FailoverCell> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(EXEC_SF));
    geoqp_tpch::populate(&catalog, EXEC_SF, seed).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::CRA, 10, seed).expect("policy generation");
    let engine = engine_with_policies(Arc::clone(&catalog), policies);
    let sites: Vec<Location> = catalog.locations().iter().cloned().collect();
    let mut out = Vec::new();
    for (query, plan) in all_queries(&catalog).expect("queries") {
        let optimized = match engine.optimize(&plan, OptimizerMode::Compliant, None) {
            Ok(o) => o,
            Err(e) => {
                // Rejected before any fault: one row records it.
                out.push(FailoverCell {
                    query,
                    crashed: Location::new("-"),
                    outcome: Outcome::TypedError(e.kind().to_string()),
                    faults: 0,
                });
                continue;
            }
        };
        for site in &sites {
            let (outcome, faults) = crash_one(&engine, &optimized, site, sites.len());
            out.push(FailoverCell {
                query,
                crashed: site.clone(),
                outcome,
                faults,
            });
        }
    }
    out
}

/// One row of the checkpoint/resume recovery comparison: the same
/// late crash recovered from scratch vs resumed from checkpoints.
#[derive(Debug)]
pub struct ResumeCell {
    /// Query name.
    pub query: &'static str,
    /// The site crashed for this run.
    pub crashed: Location,
    /// Fault-clock step the crash begins at (final third of the run).
    pub crash_step: u64,
    /// Length of the outage window in fault-clock steps.
    pub crash_window: u64,
    /// Bytes to recover without checkpoints: the post-failure traffic of
    /// a scratch failover when one exists, else the full traffic of
    /// re-running the query (the dead site hosts a base table, so the
    /// compliant refusal is correct and a complete re-run is the only
    /// checkpoint-free recovery).
    pub scratch_recovery_bytes: u64,
    /// Whether a scratch failover existed at all (`false` means the
    /// scratch cost above is a full re-run).
    pub scratch_replanned: bool,
    /// Bytes shipped after the first failure, resuming from checkpoints.
    pub resume_recovery_bytes: u64,
    /// SHIP edges the stitched re-plan served from checkpoints.
    pub checkpoint_hits: u64,
    /// Re-plans in each mode (they agree: resume changes bytes, not the
    /// failover decisions).
    pub replans: usize,
    /// Scratch recovery took the same number of re-plans (vacuously true
    /// when no scratch failover exists).
    pub replans_match: bool,
    /// The resumed run matched the fault-free reference row multiset
    /// (and the scratch failover's, when one exists).
    pub rows_match: bool,
    /// The stitched resume plan passed the Definition-1 checker.
    pub audit_ok: bool,
}

impl ResumeCell {
    /// Resume recovery traffic as a fraction of scratch recovery traffic.
    pub fn recovery_ratio(&self) -> f64 {
        if self.scratch_recovery_bytes == 0 {
            1.0
        } else {
            self.resume_recovery_bytes as f64 / self.scratch_recovery_bytes as f64
        }
    }
}

fn multiset(rows: &Rows) -> Vec<Vec<Value>> {
    let mut v: Vec<Vec<Value>> = rows.rows().to_vec();
    v.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    v
}

/// Late-crash recovery comparison across the TPC-H queries: for each
/// query, a fault-free run counts the fault-clock steps, a site outage
/// is injected in the final third of the run (a bounded window, grown
/// until the crash actually bites an in-flight operation), and the same
/// schedule is recovered twice — once without checkpoints and once with
/// checkpoint/resume — comparing recovery traffic.
pub fn resume_matrix(seed: u64) -> Vec<ResumeCell> {
    // The column-restriction template: restrictive enough that compliance
    // is audited everywhere, permissive enough that the sites doing late
    // (post-join, pre-result) work have compliant alternates — which is
    // what makes a *late* crash both bite and be recoverable.
    let catalog = Arc::new(geoqp_tpch::paper_catalog(EXEC_SF));
    geoqp_tpch::populate(&catalog, EXEC_SF, seed).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::C, 10, seed).expect("policy generation");
    let engine = engine_with_policies(Arc::clone(&catalog), policies);
    let sites: Vec<Location> = catalog.locations().iter().cloned().collect();
    let retry = RetryPolicy::default();
    let mut out = Vec::new();
    for (query, plan) in all_queries(&catalog).expect("queries") {
        let Ok(optimized) = engine.optimize(&plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        // Fault-free run: reference rows and total step count, so the
        // crash can be pinned to the run's final third.
        let probe = FaultPlan::new(seed);
        let Ok(reference) = engine.execute_resilient(&optimized, &probe, &retry, 0) else {
            continue;
        };
        let crash_step = probe.step() * 2 / 3;
        'sites: for site in &sites {
            if *site == optimized.result_location {
                continue;
            }
            // Grow the outage window until the crash bites something the
            // site had in flight *and* the resumed retry clears it: too
            // short and the site was idle for the whole window; too long
            // and even the stitched retry re-fails inside it.
            let mut found = None;
            for window in [1u64, 2, 4, 8, 16] {
                let crash = || {
                    FaultPlan::new(seed).with_crash(
                        site.clone(),
                        StepWindow::new(crash_step, crash_step + window),
                    )
                };
                let resume_opts = FailoverOpts::new(sites.len());
                let Ok(resumed) =
                    engine.execute_resilient_opts(&optimized, &crash(), &retry, &resume_opts)
                else {
                    continue;
                };
                // Only cells where the crash actually bit and a checkpoint
                // survived to be resumed are comparable.
                if resumed.replans == 0 || resumed.checkpoint_hits == 0 {
                    continue;
                }
                found = Some((window, crash(), resumed));
                break;
            }
            let Some((window, scratch_faults, resumed)) = found else {
                continue 'sites;
            };
            let scratch_opts = FailoverOpts {
                resume: false,
                ..FailoverOpts::new(sites.len())
            };
            let scratch =
                engine.execute_resilient_opts(&optimized, &scratch_faults, &retry, &scratch_opts);
            let (scratch_recovery_bytes, scratch_replanned, scratch_agrees, replans_match) =
                match &scratch {
                    Ok(s) => (
                        s.recomputed_bytes,
                        true,
                        multiset(&s.rows) == multiset(&reference.rows),
                        s.replans == resumed.replans,
                    ),
                    // Without checkpoints the dead site's base tables are
                    // unreachable, so the typed refusal is the correct
                    // scratch behaviour; the only checkpoint-free recovery
                    // is re-running the whole query, whose full traffic is
                    // the scratch cost.
                    Err(_) => (reference.transfers.total_bytes(), false, true, true),
                };
            out.push(ResumeCell {
                query,
                crashed: site.clone(),
                crash_step,
                crash_window: window,
                scratch_recovery_bytes,
                scratch_replanned,
                resume_recovery_bytes: resumed.recomputed_bytes,
                checkpoint_hits: resumed.checkpoint_hits,
                replans: resumed.replans,
                replans_match,
                rows_match: scratch_agrees && multiset(&resumed.rows) == multiset(&reference.rows),
                audit_ok: engine.audit(&resumed.physical).is_ok(),
            });
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resume_recovers_cheaper_than_scratch() {
        let cells = resume_matrix(2021);
        assert!(
            cells.len() >= 3,
            "late-crash resume must be measurable on at least 3 queries, got {}",
            cells.len()
        );
        let mut cheaper = 0;
        for c in &cells {
            assert!(c.rows_match, "{}: resume changed the answer", c.query);
            assert!(c.audit_ok, "{}: stitched plan failed audit", c.query);
            assert!(c.replans_match, "{}: resume changed replan count", c.query);
            assert!(c.checkpoint_hits >= 1);
            if c.recovery_ratio() < 0.5 {
                cheaper += 1;
            }
        }
        assert!(
            cheaper >= 3,
            "resume must re-ship <50% of scratch recovery bytes on ≥3 queries; \
             ratios: {:?}",
            cells
                .iter()
                .map(|c| (c.query, c.recovery_ratio()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn crash_matrix_covers_every_query_site_pair() {
        let cells = crash_matrix(2021);
        assert!(!cells.is_empty());
        // Every cell either completed (possibly after failover) or
        // failed with a typed error — the matrix has no other states,
        // and a failover cell must have seen at least one fault event.
        for cell in &cells {
            if let Outcome::FailedOver(n) = cell.outcome {
                assert!(n >= 1);
                assert!(
                    cell.faults >= 1,
                    "{} under crash of {} failed over without a recorded fault",
                    cell.query,
                    cell.crashed
                );
            }
        }
        // The crash must actually bite somewhere: at least one cell
        // either failed over or degraded into a typed error.
        assert!(
            cells
                .iter()
                .any(|c| !matches!(c.outcome, Outcome::Unaffected)),
            "no crash had any effect — the fault plan is not being consulted"
        );
    }
}
