//! Failover experiment: each TPC-H query executed under the permanent
//! crash of each site in turn.
//!
//! For every (query, crashed site) pair the engine runs
//! [`Engine::execute_resilient`]: the crash surfaces as a typed
//! `SiteUnavailable`, Algorithm 2 re-runs with the dead site excluded
//! from every execution trait, and the new placement is re-verified
//! against Definition 1 before execution resumes. The matrix reports,
//! per cell, whether the query completed (and after how many re-plans)
//! or degraded into a typed rejection — never a silent non-compliant
//! answer.

use crate::experiments::setup::{engine_with_policies, EXEC_SF};
use geoqp_common::Location;
use geoqp_core::{Engine, OptimizerMode};
use geoqp_exec::RetryPolicy;
use geoqp_net::{FaultPlan, StepWindow};
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

/// What happened to one (query, crashed site) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The crash never bit: the plan did not touch the dead site.
    Unaffected,
    /// Completed after the given number of compliant re-plans (≥ 1).
    FailedOver(usize),
    /// Degraded into a typed error of the given kind (`rejected`,
    /// `unavailable`, …) — the compliant refusal path.
    TypedError(String),
}

impl Outcome {
    /// Compact matrix label.
    pub fn label(&self) -> String {
        match self {
            Outcome::Unaffected => "ok".into(),
            Outcome::FailedOver(n) => format!("failover×{n}"),
            Outcome::TypedError(kind) => format!("err:{kind}"),
        }
    }
}

/// One cell of the crash matrix.
#[derive(Debug)]
pub struct FailoverCell {
    /// Query name.
    pub query: &'static str,
    /// The site crashed for this run.
    pub crashed: Location,
    /// What happened.
    pub outcome: Outcome,
    /// Fault events the network simulator recorded along the way.
    pub faults: usize,
}

/// Run one query under one permanently crashed site.
pub fn crash_one(
    engine: &Engine,
    optimized: &geoqp_core::OptimizedQuery,
    site: &Location,
    max_replans: usize,
) -> (Outcome, usize) {
    let faults = FaultPlan::new(0).with_crash(site.clone(), StepWindow::ALWAYS);
    match engine.execute_resilient(optimized, &faults, &RetryPolicy::default(), max_replans) {
        Ok(res) => {
            let outcome = if res.replans == 0 {
                Outcome::Unaffected
            } else {
                Outcome::FailedOver(res.replans)
            };
            (outcome, res.transfers.fault_count())
        }
        Err(e) => (Outcome::TypedError(e.kind().to_string()), 0),
    }
}

/// The full matrix: all six TPC-H queries × every site of the paper's
/// deployment, each under a permanent single-site crash.
pub fn crash_matrix(seed: u64) -> Vec<FailoverCell> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(EXEC_SF));
    geoqp_tpch::populate(&catalog, EXEC_SF, seed).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::CRA, 10, seed).expect("policy generation");
    let engine = engine_with_policies(Arc::clone(&catalog), policies);
    let sites: Vec<Location> = catalog.locations().iter().cloned().collect();
    let mut out = Vec::new();
    for (query, plan) in all_queries(&catalog).expect("queries") {
        let optimized = match engine.optimize(&plan, OptimizerMode::Compliant, None) {
            Ok(o) => o,
            Err(e) => {
                // Rejected before any fault: one row records it.
                out.push(FailoverCell {
                    query,
                    crashed: Location::new("-"),
                    outcome: Outcome::TypedError(e.kind().to_string()),
                    faults: 0,
                });
                continue;
            }
        };
        for site in &sites {
            let (outcome, faults) = crash_one(&engine, &optimized, site, sites.len());
            out.push(FailoverCell {
                query,
                crashed: site.clone(),
                outcome,
                faults,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_matrix_covers_every_query_site_pair() {
        let cells = crash_matrix(2021);
        assert!(!cells.is_empty());
        // Every cell either completed (possibly after failover) or
        // failed with a typed error — the matrix has no other states,
        // and a failover cell must have seen at least one fault event.
        for cell in &cells {
            if let Outcome::FailedOver(n) = cell.outcome {
                assert!(n >= 1);
                assert!(
                    cell.faults >= 1,
                    "{} under crash of {} failed over without a recorded fault",
                    cell.query,
                    cell.crashed
                );
            }
        }
        // The crash must actually bite somewhere: at least one cell
        // either failed over or degraded into a typed error.
        assert!(
            cells
                .iter()
                .any(|c| !matches!(c.outcome, Outcome::Unaffected)),
            "no crash had any effect — the fault plan is not being consulted"
        );
    }
}
