//! Optimization-overhead experiments: Figures 6(b)–6(f).
//!
//! Measures optimization time (phase 1 + phase 2) for the six TPC-H
//! queries under the traditional and compliant optimizers, for the
//! no-restriction set (minimal overhead, Figure 6(b)) and the four
//! template sets (Figures 6(c)–6(f)). Each measurement is repeated
//! (the paper uses seven runs) and reported as mean ± standard error.

use crate::experiments::setup::{engine_with_policies, OPT_SF};
use geoqp_core::OptimizerMode;
use geoqp_policy::PolicyCatalog;
use geoqp_tpch::policy_gen::{generate_policies, no_restriction_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

/// Mean and standard error over repeated runs.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Mean, ms.
    pub mean_ms: f64,
    /// Standard error, ms.
    pub stderr_ms: f64,
}

impl Timing {
    fn from_samples(samples: &[f64]) -> Timing {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
        Timing {
            mean_ms: mean,
            stderr_ms: (var / n).sqrt(),
        }
    }
}

/// One row of a Figure 6(b)–(f) chart.
#[derive(Debug)]
pub struct OverheadRow {
    /// Query name.
    pub query: &'static str,
    /// Traditional optimizer timing.
    pub traditional: Timing,
    /// Compliant optimizer timing.
    pub compliant: Timing,
    /// η observed during the compliant runs (constant across runs).
    pub eta: u64,
}

/// Policy-set selector for the overhead experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadCase {
    /// Figure 6(b): eight `ship * from t to *` expressions.
    NoRestrictions,
    /// Figures 6(c)–(f).
    Template(PolicyTemplate),
}

impl OverheadCase {
    /// Chart label.
    pub fn label(&self) -> String {
        match self {
            OverheadCase::NoRestrictions => "no restrictions (8)".into(),
            OverheadCase::Template(t) => {
                format!("{} ({})", t.name(), t.base_count())
            }
        }
    }

    fn policies(&self, catalog: &geoqp_storage::Catalog, seed: u64) -> PolicyCatalog {
        match self {
            OverheadCase::NoRestrictions => no_restriction_policies(catalog).unwrap(),
            OverheadCase::Template(t) => {
                generate_policies(catalog, *t, t.base_count(), seed).unwrap()
            }
        }
    }
}

/// Run one overhead experiment: all six queries, `runs` repetitions.
pub fn measure(case: OverheadCase, runs: usize, seed: u64) -> Vec<OverheadRow> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(OPT_SF));
    let policies = case.policies(&catalog, seed);
    let engine = engine_with_policies(Arc::clone(&catalog), policies);
    let mut out = Vec::new();
    for (query, plan) in all_queries(&catalog).unwrap() {
        let mut trad = Vec::with_capacity(runs);
        let mut comp = Vec::with_capacity(runs);
        let mut eta = 0;
        for _ in 0..runs {
            let t = engine
                .optimize(&plan, OptimizerMode::Traditional, None)
                .expect("traditional optimization");
            trad.push(t.stats.total_ms);
            let c = engine
                .optimize(&plan, OptimizerMode::Compliant, None)
                .expect("compliant optimization");
            comp.push(c.stats.total_ms);
            eta = c.stats.eta;
        }
        out.push(OverheadRow {
            query,
            traditional: Timing::from_samples(&trad),
            compliant: Timing::from_samples(&comp),
            eta,
        });
    }
    out
}
