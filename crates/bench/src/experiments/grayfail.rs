//! Gray-failure experiment: each TPC-H query executed over a WAN whose
//! busiest link is degraded (delivering at a multiple of its modelled
//! cost), with and without the hedged-transfer defense.
//!
//! For every query the harness first runs fault-free on the pipelined
//! runtime to find the busiest cross-site exchange edge, then degrades
//! that link and measures pipelined completion time three ways:
//!
//! * **no-hedge** — the baseline rides the degraded link at full price;
//! * **hedged** — link-health scoring launches compliant backup
//!   transfers (delayed duplicates, or one-hop relays through a site in
//!   the edge's shipping trait `𝒮_n`), first delivery wins;
//! * **condemned** ([`condemnation_matrix`]) — a tight breaker budget
//!   condemns the link entirely and the engine re-runs Algorithm 2 with
//!   the link priced at ∞, keeping both endpoints in the execution
//!   traits.
//!
//! Every run's final plan is re-audited against Definition 1: the
//! defense never buys latency with a non-compliant dataflow.

use crate::experiments::setup::{engine_with_policies, EXEC_SF};
use geoqp_common::{Location, Rows, Value};
use geoqp_core::{Engine, FailoverOpts, HealthConfig, HedgeConfig, OptimizerMode, RuntimeConfig};
use geoqp_exec::RetryPolicy;
use geoqp_net::{FaultPlan, StepWindow};
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

/// Exchange batch size for the gray-failure runs: small enough that
/// every cross-site stream produces several batches, so the health
/// table has observations to score before the stream ends.
const BATCH_ROWS: usize = 32;

/// One query's hedged-vs-unhedged comparison under a degraded link.
#[derive(Debug)]
pub struct GrayfailCell {
    /// Query name.
    pub query: &'static str,
    /// The degraded link (the query's busiest cross-site edge).
    pub link: (Location, Location),
    /// Degrade factor applied to the link.
    pub factor: f64,
    /// Pipelined completion without hedging, ms.
    pub nohedge_ms: f64,
    /// Pipelined completion with hedging, ms.
    pub hedged_ms: f64,
    /// Bytes shipped without hedging.
    pub nohedge_bytes: u64,
    /// Bytes shipped with hedging (backup legs included — the real cost
    /// of the defense).
    pub hedged_bytes: u64,
    /// Hedged backups launched.
    pub hedges_launched: u64,
    /// Hedged backups that beat their primary.
    pub hedges_won: u64,
    /// Backups that routed via a compliant relay site.
    pub relays_used: u64,
    /// Both degraded runs returned the fault-free row multiset.
    pub rows_match: bool,
    /// The hedged run's plan passed the Definition-1 audit.
    pub audit_ok: bool,
}

impl GrayfailCell {
    /// Completion-time speedup of hedging over the baseline.
    pub fn speedup(&self) -> f64 {
        if self.hedged_ms > 0.0 {
            self.nohedge_ms / self.hedged_ms
        } else {
            1.0
        }
    }

    /// Shipped-bytes overhead of hedging over the baseline (0.08 = +8%).
    pub fn bytes_overhead(&self) -> f64 {
        if self.nohedge_bytes > 0 {
            self.hedged_bytes as f64 / self.nohedge_bytes as f64 - 1.0
        } else {
            0.0
        }
    }
}

fn multiset(rows: &Rows) -> Vec<Vec<Value>> {
    let mut v: Vec<Vec<Value>> = rows.rows().to_vec();
    v.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    v
}

/// The engine and config shared by both matrices.
fn grayfail_engine(seed: u64) -> (Engine, RuntimeConfig) {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(EXEC_SF));
    geoqp_tpch::populate(&catalog, EXEC_SF, seed).expect("populate");
    let policies =
        generate_policies(&catalog, PolicyTemplate::CRA, 10, seed).expect("policy generation");
    let engine = engine_with_policies(catalog, policies);
    let config = RuntimeConfig {
        batch_rows: BATCH_ROWS,
        ..RuntimeConfig::default()
    };
    (engine, config)
}

/// The busiest cross-site exchange edge of a fault-free pipelined run —
/// the link a gray failure hurts most.
fn busiest_link(metrics: &geoqp_core::RuntimeMetrics) -> Option<(Location, Location)> {
    metrics
        .edges
        .iter()
        .filter(|e| e.from != e.to)
        .max_by(|a, b| {
            a.stats
                .bytes
                .cmp(&b.stats.bytes)
                .then(a.arrival_ms.total_cmp(&b.arrival_ms))
        })
        .map(|e| (e.from.clone(), e.to.clone()))
}

/// Hedged vs unhedged completion for every TPC-H query whose busiest
/// link turns gray: degraded by `factor` and dropping each batch with
/// probability `loss` (a loss burst). The two fault modes exercise both
/// backup shapes — relays detour around the slow wire where the edge's
/// `𝒮_n` permits one, and duplicates on independent fault coins rescue
/// lost batches without waiting out the primary's retry backoff.
pub fn grayfail_matrix(seed: u64, factor: f64, loss: f64) -> Vec<GrayfailCell> {
    let (engine, config) = grayfail_engine(seed);
    let retry = RetryPolicy::default();
    // No replanning in either arm: the comparison isolates hedging, so
    // the breaker's open budget is effectively unlimited here (the tight
    // budget is `condemnation_matrix`'s subject).
    let plain_opts = FailoverOpts {
        resume: false,
        ..FailoverOpts::new(0)
    };
    let hedge_opts = plain_opts.clone().with_hedge(HedgeConfig {
        delay_ms: 0.0,
        health: HealthConfig {
            open_budget: u32::MAX,
            ..HealthConfig::default()
        },
    });
    let mut out = Vec::new();
    for (query, plan) in all_queries(engine.catalog()).expect("queries") {
        let Ok(optimized) = engine.optimize(&plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        let Ok((reference, ref_metrics)) = engine.execute_resilient_parallel_opts(
            &optimized,
            &FaultPlan::new(seed),
            &retry,
            &plain_opts,
            &config,
        ) else {
            continue;
        };
        let Some(link) = busiest_link(&ref_metrics) else {
            continue;
        };
        let degrade = || {
            FaultPlan::new(seed)
                .with_degrade(link.0.clone(), link.1.clone(), factor, StepWindow::ALWAYS)
                .with_loss_burst(link.0.clone(), link.1.clone(), loss, StepWindow::ALWAYS)
        };
        let Ok((plain, plain_metrics)) = engine.execute_resilient_parallel_opts(
            &optimized,
            &degrade(),
            &retry,
            &plain_opts,
            &config,
        ) else {
            continue;
        };
        let Ok((hedged, hedged_metrics)) = engine.execute_resilient_parallel_opts(
            &optimized,
            &degrade(),
            &retry,
            &hedge_opts,
            &config,
        ) else {
            continue;
        };
        let reference_rows = multiset(&reference.rows);
        out.push(GrayfailCell {
            query,
            link: link.clone(),
            factor,
            nohedge_ms: plain_metrics.completion_ms,
            hedged_ms: hedged_metrics.completion_ms,
            nohedge_bytes: plain.transfers.total_bytes(),
            hedged_bytes: hedged.transfers.total_bytes(),
            hedges_launched: hedged.hedges_launched,
            hedges_won: hedged.hedges_won,
            relays_used: hedged.relays_used,
            rows_match: multiset(&plain.rows) == reference_rows
                && multiset(&hedged.rows) == reference_rows,
            audit_ok: engine.audit(&hedged.physical).is_ok(),
        });
    }
    out
}

/// One query's breaker-condemnation run: a tight open budget condemns
/// the degraded link and the engine re-plans with the link priced at ∞.
#[derive(Debug)]
pub struct CondemnCell {
    /// Query name.
    pub query: &'static str,
    /// The degraded (and condemned) link.
    pub link: (Location, Location),
    /// Compliant re-plans taken (≥ 1 when the breaker bit).
    pub replans: usize,
    /// The condemned link appears in the result's avoided set.
    pub avoided: bool,
    /// The condemnation was waived: no compliant placement avoids the
    /// link, so the engine rode the degraded wire instead of rejecting.
    pub waived: bool,
    /// Closed → open breaker transitions observed.
    pub breaker_trips: u64,
    /// Sites excluded during failover (must stay empty: a gray link is a
    /// link problem, not a site problem).
    pub sites_excluded: usize,
    /// The run returned the fault-free row multiset.
    pub rows_match: bool,
    /// The final (re-planned) plan passed the Definition-1 audit.
    pub audit_ok: bool,
}

/// Degrade each query's busiest link and give the breaker a one-trip
/// budget: the link is condemned, Algorithm 2 re-runs with its cost at
/// ∞, and the query completes on a placement that routes around it.
pub fn condemnation_matrix(seed: u64, factor: f64) -> Vec<CondemnCell> {
    let (engine, config) = grayfail_engine(seed);
    let retry = RetryPolicy::default();
    let plain_opts = FailoverOpts {
        resume: false,
        ..FailoverOpts::new(0)
    };
    let condemn_opts = FailoverOpts::new(2).with_hedge(HedgeConfig {
        delay_ms: 0.0,
        health: HealthConfig {
            open_budget: 1,
            cooldown_steps: 2,
            ..HealthConfig::default()
        },
    });
    let mut out = Vec::new();
    for (query, plan) in all_queries(engine.catalog()).expect("queries") {
        let Ok(optimized) = engine.optimize(&plan, OptimizerMode::Compliant, None) else {
            continue;
        };
        let Ok((reference, ref_metrics)) = engine.execute_resilient_parallel_opts(
            &optimized,
            &FaultPlan::new(seed),
            &retry,
            &plain_opts,
            &config,
        ) else {
            continue;
        };
        let Some(link) = busiest_link(&ref_metrics) else {
            continue;
        };
        let faults = FaultPlan::new(seed).with_degrade(
            link.0.clone(),
            link.1.clone(),
            factor,
            StepWindow::ALWAYS,
        );
        let (run, _) = match engine.execute_resilient_parallel_opts(
            &optimized,
            &faults,
            &retry,
            &condemn_opts,
            &config,
        ) {
            Ok(r) => r,
            Err(_) => continue,
        };
        out.push(CondemnCell {
            query,
            link: link.clone(),
            replans: run.replans,
            avoided: run.avoided_links.contains(&link),
            waived: run.waived_links.contains(&link),
            breaker_trips: run.breaker_trips,
            sites_excluded: run.excluded.len(),
            rows_match: multiset(&run.rows) == multiset(&reference.rows),
            audit_ok: engine.audit(&run.physical).is_ok(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: under a ≥2x degrade of its busiest link, the
    /// hedged run must complete faster than the unhedged run on at
    /// least 3 TPC-H queries, every run returning the fault-free rows
    /// under a Definition-1-clean plan.
    #[test]
    fn hedging_beats_the_degraded_baseline() {
        let cells = grayfail_matrix(2021, 6.0, 0.08);
        assert!(cells.len() >= 3, "too few measurable queries");
        let mut improved = 0;
        for c in &cells {
            assert!(c.rows_match, "{}: degraded run changed the answer", c.query);
            assert!(c.audit_ok, "{}: hedged plan failed audit", c.query);
            if c.hedges_won > 0 && c.hedged_ms < c.nohedge_ms {
                improved += 1;
            }
        }
        assert!(
            improved >= 3,
            "hedging must cut completion time on ≥3 queries; got {improved} of {:?}",
            cells
                .iter()
                .map(|c| (c.query, c.speedup(), c.hedges_won))
                .collect::<Vec<_>>()
        );
    }

    /// A one-trip breaker budget condemns the gray link: the engine
    /// re-plans around the *link* without excluding either endpoint
    /// site, and the result still audits clean.
    #[test]
    fn breaker_condemnation_replans_around_the_link() {
        let cells = condemnation_matrix(2021, 6.0);
        assert!(!cells.is_empty());
        let mut condemned = 0;
        for c in &cells {
            assert!(
                c.rows_match,
                "{}: condemned run changed the answer",
                c.query
            );
            assert!(c.audit_ok, "{}: re-planned plan failed audit", c.query);
            assert_eq!(
                c.sites_excluded, 0,
                "{}: a gray link must never exclude a site",
                c.query
            );
            assert!(
                c.avoided || c.waived,
                "{}: a tripped breaker must either detour around the link or \
                 explicitly waive the condemnation",
                c.query
            );
            if c.replans >= 1 && c.avoided {
                condemned += 1;
            }
        }
        assert!(
            condemned >= 1,
            "at least one query's breaker must condemn its gray link; cells: {:?}",
            cells
                .iter()
                .map(|c| (c.query, c.replans, c.breaker_trips))
                .collect::<Vec<_>>()
        );
    }
}
