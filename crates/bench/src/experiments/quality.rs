//! Plan-quality experiments: Figures 6(g) and 6(h).
//!
//! Compares the *execution cost arising from shipping intermediate data*
//! between the plans of the two optimizers, under the C and CR template
//! sets. Following Section 7.4, the network is simulated with the
//! `α_ij + β_ij · b` message cost model; here the plans are actually
//! executed over generated data and every SHIP's exact byte volume is
//! charged, rather than estimated.

use crate::experiments::setup::engine_with_policies;
use geoqp_core::{Engine, OptimizerMode};
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use geoqp_tpch::queries::all_queries;
use std::sync::Arc;

/// One bar pair of Figure 6(g)/(h).
#[derive(Debug)]
pub struct QualityRow {
    /// Query name.
    pub query: &'static str,
    /// Simulated shipping cost of the traditional plan (ms).
    pub traditional_cost_ms: f64,
    /// Whether the traditional plan was compliant.
    pub traditional_compliant: bool,
    /// Simulated shipping cost of the compliant plan (ms).
    pub compliant_cost_ms: f64,
    /// Scaled execution cost: compliant / traditional.
    pub scaled: f64,
    /// Whether the two physical plans are identical (the paper's "=").
    pub same_plan: bool,
    /// Bytes shipped by each plan.
    pub traditional_bytes: u64,
    /// Bytes shipped by the compliant plan.
    pub compliant_bytes: u64,
}

/// Run the quality experiment for one template at a data scale factor.
pub fn measure(template: PolicyTemplate, sf: f64, seed: u64) -> Vec<QualityRow> {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(sf));
    geoqp_tpch::populate(&catalog, sf, seed).expect("populate");
    let policies = generate_policies(&catalog, template, template.base_count(), seed).unwrap();
    let engine = engine_with_policies(Arc::clone(&catalog), policies);

    let mut out = Vec::new();
    for (query, plan) in all_queries(&catalog).unwrap() {
        let trad = engine
            .optimize(&plan, OptimizerMode::Traditional, None)
            .expect("traditional");
        let comp = engine
            .optimize(&plan, OptimizerMode::Compliant, None)
            .expect("compliant");
        let trad_exec = engine.execute(&trad.physical).expect("execute traditional");
        let comp_exec = engine.execute(&comp.physical).expect("execute compliant");
        // Semantics check: both plans must produce identical result sets.
        assert_eq!(
            sorted(&trad_exec.rows),
            sorted(&comp_exec.rows),
            "{query}: compliant and traditional results diverge"
        );
        let t_cost = trad_exec.transfers.total_cost_ms();
        let c_cost = comp_exec.transfers.total_cost_ms();
        out.push(QualityRow {
            query,
            traditional_cost_ms: t_cost,
            traditional_compliant: engine.audit(&trad.physical).is_ok(),
            compliant_cost_ms: c_cost,
            scaled: if t_cost > 0.0 { c_cost / t_cost } else { 1.0 },
            same_plan: trad.physical == comp.physical,
            traditional_bytes: trad_exec.transfers.total_bytes(),
            compliant_bytes: comp_exec.transfers.total_bytes(),
        });
    }
    out
}

fn sorted(rows: &geoqp_common::Rows) -> Vec<geoqp_common::Row> {
    let mut v: Vec<geoqp_common::Row> = rows.rows().to_vec();
    v.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    v
}

/// Shared engine builder for external callers (benches).
pub fn engine_for(template: PolicyTemplate, sf: f64, seed: u64) -> Engine {
    let catalog = Arc::new(geoqp_tpch::paper_catalog(sf));
    geoqp_tpch::populate(&catalog, sf, seed).expect("populate");
    let policies = generate_policies(&catalog, template, template.base_count(), seed).unwrap();
    engine_with_policies(catalog, policies)
}
