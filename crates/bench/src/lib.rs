//! # geoqp-bench
//!
//! The experiment harness reproducing every table and figure of the
//! paper's evaluation (Section 7). See `src/bin/repro.rs` for the runner
//! and the `benches/` directory for criterion micro-benchmarks.

pub mod experiments;

pub use experiments::setup;
