//! Reproduce every table and figure of the paper's evaluation.
//!
//! Usage:
//!   repro                # everything
//!   repro --figure 6a    # one artifact: table1|table2|table3|5a|5bcde|
//!                        # 6a|6b|6c|6d|6e|6f|6g|6h|7abc|7de|8ab|
//!                        # ablation|failover|scaleup|adhoc|service|churn
//!   repro --quick        # fewer runs / fewer ad-hoc queries
//!
//! `--figure adhoc` reproduces the paper's 400-query effectiveness and
//! overhead curves per template set, then scales the generated workload
//! to measure optimizer throughput (plans/sec, implication-memo hit
//! rate, Algorithm 2 DP states) and writes `BENCH_optimizer.json`. The
//! scale-run size is `GEOQP_ADHOC_N` (default 100000, or 2000 with
//! `--quick`).
//!
//! `--figure service` drives a closed loop of concurrent sessions across
//! four template tenants through the multi-tenant `QueryService`
//! (admission control, DRR fair scheduling, epoch-keyed plan cache) and
//! writes `BENCH_service.json`. The session count is
//! `GEOQP_SERVICE_SESSIONS` (default 1000, or 120 with `--quick`).

use geoqp_bench::experiments::overhead::OverheadCase;
use geoqp_bench::experiments::{
    ablation, churn, effectiveness, failover, grayfail, kernels, optimizer, overhead, quality,
    scalability, scaleup, service,
};
use geoqp_common::LocationSet;
use geoqp_plan::descriptor::describe_local;
use geoqp_policy::PolicyEvaluator;
use geoqp_tpch::policy_gen::PolicyTemplate;

const SEED: u64 = 2021;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let figure = args
        .iter()
        .position(|a| a == "--figure")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_ascii_lowercase());
    let runs = if quick { 3 } else { 7 };
    let adhoc_n = if quick { 80 } else { 400 };

    let want = |name: &str| figure.as_deref().is_none_or(|f| f == name);

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("table3") {
        table3();
    }
    if want("5a") {
        fig5a();
    }
    if want("5bcde") {
        fig5bcde();
    }
    if want("6a") {
        fig6a(adhoc_n);
    }
    for (id, case) in [
        ("6b", OverheadCase::NoRestrictions),
        ("6c", OverheadCase::Template(PolicyTemplate::T)),
        ("6d", OverheadCase::Template(PolicyTemplate::C)),
        ("6e", OverheadCase::Template(PolicyTemplate::CR)),
        ("6f", OverheadCase::Template(PolicyTemplate::CRA)),
    ] {
        if want(id) {
            fig6_overhead(id, case, runs);
        }
    }
    if want("6g") {
        fig6_quality("6g", PolicyTemplate::C, quick);
    }
    if want("6h") {
        fig6_quality("6h", PolicyTemplate::CR, quick);
    }
    if want("7abc") {
        fig7abc(runs);
    }
    if want("7de") {
        fig7de(runs);
    }
    if want("8ab") {
        fig8ab(runs);
    }
    if want("ablation") {
        ablations(quick);
    }
    if want("failover") {
        failover_matrix();
    }
    if want("grayfail") {
        grayfail_figure();
    }
    if want("scaleup") {
        scaleup_figure(if quick { 2 } else { 5 });
    }
    if want("adhoc") {
        adhoc_figure(adhoc_n, quick);
    }
    if want("service") {
        service_figure(quick);
    }
    if want("churn") {
        churn_figure();
    }
}

fn churn_figure() {
    header(
        "Extension E12: live policy churn — mid-flight revocations vs epoch-pinned queries (CR+A)",
    );
    println!(
        "  {:6} {:>6} {:>5} {:>14} {:>8} {:>12} {:>12} {:>12} {:>6}",
        "query", "step", "pid", "outcome", "replans", "total B", "recomp B", "resumed B", "rows="
    );
    let grid = churn::churn_grid(SEED);
    for c in &grid {
        println!(
            "  {:6} {:>6} {:>5} {:>14} {:>8} {:>12} {:>12} {:>12} {:>6}",
            c.query,
            c.revoke_step,
            c.revoked_pid,
            c.outcome.label(),
            c.replans,
            c.total_bytes,
            c.recomputed_bytes,
            c.resumed_bytes,
            if c.rows_match { "yes" } else { "NO" }
        );
    }

    header("Extension E12: stale replicas — catalog partition during churn re-plan");
    println!(
        "  {:6} {:>12} {:>22} {:>6}",
        "query", "partitioned", "outcome", "rows="
    );
    let stale = churn::stale_sweep(SEED);
    for c in &stale {
        println!(
            "  {:6} {:>12} {:>22} {:>6}",
            c.query,
            c.partitioned.to_string(),
            c.outcome.label(),
            if c.rows_match { "yes" } else { "NO" }
        );
    }
    header(
        "Extension E12: quiesce-free grant retry — revoke@step 0, re-grant released at a \
         swept step, catalog-plane crash + compacted log",
    );
    println!(
        "  {:6} {:>6} {:>5} {:>14} {:>8} {:>8} {:>6}",
        "query", "gstep", "pid", "outcome", "retries", "rescued", "rows="
    );
    let (grants, plane) = churn::grant_grid(SEED);
    for c in &grants {
        println!(
            "  {:6} {:>6} {:>5} {:>14} {:>8} {:>8} {:>6}",
            c.query,
            c.grant_step,
            c.revoked_pid,
            c.outcome.label(),
            c.grant_retries,
            if c.rescued { "yes" } else { "-" },
            if c.rows_match { "yes" } else { "NO" }
        );
    }
    println!(
        "  catalog plane: {} wipes, {} bootstraps, {} chain rejects, \
         {} B snapshots, {} B entries, lag p50 {} max {}",
        plane.wipes,
        plane.bootstraps,
        plane.chain_rejects,
        plane.snapshot_bytes,
        plane.entry_bytes,
        plane.lag_p50,
        plane.lag_max,
    );
    let s = churn::summarize(&grid, &stale, &grants);
    println!(
        "  summary: {} finished, {} replanned, {} refused non-compliant, \
         {} refused catalog-stale, {} other; {} rescued by grant retry \
         ({} retries); re-plan byte overhead {:.1}% \
         ({} B recomputed, {} B resumed from checkpoints)",
        s.finished,
        s.replanned,
        s.refused_non_compliant,
        s.refused_catalog_stale,
        s.refused_other,
        s.grants_rescued,
        s.grant_retries,
        s.replan_byte_overhead() * 100.0,
        s.recomputed_bytes,
        s.resumed_bytes,
    );
    let json = churn::to_json(&grid, &stale, &grants, &plane, SEED);
    match std::fs::write("BENCH_churn.json", &json) {
        Ok(()) => println!("  wrote BENCH_churn.json"),
        Err(e) => println!("  could not write BENCH_churn.json: {e}"),
    }
}

fn service_figure(quick: bool) {
    let sessions: usize = std::env::var("GEOQP_SERVICE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 120 } else { 1_000 });
    header(&format!(
        "Extension E11: multi-tenant service — {sessions} closed-loop sessions, 4 template tenants"
    ));
    let b = service::closed_loop(sessions, 0.01, SEED);
    println!(
        "  {:10} {:>9} {:>9} {:>10} {:>7} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "tenant",
        "sessions",
        "admitted",
        "completed",
        "failed",
        "rej",
        "cache-hit",
        "p50 ms",
        "p99 ms",
        "replans"
    );
    for t in &b.tenants {
        println!(
            "  {:10} {:>9} {:>9} {:>10} {:>7} {:>7} {:>8.1}% {:>9.1} {:>9.1} {:>8}",
            t.stats.name,
            t.sessions,
            t.stats.admitted,
            t.stats.completed,
            t.stats.failed,
            t.stats.rejected,
            t.stats.cache_hit_rate() * 100.0,
            t.stats.p50_ms,
            t.stats.p99_ms,
            t.stats.replans
        );
    }
    println!(
        "  total: {} queries in {:.0} ms on {} workers — {:.0} queries/sec, \
         {:.0} fresh plans/sec, plan-cache hit rate {:.1}% ({} evictions)",
        b.completed,
        b.wall_ms,
        b.workers,
        b.queries_per_sec,
        b.fresh_plans_per_sec,
        b.cache.hit_rate() * 100.0,
        b.cache.evictions
    );
    let json = service::to_json(&b, SEED);
    match std::fs::write("BENCH_service.json", &json) {
        Ok(()) => println!("  wrote BENCH_service.json"),
        Err(e) => println!("  could not write BENCH_service.json: {e}"),
    }
}

fn adhoc_figure(curve_n: usize, quick: bool) {
    header(&format!(
        "Extension E10: ad-hoc workload — effectiveness and overhead curves ({curve_n} queries)"
    ));
    println!(
        "  {:14} {:>8} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "template", "queries", "traditional", "compliant", "trad ms", "compl ms", "overhead"
    );
    let curves = optimizer::adhoc_curves(curve_n, SEED);
    for c in &curves {
        println!(
            "  {:14} {:>8} {:>12.2} {:>12.2} {:>10.2} {:>10.2} {:>8.2}x",
            format!("{}({})", c.template.name(), c.expressions),
            c.queries,
            c.traditional_fraction,
            c.compliant_fraction,
            c.traditional_mean_ms,
            c.compliant_mean_ms,
            c.overhead_factor()
        );
    }

    let scale_n: usize = std::env::var("GEOQP_ADHOC_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2_000 } else { 100_000 });
    header(&format!(
        "Extension E10: optimizer throughput over {scale_n} generated queries (compliant mode)"
    ));
    println!(
        "  {:14} {:>8} {:>8} {:>10} {:>11} {:>9} {:>8} {:>10} {:>10} {:>9}",
        "template",
        "queries",
        "workers",
        "wall ms",
        "plans/sec",
        "opt ms",
        "found",
        "memo hit%",
        "DP states",
        "η mean"
    );
    let throughput = optimizer::adhoc_throughput(scale_n, SEED);
    for t in &throughput {
        println!(
            "  {:14} {:>8} {:>8} {:>10.0} {:>11.0} {:>9.3} {:>8.2} {:>9.1}% {:>10.1} {:>9.1}",
            format!("{}({})", t.template.name(), t.expressions),
            t.queries,
            t.workers,
            t.wall_ms,
            t.plans_per_sec,
            t.mean_opt_ms,
            t.compliant_fraction,
            t.memo_hit_rate * 100.0,
            t.dp_states_mean,
            t.eta_mean
        );
    }
    let json = optimizer::to_json(&curves, &throughput, SEED);
    match std::fs::write("BENCH_optimizer.json", &json) {
        Ok(()) => println!("  wrote BENCH_optimizer.json"),
        Err(e) => println!("  could not write BENCH_optimizer.json: {e}"),
    }
}

fn grayfail_figure() {
    header("Extension E7: gray links — hedged transfers vs baseline (CR+A, busiest link degraded 6x + 8% loss)");
    println!(
        "  {:6} {:>8} {:>12} {:>11} {:>8} {:>8} {:>11} {:>6} {:>6} {:>6}",
        "query",
        "link",
        "no-hedge ms",
        "hedged ms",
        "speedup",
        "bytes+",
        "hedges",
        "relays",
        "rows=",
        "audit"
    );
    for c in grayfail::grayfail_matrix(SEED, 6.0, 0.08) {
        println!(
            "  {:6} {:>8} {:>12.1} {:>11.1} {:>7.2}x {:>7.1}% {:>5}/{:<5} {:>6} {:>6} {:>6}",
            c.query,
            format!("{}-{}", c.link.0, c.link.1),
            c.nohedge_ms,
            c.hedged_ms,
            c.speedup(),
            c.bytes_overhead() * 100.0,
            c.hedges_won,
            c.hedges_launched,
            c.relays_used,
            if c.rows_match { "yes" } else { "NO" },
            if c.audit_ok { "pass" } else { "FAIL" }
        );
    }

    header("Extension E8: breaker condemnation — re-plan around the gray link (6x degrade, 1-trip budget)");
    println!(
        "  {:6} {:>8} {:>8} {:>8} {:>7} {:>6} {:>10} {:>6} {:>6}",
        "query", "link", "replans", "avoided", "waived", "trips", "sites-excl", "rows=", "audit"
    );
    for c in grayfail::condemnation_matrix(SEED, 6.0) {
        println!(
            "  {:6} {:>8} {:>8} {:>8} {:>7} {:>6} {:>10} {:>6} {:>6}",
            c.query,
            format!("{}-{}", c.link.0, c.link.1),
            c.replans,
            if c.avoided { "yes" } else { "no" },
            if c.waived { "yes" } else { "no" },
            c.breaker_trips,
            c.sites_excluded,
            if c.rows_match { "yes" } else { "NO" },
            if c.audit_ok { "pass" } else { "FAIL" }
        );
    }
}

fn scaleup_figure(kernel_runs: usize) {
    header("Extension E5: sequential vs pipelined runtime (CR+A, simulated WAN ms)");
    println!(
        "  {:6} {:>6} {:>6} {:>12} {:>14} {:>13} {:>8} {:>6}",
        "query", "ships", "rows", "bytes", "sequential ms", "pipelined ms", "speedup", "rows="
    );
    let rows = scaleup::measure(SEED);
    for r in &rows {
        assert_eq!(
            r.bytes_sequential, r.bytes_parallel,
            "{}: runtimes shipped different bytes",
            r.query
        );
        println!(
            "  {:6} {:>6} {:>6} {:>12} {:>14.1} {:>13.1} {:>7.2}x {:>6}",
            r.query,
            r.ship_edges,
            r.rows,
            r.bytes_sequential,
            r.sequential_ms,
            r.parallel_ms,
            r.speedup,
            if r.rows_match { "yes" } else { "NO" }
        );
    }

    header("Extension E9: columnar vs row engine, same plans (real CPU ms, best of 3)");
    println!(
        "  {:6} {:>6} {:>10} {:>13} {:>8} {:>10}",
        "query", "rows", "row ms", "columnar ms", "speedup", "identical"
    );
    for r in &rows {
        println!(
            "  {:6} {:>6} {:>10.2} {:>13.2} {:>7.2}x {:>10}",
            r.query,
            r.rows,
            r.row_cpu_ms,
            r.columnar_cpu_ms,
            r.cpu_speedup(),
            if r.columnar_identical { "yes" } else { "NO" }
        );
    }

    header(&format!(
        "Extension E13: morsel-driven intra-fragment parallelism \
         ({} workers/site, {}-row morsels, modeled end-to-end ms)",
        scaleup::SCALEUP_WORKERS,
        scaleup::SCALEUP_MORSEL_ROWS
    ));
    println!(
        "  {:6} {:>10} {:>12} {:>12} {:>9} {:>10}",
        "query", "makespan", "w=1 ms", "w=4 ms", "speedup", "identical"
    );
    for r in &rows {
        println!(
            "  {:6} {:>9.1}% {:>12.2} {:>12.2} {:>8.2}x {:>10}",
            r.query,
            r.makespan_fraction_w * 100.0,
            r.endtoend_w1_ms(),
            r.endtoend_w_ms(),
            r.intra_speedup(),
            if r.workers_identical { "yes" } else { "NO" }
        );
    }

    header(&format!(
        "Extension E9: kernel microbenchmarks (best of {kernel_runs}, SF 0.01)"
    ));
    println!(
        "  {:14} {:>9} {:>8} {:>10} {:>13} {:>12} {:>12} {:>8} {:>6}",
        "kernel",
        "in rows",
        "out",
        "row ms",
        "columnar ms",
        "row rows/s",
        "col rows/s",
        "speedup",
        "rows="
    );
    let kernel_rows = kernels::measure(SEED, kernel_runs);
    for k in &kernel_rows {
        println!(
            "  {:14} {:>9} {:>8} {:>10.2} {:>13.2} {:>12.0} {:>12.0} {:>7.2}x {:>6}",
            k.kernel,
            k.input_rows,
            k.output_rows,
            k.row_ms,
            k.columnar_ms,
            k.row_rows_per_sec(),
            k.columnar_rows_per_sec(),
            k.speedup(),
            if k.rows_match { "yes" } else { "NO" }
        );
        for m in &k.morsel {
            println!(
                "  {:14} {:>9} workers: makespan {:>5.1}%, modeled {:>8.2} ms, \
                 wall {:>8.2} ms, rows {}",
                "",
                m.workers,
                m.makespan_fraction * 100.0,
                m.modeled_ms,
                m.wall_ms,
                if m.rows_match {
                    "identical"
                } else {
                    "DIVERGED"
                }
            );
        }
    }
    let json = kernels::to_json(&kernel_rows, SEED);
    match std::fs::write("BENCH_kernels.json", &json) {
        Ok(()) => println!("  wrote BENCH_kernels.json"),
        Err(e) => println!("  could not write BENCH_kernels.json: {e}"),
    }
}

fn failover_matrix() {
    header("Extension E4: single-site crashes — compliant failover matrix (CR+A)");
    println!(
        "  {:6} {:>8} {:>14} {:>7}",
        "query", "crashed", "outcome", "faults"
    );
    for cell in failover::crash_matrix(SEED) {
        println!(
            "  {:6} {:>8} {:>14} {:>7}",
            cell.query,
            cell.crashed.to_string(),
            cell.outcome.label(),
            cell.faults
        );
    }

    header("Extension E6: late-crash recovery — checkpoint/resume vs scratch (C)");
    println!(
        "  {:6} {:>8} {:>6} {:>12} {:>12} {:>7} {:>5} {:>6} {:>6}",
        "query", "crashed", "step", "scratch B", "resume B", "ratio", "hits", "rows=", "audit"
    );
    for cell in failover::resume_matrix(SEED) {
        println!(
            "  {:6} {:>8} {:>6} {:>12} {:>12} {:>6.1}% {:>5} {:>6} {:>6}",
            cell.query,
            cell.crashed.to_string(),
            cell.crash_step,
            cell.scratch_recovery_bytes,
            cell.resume_recovery_bytes,
            cell.recovery_ratio() * 100.0,
            cell.checkpoint_hits,
            if cell.rows_match && cell.replans_match {
                "yes"
            } else {
                "NO"
            },
            if cell.audit_ok { "pass" } else { "FAIL" }
        );
    }
}

fn ablations(_quick: bool) {
    header("Extension E1/E2: rejections over delivery-constrained revenue rollups (CR+A, result at L1)");
    println!(
        "  {:24} {:>8} {:>9}",
        "configuration", "planned", "rejected"
    );
    for (name, c) in ablation::rejection_ablation(SEED) {
        println!("  {:24} {:>8} {:>9}", name, c.planned, c.rejected);
    }
    header("Extension E3: total-cost vs response-time site selection (CR+A)");
    println!(
        "  {:6} {:>14} {:>16} {:>10}",
        "query", "total-cost ms", "resp-time ms", "placement"
    );
    for r in ablation::objective_comparison(SEED) {
        println!(
            "  {:6} {:>14.1} {:>16.1} {:>10}",
            r.query,
            r.total_cost_ms,
            r.response_time_ms,
            if r.placements_differ {
                "differs"
            } else {
                "same"
            }
        );
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Table 1: the worked policy-evaluation example.
fn table1() {
    use geoqp_common::{DataType, Field, Location, LocationPattern, Schema, TableRef};
    use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
    use geoqp_plan::PlanBuilder;
    use geoqp_policy::{PolicyCatalog, PolicyExpression, ShipAttrs};

    header("Table 1: policy evaluation on T(A..G)");
    let schema = Schema::new(
        ["a", "b", "c", "d", "e", "f", "g"]
            .iter()
            .map(|n| {
                Field::new(
                    *n,
                    if *n == "c" || *n == "e" {
                        DataType::Str
                    } else if *n == "f" || *n == "g" {
                        DataType::Float64
                    } else {
                        DataType::Int64
                    },
                )
            })
            .collect(),
    )
    .unwrap();
    let t = TableRef::bare("t");
    let locs = |names: &[&str]| LocationPattern::Set(LocationSet::from_iter(names.iter().copied()));
    let mut cat = PolicyCatalog::new();
    let exprs = [
        PolicyExpression::basic(
            t.clone(),
            ShipAttrs::list(["a", "b", "c"]),
            locs(&["l2", "l3"]),
            None,
        ),
        PolicyExpression::basic(
            t.clone(),
            ShipAttrs::list(["a", "b"]),
            locs(&["l1", "l2", "l3", "l4"]),
            None,
        ),
        PolicyExpression::basic(
            t.clone(),
            ShipAttrs::list(["a", "d"]),
            locs(&["l1", "l3"]),
            Some(ScalarExpr::col("b").gt(ScalarExpr::lit(10i64))),
        ),
        PolicyExpression::aggregate(
            t.clone(),
            ShipAttrs::list(["f", "g"]),
            [AggFunc::Sum, AggFunc::Avg],
            ["e".to_string(), "c".to_string()],
            locs(&["l1", "l2"]),
            None,
        ),
    ];
    for e in exprs {
        println!("  e{}: {e}", cat.len() + 1);
        cat.register(e, &schema).unwrap();
    }
    let universe = LocationSet::from_iter(["l1", "l2", "l3", "l4"]);
    let scan = || PlanBuilder::scan(t.clone(), Location::new("l0"), schema.clone());
    let q1 = scan()
        .filter(ScalarExpr::col("b").gt(ScalarExpr::lit(15i64)))
        .unwrap()
        .project_columns(&["a", "c", "d"])
        .unwrap()
        .build();
    let q2 = scan()
        .aggregate(
            &["c"],
            vec![AggCall::new(
                AggFunc::Sum,
                ScalarExpr::col("f").mul(ScalarExpr::lit(1i64).sub(ScalarExpr::col("g"))),
                "s",
            )],
        )
        .unwrap()
        .build();
    let ev = PolicyEvaluator::new(&cat, &universe);
    for (name, q) in [
        ("q1 = Π_{A,C,D}(σ_{B>15}(T))", &q1),
        ("q2 = Γ_{C; SUM(F*(1-G))}(T)", &q2),
    ] {
        let d = describe_local(q).unwrap();
        let result = ev.evaluate(&d);
        println!("  𝒜({name}) = {result}   (η so far: {})", ev.eta());
    }
}

/// Table 2: the TPC-H distribution.
fn table2() {
    header("Table 2: TPC-H table distribution among five locations");
    for (loc, db, tables) in geoqp_tpch::distribution::DISTRIBUTION {
        println!("  {loc}  {db}  {}", tables.join(", "));
    }
}

/// Table 3: the policy-expression snippet, parsed and re-rendered.
fn table3() {
    header("Table 3: snippet of expressions based on TPC-H data");
    let catalog = geoqp_tpch::paper_catalog(10.0);
    let cat = geoqp_tpch::table3_policies(&catalog).unwrap();
    for e in cat.expressions() {
        println!("  e{}: {}", e.id + 1, e.expr);
    }
}

fn fig5a() {
    header("Figure 5(a): QEPs produced by the traditional query optimizer (C / NC)");
    let cells = effectiveness::tpch_matrix(SEED);
    let queries = ["Q2", "Q3", "Q5", "Q8", "Q9", "Q10"];
    println!(
        "  {:8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "set", "Q2", "Q3", "Q5", "Q8", "Q9", "Q10"
    );
    for template in ["T", "C", "CR", "CR+A"] {
        let mut row = format!("  {:8}", template);
        for q in queries {
            let cell = cells
                .iter()
                .find(|c| c.query == q && c.template.name() == template)
                .unwrap();
            row.push_str(&format!(" {:>6}", cell.traditional.label()));
        }
        println!("{row}");
    }
    println!("  (compliant optimizer, same grid:)");
    for template in ["T", "C", "CR", "CR+A"] {
        let mut row = format!("  {:8}", template);
        for q in queries {
            let cell = cells
                .iter()
                .find(|c| c.query == q && c.template.name() == template)
                .unwrap();
            row.push_str(&format!(" {:>6}", cell.compliant.label()));
        }
        println!("{row}");
    }
}

fn fig5bcde() {
    header("Figure 5(b–e): plan excerpts for Q2 (CR) and Q3 (CR+A)");
    for (title, body) in effectiveness::plan_excerpts(SEED) {
        println!("\n  -- {title} --");
        for line in body.lines() {
            println!("  {line}");
        }
    }
}

fn fig6a(n: usize) {
    header("Figure 6(a): effectiveness on ad-hoc queries");
    println!(
        "  {:14} {:>8} {:>12} {:>12}",
        "template", "queries", "traditional", "compliant"
    );
    for r in effectiveness::adhoc_effectiveness(n, SEED) {
        println!(
            "  {:14} {:>8} {:>12.2} {:>12.2}",
            format!("{}({})", r.template.name(), r.expressions),
            r.queries,
            r.traditional_fraction,
            r.compliant_fraction
        );
    }
}

fn fig6_overhead(id: &str, case: OverheadCase, runs: usize) {
    header(&format!(
        "Figure {id}: optimization time, {} (avg of {runs} runs, ms)",
        case.label()
    ));
    println!(
        "  {:6} {:>14} {:>14} {:>8} {:>8}",
        "query", "traditional", "compliant", "ratio", "η"
    );
    for r in overhead::measure(case, runs, SEED) {
        println!(
            "  {:6} {:>9.2}±{:<4.2} {:>9.2}±{:<4.2} {:>8.2} {:>8}",
            r.query,
            r.traditional.mean_ms,
            r.traditional.stderr_ms,
            r.compliant.mean_ms,
            r.compliant.stderr_ms,
            r.compliant.mean_ms / r.traditional.mean_ms.max(1e-9),
            r.eta
        );
    }
}

fn fig6_quality(id: &str, template: PolicyTemplate, quick: bool) {
    let sf = if quick { 0.002 } else { 0.01 };
    header(&format!(
        "Figure {id}: scaled execution (shipping) cost, {} set, SF {sf}",
        template.name()
    ));
    println!(
        "  {:6} {:>6} {:>14} {:>14} {:>8} {:>6}",
        "query", "trad", "trad cost ms", "compl cost ms", "scaled", "plan"
    );
    for r in quality::measure(template, sf, SEED) {
        println!(
            "  {:6} {:>6} {:>14.1} {:>14.1} {:>8.2} {:>6}",
            r.query,
            if r.traditional_compliant { "C" } else { "NC" },
            r.traditional_cost_ms,
            r.compliant_cost_ms,
            r.scaled,
            if r.same_plan { "=" } else { "≠" }
        );
    }
}

fn fig7abc(runs: usize) {
    header("Figure 7(a–c): optimization time vs #policy expressions (CR+A)");
    for q in ["Q2", "Q3", "Q10"] {
        println!("  {q}:");
        println!("    {:>6} {:>12} {:>8}", "#expr", "time ms", "η");
        for p in scalability::expression_sweep(q, runs, SEED) {
            println!("    {:>6} {:>12.2} {:>8}", p.x, p.mean_ms, p.eta);
        }
    }
}

fn fig7de(runs: usize) {
    header("Figure 7(d–e): optimization time vs #table locations (CR+A)");
    for q in ["Q3", "Q10"] {
        println!("  {q}:");
        println!("    {:>6} {:>12} {:>14}", "#locs", "time ms", "site-sel ms");
        for p in scalability::location_sweep(q, runs, SEED) {
            println!("    {:>6} {:>12.2} {:>14.3}", p.x, p.mean_ms, p.phase2_ms);
        }
    }
}

fn fig8ab(runs: usize) {
    header("Figure 8(a–b): optimization time vs #to-locations per expression");
    for q in ["Q2", "Q3"] {
        println!("  {q}:");
        println!("    {:>6} {:>12} {:>14}", "#locs", "time ms", "site-sel ms");
        for p in scalability::to_location_sweep(q, runs) {
            println!("    {:>6} {:>12.2} {:>14.3}", p.x, p.mean_ms, p.phase2_ms);
        }
    }
}
