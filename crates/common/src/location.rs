//! Geographic / institutional locations and sets thereof.
//!
//! Locations are the carriers of the paper's compliance machinery: each table
//! lives at a location, each policy expression names *to*-locations, and the
//! optimizer derives per-operator **execution traits** and **shipping
//! traits** as sets of locations (Section 6.1).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A single geo-distributed site ("Europe", "L3", "db-asia", ...).
///
/// Cheap to clone (reference-counted name) and totally ordered so that it can
/// live in the sorted sets used for trait computations.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location(Arc<str>);

impl Location {
    /// Create a location from its name.
    pub fn new(name: impl AsRef<str>) -> Location {
        Location(Arc::from(name.as_ref()))
    }

    /// The location's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Location {
    fn from(s: &str) -> Location {
        Location::new(s)
    }
}

impl From<String> for Location {
    fn from(s: String) -> Location {
        Location::new(s)
    }
}

/// An ordered set of locations.
///
/// Used for execution traits `ℰ_n`, shipping traits `𝒮_n`, per-attribute
/// legal-location sets `L_a` in Algorithm 1, and policy *to*-lists. The
/// set operations here are exactly the ones whose cost the paper's Figure 8
/// experiment measures, so they are implemented directly over sorted sets
/// rather than hidden behind bitmap interning.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LocationSet(BTreeSet<Location>);

impl LocationSet {
    /// The empty set.
    pub fn new() -> LocationSet {
        LocationSet(BTreeSet::new())
    }

    /// A singleton set.
    pub fn singleton(l: Location) -> LocationSet {
        let mut s = BTreeSet::new();
        s.insert(l);
        LocationSet(s)
    }

    /// Build from anything yielding locations.
    ///
    /// Unlike `FromIterator::from_iter`, this also accepts `&str` items.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, L>(iter: I) -> LocationSet
    where
        I: IntoIterator<Item = L>,
        L: Into<Location>,
    {
        LocationSet(iter.into_iter().map(Into::into).collect())
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty — an empty execution trait means "cannot be legally
    /// executed anywhere", which the compliance cost function prices at ∞.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, l: &Location) -> bool {
        self.0.contains(l)
    }

    /// Insert a location; returns true if newly added.
    pub fn insert(&mut self, l: Location) -> bool {
        self.0.insert(l)
    }

    /// Set intersection (used by annotation rule AR2 and Algorithm 1's final
    /// per-attribute intersection).
    pub fn intersect(&self, other: &LocationSet) -> LocationSet {
        LocationSet(self.0.intersection(&other.0).cloned().collect())
    }

    /// Set union (used by annotation rules AR3/AR4 and Algorithm 1's
    /// per-attribute accumulation).
    pub fn union(&self, other: &LocationSet) -> LocationSet {
        LocationSet(self.0.union(&other.0).cloned().collect())
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &LocationSet) {
        for l in &other.0 {
            self.0.insert(l.clone());
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &LocationSet) {
        self.0.retain(|l| other.contains(l));
    }

    /// Subset test.
    pub fn is_subset(&self, other: &LocationSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// True when superset of `other`.
    pub fn is_superset(&self, other: &LocationSet) -> bool {
        self.0.is_superset(&other.0)
    }

    /// Iterate in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Location> {
        self.0.iter()
    }

    /// An arbitrary (smallest) element, if any.
    pub fn first(&self) -> Option<&Location> {
        self.0.iter().next()
    }
}

impl FromIterator<Location> for LocationSet {
    fn from_iter<I: IntoIterator<Item = Location>>(iter: I) -> LocationSet {
        LocationSet(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a LocationSet {
    type Item = &'a Location;
    type IntoIter = std::collections::btree_set::Iter<'a, Location>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for LocationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// A location list as written in a policy expression's `to` clause:
/// either `*` ("all known locations") or an explicit list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocationPattern {
    /// `to *`: every location registered in the deployment.
    Star,
    /// `to l1, l2, ...`: exactly these locations.
    Set(LocationSet),
}

impl LocationPattern {
    /// Resolve the pattern against the deployment's universe of locations.
    pub fn resolve(&self, universe: &LocationSet) -> LocationSet {
        match self {
            LocationPattern::Star => universe.clone(),
            LocationPattern::Set(s) => s.clone(),
        }
    }

    /// Membership under a given universe.
    pub fn allows(&self, l: &Location, universe: &LocationSet) -> bool {
        match self {
            LocationPattern::Star => universe.contains(l),
            LocationPattern::Set(s) => s.contains(l),
        }
    }
}

impl fmt::Display for LocationPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocationPattern::Star => f.write_str("*"),
            LocationPattern::Set(s) => {
                let names: Vec<_> = s.iter().map(Location::name).collect();
                f.write_str(&names.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(names: &[&str]) -> LocationSet {
        LocationSet::from_iter(names.iter().copied())
    }

    #[test]
    fn basic_ops() {
        let eu_asia = set(&["Europe", "Asia"]);
        let asia_na = set(&["Asia", "NorthAmerica"]);
        assert_eq!(eu_asia.intersect(&asia_na), set(&["Asia"]));
        assert_eq!(
            eu_asia.union(&asia_na),
            set(&["Europe", "Asia", "NorthAmerica"])
        );
        assert!(eu_asia.contains(&Location::new("Europe")));
        assert!(!eu_asia.contains(&Location::new("NorthAmerica")));
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let a = set(&["x", "y", "z"]);
        let b = set(&["y", "z", "w"]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.intersect(&b));
    }

    #[test]
    fn empty_set_semantics() {
        let empty = LocationSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.intersect(&set(&["a"])), empty);
        assert_eq!(empty.union(&set(&["a"])), set(&["a"]));
    }

    #[test]
    fn subset_relations() {
        assert!(set(&["a"]).is_subset(&set(&["a", "b"])));
        assert!(set(&["a", "b"]).is_superset(&set(&["a"])));
        assert!(LocationSet::new().is_subset(&LocationSet::new()));
    }

    #[test]
    fn star_pattern_resolves_to_universe() {
        let universe = set(&["L1", "L2", "L3"]);
        assert_eq!(LocationPattern::Star.resolve(&universe), universe);
        let explicit = LocationPattern::Set(set(&["L2"]));
        assert_eq!(explicit.resolve(&universe), set(&["L2"]));
        assert!(LocationPattern::Star.allows(&Location::new("L1"), &universe));
        assert!(!LocationPattern::Star.allows(&Location::new("L9"), &universe));
    }

    #[test]
    fn display_is_sorted() {
        assert_eq!(set(&["b", "a"]).to_string(), "{a, b}");
        assert_eq!(LocationPattern::Star.to_string(), "*");
    }

    #[test]
    fn ordering_is_stable_for_iteration() {
        let s = set(&["L3", "L1", "L2"]);
        let names: Vec<_> = s.iter().map(Location::name).collect();
        assert_eq!(names, vec!["L1", "L2", "L3"]);
    }
}
