//! Relational schemas.

use crate::error::{GeoError, Result};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name. TPC-H-style prefixed names (`c_custkey`, `o_orderkey`)
    /// keep names unique across joins; the plan builder rejects duplicate
    /// names when combining schemas.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)
    }
}

/// An ordered collection of fields. Shared by reference throughout plans.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Schemas are shared widely across plan nodes; `SchemaRef` keeps that cheap.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(GeoError::Plan(format!(
                    "duplicate column name `{}` in schema",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Build a schema without the duplicate check (for internal composition
    /// where uniqueness was already established).
    pub fn new_unchecked(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// The empty schema.
    pub fn empty() -> Schema {
        Schema { fields: Vec::new() }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field with a given name.
    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// The field at an index.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index lookup that surfaces a planning error when missing.
    pub fn require_index(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            GeoError::Plan(format!(
                "unknown column `{}`; available: [{}]",
                name,
                self.fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Concatenate two schemas (join output), rejecting name collisions.
    pub fn join(&self, other: &Schema) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// A schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let f = self
                .field_by_name(n)
                .ok_or_else(|| GeoError::Plan(format!("unknown column `{n}` in projection")))?;
            fields.push(f.clone());
        }
        Schema::new(fields)
    }

    /// All column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Estimated serialized row width in bytes, for cost estimation
    /// (strings priced at an average payload of 16 bytes).
    pub fn estimated_row_width(&self) -> usize {
        self.fields
            .iter()
            .map(|f| match f.data_type {
                DataType::Bool => 2,
                DataType::Int64 => 9,
                DataType::Float64 => 9,
                DataType::Date => 5,
                DataType::Str => 21,
            })
            .sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn lookup_by_name() {
        let s = abc();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zz"), None);
        assert_eq!(s.require_index("c").unwrap(), 2);
        assert!(s.require_index("zz").is_err());
    }

    #[test]
    fn join_concatenates_and_detects_collisions() {
        let s = abc();
        let t = Schema::new(vec![Field::new("d", DataType::Date)]).unwrap();
        let j = s.join(&t).unwrap();
        assert_eq!(j.names(), vec!["a", "b", "c", "d"]);
        assert!(s.join(&abc()).is_err());
    }

    #[test]
    fn projection_preserves_order_given() {
        let s = abc();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert_eq!(p.field(0).data_type, DataType::Float64);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn row_width_estimate() {
        let s = abc();
        assert_eq!(s.estimated_row_width(), 9 + 21 + 9);
    }

    #[test]
    fn display_format() {
        let s = Schema::new(vec![Field::new("x", DataType::Bool)]).unwrap();
        assert_eq!(s.to_string(), "(x BOOLEAN)");
    }
}
