//! Workspace-wide error type.
//!
//! All crates in the workspace surface failures through [`GeoError`]. The
//! variants mirror the pipeline stages of the paper's architecture (Figure 2):
//! parsing, planning, policy handling, optimization, site selection, and
//! execution. The [`GeoError::QueryRejected`] variant corresponds to the
//! optimizer's *reject* outcome — a query for which no compliant execution
//! plan exists in the explored search space.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T, E = GeoError> = std::result::Result<T, E>;

/// The error type shared by every `geoqp` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// Lexing or parsing a SQL query or policy expression failed.
    Parse(String),
    /// Building or validating a logical plan failed (unknown column, type
    /// mismatch, ambiguous name, ...).
    Plan(String),
    /// A policy expression is malformed or references unknown schema objects.
    Policy(String),
    /// The optimizer failed internally (exhausted budget, broken invariant).
    Optimize(String),
    /// The optimizer proved that no compliant plan exists in its search space
    /// and rejected the query (Section 6.2: "otherwise, it rejects the
    /// query").
    QueryRejected(String),
    /// A storage-layer failure (unknown table/database, arity mismatch).
    Storage(String),
    /// A runtime failure while executing a physical plan.
    Execution(String),
    /// A compliance audit found a dataflow-policy violation in a plan
    /// (used by the Definition-1 checker, never by the compliant optimizer
    /// itself — see Theorem 1).
    NonCompliant(String),
    /// The feature is out of the supported dialect/algebra subset.
    Unsupported(String),
}

impl GeoError {
    /// Short machine-readable category label, handy for test assertions and
    /// experiment summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            GeoError::Parse(_) => "parse",
            GeoError::Plan(_) => "plan",
            GeoError::Policy(_) => "policy",
            GeoError::Optimize(_) => "optimize",
            GeoError::QueryRejected(_) => "rejected",
            GeoError::Storage(_) => "storage",
            GeoError::Execution(_) => "execution",
            GeoError::NonCompliant(_) => "non-compliant",
            GeoError::Unsupported(_) => "unsupported",
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            GeoError::Parse(m)
            | GeoError::Plan(m)
            | GeoError::Policy(m)
            | GeoError::Optimize(m)
            | GeoError::QueryRejected(m)
            | GeoError::Storage(m)
            | GeoError::Execution(m)
            | GeoError::NonCompliant(m)
            | GeoError::Unsupported(m) => m,
        }
    }
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = GeoError::QueryRejected("no compliant plan for Q5".into());
        assert_eq!(e.to_string(), "rejected error: no compliant plan for Q5");
        assert_eq!(e.kind(), "rejected");
        assert_eq!(e.message(), "no compliant plan for Q5");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GeoError::Parse("x".into()),
            GeoError::Parse("x".into())
        );
        assert_ne!(
            GeoError::Parse("x".into()),
            GeoError::Plan("x".into())
        );
    }

    #[test]
    fn every_variant_has_a_distinct_kind() {
        let variants = [
            GeoError::Parse(String::new()),
            GeoError::Plan(String::new()),
            GeoError::Policy(String::new()),
            GeoError::Optimize(String::new()),
            GeoError::QueryRejected(String::new()),
            GeoError::Storage(String::new()),
            GeoError::Execution(String::new()),
            GeoError::NonCompliant(String::new()),
            GeoError::Unsupported(String::new()),
        ];
        let mut kinds: Vec<_> = variants.iter().map(|v| v.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), variants.len());
    }
}
