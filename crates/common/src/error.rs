//! Workspace-wide error type.
//!
//! All crates in the workspace surface failures through [`GeoError`]. The
//! variants mirror the pipeline stages of the paper's architecture (Figure 2):
//! parsing, planning, policy handling, optimization, site selection, and
//! execution. The [`GeoError::QueryRejected`] variant corresponds to the
//! optimizer's *reject* outcome — a query for which no compliant execution
//! plan exists in the explored search space.

use crate::location::Location;
use std::fmt;

/// Workspace-wide result alias.
pub type Result<T, E = GeoError> = std::result::Result<T, E>;

/// Details of a site/link availability failure — the typed payload of
/// [`GeoError::SiteUnavailable`]. Produced by the fault-injecting network
/// simulator and consumed by the engine's failover re-planner, which needs
/// to know *which* site to exclude from the execution traits and whether
/// retrying could help at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unavailable {
    /// The site that should be excluded from execution traits when
    /// re-planning (for link failures: the unreachable destination).
    pub site: Option<Location>,
    /// The failing link, when the failure was observed on a transfer.
    pub link: Option<(Location, Location)>,
    /// Whether the failure is transient (a retry with backoff may
    /// succeed) or permanent (the site is down; re-plan around it).
    pub transient: bool,
    /// Whether this is a *soft* exclusion raised by a circuit breaker
    /// that exhausted its open budget on a gray link: both endpoints are
    /// alive, so the re-planner must avoid the **link** (price it at ∞),
    /// not exclude a site.
    pub breaker: bool,
    /// Human-readable description.
    pub message: String,
}

impl Unavailable {
    /// Availability failure of a whole site (crash window).
    pub fn site_down(site: Location, message: impl Into<String>) -> Unavailable {
        Unavailable {
            site: Some(site),
            link: None,
            transient: false,
            breaker: false,
            message: message.into(),
        }
    }

    /// Availability failure of one link; the destination is what the
    /// re-planner excludes if the failure persists.
    pub fn link_down(
        from: Location,
        to: Location,
        transient: bool,
        message: impl Into<String>,
    ) -> Unavailable {
        Unavailable {
            site: Some(to.clone()),
            link: Some((from, to)),
            transient,
            breaker: false,
            message: message.into(),
        }
    }

    /// A circuit breaker condemned a gray link: both endpoints are up,
    /// so no site is named — the re-planner routes around the link by
    /// cost instead of excluding an execution site.
    pub fn breaker_open(from: Location, to: Location, message: impl Into<String>) -> Unavailable {
        Unavailable {
            site: None,
            link: Some((from, to)),
            transient: false,
            breaker: true,
            message: message.into(),
        }
    }
}

/// Details of a mid-flight policy-churn abort — the typed payload of
/// [`GeoError::PolicyChurn`]. Raised by an executor whose per-batch epoch
/// re-check saw a revocation newer than the query's pinned catalog
/// sequence; carries the head the executor observed so the failover
/// re-planner knows which snapshot to re-pin against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnAbort {
    /// Catalog-log sequence number of the revocation that landed.
    pub seq: u64,
    /// The deterministic epoch that sequence hashes to.
    pub epoch: u64,
    /// The executor step at which the abort fired. The grant-retry path
    /// replays the churn signal at this step, so which planned grants are
    /// visible to a refused query is as deterministic as the abort itself.
    pub step: u64,
    /// Human-readable description.
    pub message: String,
}

/// Details of a stale-replica refusal — the typed payload of
/// [`GeoError::CatalogStale`]. Names the site whose catalog replica could
/// not prove freshness, so operators (and the `\catalog` health view) see
/// *which* replica is lagging, and whether the lag can ever clear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleReplica {
    /// The site whose replica failed the freshness proof.
    pub site: Location,
    /// The pinned catalog sequence the replica could not prove.
    pub seq: u64,
    /// The pinned epoch at that sequence.
    pub epoch: u64,
    /// Whether the replica's lag is unbounded: the site is permanently
    /// partitioned or crashed on the catalog plane, so no amount of
    /// waiting or retrying will make it fresh — re-plan around it.
    pub unbounded: bool,
    /// Human-readable description.
    pub message: String,
}

/// The error type shared by every `geoqp` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// Lexing or parsing a SQL query or policy expression failed.
    Parse(String),
    /// Building or validating a logical plan failed (unknown column, type
    /// mismatch, ambiguous name, ...).
    Plan(String),
    /// A policy expression is malformed or references unknown schema objects.
    Policy(String),
    /// The optimizer failed internally (exhausted budget, broken invariant).
    Optimize(String),
    /// The optimizer proved that no compliant plan exists in its search space
    /// and rejected the query (Section 6.2: "otherwise, it rejects the
    /// query").
    QueryRejected(String),
    /// A storage-layer failure (unknown table/database, arity mismatch).
    Storage(String),
    /// A runtime failure while executing a physical plan.
    Execution(String),
    /// A compliance audit found a dataflow-policy violation in a plan
    /// (used by the Definition-1 checker, never by the compliant optimizer
    /// itself — see Theorem 1).
    NonCompliant(String),
    /// The feature is out of the supported dialect/algebra subset.
    Unsupported(String),
    /// A site or link was unavailable while executing a distributed plan
    /// (injected fault or outage). Carries the failed site/link and
    /// whether the failure is transient, so the engine's failover path
    /// can decide between retrying and compliant re-planning.
    SiteUnavailable(Unavailable),
    /// The query ran past its [`QueryDeadline`](crate::QueryDeadline)
    /// budget (simulated clock) and was unwound cooperatively. Not
    /// transient and carries no failed site: the failover re-planner
    /// must not treat an over-budget query as a crashed site.
    DeadlineExceeded(String),
    /// The query was aborted through a [`CancelToken`](crate::CancelToken)
    /// and every worker unwound cooperatively.
    Cancelled(String),
    /// The multi-tenant query service refused to enqueue the query: the
    /// tenant's admission budget (max in-flight plus bounded queue) is
    /// exhausted. Nothing about the query itself is wrong — resubmitting
    /// once the tenant's backlog drains may succeed.
    Admission(String),
    /// A policy revocation landed while the query was in flight and a
    /// runtime fragment's per-batch epoch re-check caught it before the
    /// next transfer left. The resilient loop re-pins to the carried head
    /// and re-plans; anything else must surface this typed, never ship
    /// under the revoked catalog.
    PolicyChurn(ChurnAbort),
    /// A site's catalog replica could not prove it has applied the epoch
    /// the coordinator pinned for this query (replication lag, catalog
    /// partition, or a crashed replica). The site fails safe: it refuses
    /// to originate the transfer rather than audit against old policy.
    /// The payload names the lagging site and whether its lag is
    /// unbounded (permanent catalog-plane partition or crash).
    CatalogStale(StaleReplica),
    /// A catalog read named a log sequence older than the compaction
    /// floor: the prefix was snapshotted and truncated, so the exact
    /// state at that sequence is no longer reconstructible anywhere.
    /// Callers holding such a pin must re-pin forward, never guess.
    CatalogCompacted(String),
}

impl GeoError {
    /// Short machine-readable category label, handy for test assertions and
    /// experiment summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            GeoError::Parse(_) => "parse",
            GeoError::Plan(_) => "plan",
            GeoError::Policy(_) => "policy",
            GeoError::Optimize(_) => "optimize",
            GeoError::QueryRejected(_) => "rejected",
            GeoError::Storage(_) => "storage",
            GeoError::Execution(_) => "execution",
            GeoError::NonCompliant(_) => "non-compliant",
            GeoError::Unsupported(_) => "unsupported",
            GeoError::SiteUnavailable(_) => "unavailable",
            GeoError::DeadlineExceeded(_) => "deadline",
            GeoError::Cancelled(_) => "cancelled",
            GeoError::Admission(_) => "admission",
            GeoError::PolicyChurn(_) => "churn",
            GeoError::CatalogStale(_) => "catalog-stale",
            GeoError::CatalogCompacted(_) => "catalog-compacted",
        }
    }

    /// Convenience constructor for a mid-flight revocation abort at
    /// executor step `step`.
    pub fn policy_churn(seq: u64, epoch: u64, step: u64, message: impl Into<String>) -> GeoError {
        GeoError::PolicyChurn(ChurnAbort {
            seq,
            epoch,
            step,
            message: message.into(),
        })
    }

    /// Convenience constructor for a stale-replica refusal.
    pub fn catalog_stale(
        site: Location,
        seq: u64,
        epoch: u64,
        unbounded: bool,
        message: impl Into<String>,
    ) -> GeoError {
        GeoError::CatalogStale(StaleReplica {
            site,
            seq,
            epoch,
            unbounded,
            message: message.into(),
        })
    }

    /// The catalog head a mid-flight revocation abort observed, if this
    /// error is one: `(seq, epoch)` of the newest revocation entry.
    pub fn churn_head(&self) -> Option<(u64, u64)> {
        match self {
            GeoError::PolicyChurn(c) => Some((c.seq, c.epoch)),
            _ => None,
        }
    }

    /// The executor step a mid-flight revocation abort fired at, if this
    /// error is one.
    pub fn churn_step(&self) -> Option<u64> {
        match self {
            GeoError::PolicyChurn(c) => Some(c.step),
            _ => None,
        }
    }

    /// The lagging site a stale-replica refusal names, if this error is
    /// one, along with whether its lag is unbounded.
    pub fn stale_site(&self) -> Option<(&Location, bool)> {
        match self {
            GeoError::CatalogStale(s) => Some((&s.site, s.unbounded)),
            _ => None,
        }
    }

    /// Convenience constructor for a crashed-site error.
    pub fn site_down(site: Location, message: impl Into<String>) -> GeoError {
        GeoError::SiteUnavailable(Unavailable::site_down(site, message))
    }

    /// Convenience constructor for a failed-link error.
    pub fn link_down(
        from: Location,
        to: Location,
        transient: bool,
        message: impl Into<String>,
    ) -> GeoError {
        GeoError::SiteUnavailable(Unavailable::link_down(from, to, transient, message))
    }

    /// Convenience constructor for a breaker-condemned gray link.
    pub fn breaker_open(from: Location, to: Location, message: impl Into<String>) -> GeoError {
        GeoError::SiteUnavailable(Unavailable::breaker_open(from, to, message))
    }

    /// Whether retrying (with backoff) may clear this error.
    pub fn is_transient(&self) -> bool {
        matches!(self, GeoError::SiteUnavailable(u) if u.transient)
    }

    /// The gray link a circuit breaker condemned, if this error is a
    /// breaker-raised soft exclusion. `None` for every hard availability
    /// failure, so replan-by-site and replan-by-link never mix.
    pub fn breaker_link(&self) -> Option<(&Location, &Location)> {
        match self {
            GeoError::SiteUnavailable(u) if u.breaker => u.link.as_ref().map(|(a, b)| (a, b)),
            _ => None,
        }
    }

    /// The site an availability failure points at, if any.
    pub fn failed_site(&self) -> Option<&Location> {
        match self {
            GeoError::SiteUnavailable(u) => u.site.as_ref(),
            _ => None,
        }
    }

    /// The link an availability failure was observed on, if any.
    pub fn failed_link(&self) -> Option<(&Location, &Location)> {
        match self {
            GeoError::SiteUnavailable(u) => u.link.as_ref().map(|(a, b)| (a, b)),
            _ => None,
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            GeoError::Parse(m)
            | GeoError::Plan(m)
            | GeoError::Policy(m)
            | GeoError::Optimize(m)
            | GeoError::QueryRejected(m)
            | GeoError::Storage(m)
            | GeoError::Execution(m)
            | GeoError::NonCompliant(m)
            | GeoError::Unsupported(m)
            | GeoError::DeadlineExceeded(m)
            | GeoError::Cancelled(m)
            | GeoError::Admission(m)
            | GeoError::CatalogCompacted(m) => m,
            GeoError::SiteUnavailable(u) => &u.message,
            GeoError::PolicyChurn(c) => &c.message,
            GeoError::CatalogStale(s) => &s.message,
        }
    }
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = GeoError::QueryRejected("no compliant plan for Q5".into());
        assert_eq!(e.to_string(), "rejected error: no compliant plan for Q5");
        assert_eq!(e.kind(), "rejected");
        assert_eq!(e.message(), "no compliant plan for Q5");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GeoError::Parse("x".into()), GeoError::Parse("x".into()));
        assert_ne!(GeoError::Parse("x".into()), GeoError::Plan("x".into()));
    }

    #[test]
    fn every_variant_has_a_distinct_kind() {
        let variants = [
            GeoError::Parse(String::new()),
            GeoError::Plan(String::new()),
            GeoError::Policy(String::new()),
            GeoError::Optimize(String::new()),
            GeoError::QueryRejected(String::new()),
            GeoError::Storage(String::new()),
            GeoError::Execution(String::new()),
            GeoError::NonCompliant(String::new()),
            GeoError::Unsupported(String::new()),
            GeoError::SiteUnavailable(Unavailable::site_down(Location::new("L1"), String::new())),
            GeoError::DeadlineExceeded(String::new()),
            GeoError::Cancelled(String::new()),
            GeoError::Admission(String::new()),
            GeoError::policy_churn(0, 0, 0, String::new()),
            GeoError::catalog_stale(Location::new("L1"), 0, 0, false, String::new()),
            GeoError::CatalogCompacted(String::new()),
        ];
        let mut kinds: Vec<_> = variants.iter().map(|v| v.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), variants.len());
    }

    #[test]
    fn unavailable_carries_site_link_and_transience() {
        let crash = GeoError::site_down(Location::new("L2"), "L2 crashed");
        assert_eq!(crash.kind(), "unavailable");
        assert!(!crash.is_transient());
        assert_eq!(crash.failed_site(), Some(&Location::new("L2")));
        assert_eq!(crash.failed_link(), None);
        assert_eq!(crash.message(), "L2 crashed");

        let drop = GeoError::link_down(
            Location::new("L1"),
            Location::new("L3"),
            true,
            "L1->L3 dropped",
        );
        assert!(drop.is_transient());
        assert_eq!(
            drop.failed_link(),
            Some((&Location::new("L1"), &Location::new("L3")))
        );
        // For a link failure, the excluded site is the destination.
        assert_eq!(drop.failed_site(), Some(&Location::new("L3")));
    }

    #[test]
    fn non_availability_errors_have_no_fault_details() {
        let e = GeoError::Execution("boom".into());
        assert!(!e.is_transient());
        assert_eq!(e.failed_site(), None);
        assert_eq!(e.failed_link(), None);
    }

    /// A breaker condemnation names the gray link but no site — both
    /// endpoints are alive, so the re-planner must route around the link
    /// instead of excluding an execution site.
    #[test]
    fn breaker_open_names_the_link_but_no_site() {
        let e = GeoError::breaker_open(
            Location::new("L1"),
            Location::new("L4"),
            "breaker open past budget",
        );
        assert_eq!(e.kind(), "unavailable");
        assert!(!e.is_transient());
        assert_eq!(e.failed_site(), None);
        assert_eq!(
            e.breaker_link(),
            Some((&Location::new("L1"), &Location::new("L4")))
        );
        // Hard link failures are never breaker links.
        let hard = GeoError::link_down(Location::new("L1"), Location::new("L4"), true, "drop");
        assert_eq!(hard.breaker_link(), None);
    }

    /// A churn abort carries the catalog head the executor observed and
    /// names no failed site: the failover loop must re-pin and re-plan,
    /// never exclude a healthy site.
    #[test]
    fn policy_churn_carries_the_observed_head_and_step() {
        let e = GeoError::policy_churn(3, 0xdead_beef, 7, "revocation landed at seq 3");
        assert_eq!(e.kind(), "churn");
        assert_eq!(e.churn_head(), Some((3, 0xdead_beef)));
        assert_eq!(e.churn_step(), Some(7));
        assert_eq!(e.failed_site(), None);
        assert!(!e.is_transient());
        assert_eq!(e.message(), "revocation landed at seq 3");
        let stale = GeoError::catalog_stale(Location::new("L2"), 1, 0, false, String::new());
        assert_eq!(stale.churn_head(), None);
        assert_eq!(stale.churn_step(), None);
    }

    /// A stale-replica refusal names the lagging site and whether the lag
    /// can ever clear, so the failover layer can distinguish "wait for
    /// replication" from "route around a severed replica".
    #[test]
    fn catalog_stale_names_the_lagging_site() {
        let e = GeoError::catalog_stale(Location::new("L3"), 4, 0xfeed, true, "L3 severed");
        assert_eq!(e.kind(), "catalog-stale");
        assert_eq!(e.stale_site(), Some((&Location::new("L3"), true)));
        assert_eq!(e.failed_site(), None, "stale is not a crashed site");
        assert_eq!(e.message(), "L3 severed");
        assert_eq!(GeoError::Execution("boom".into()).stale_site(), None);
    }

    /// A compacted-prefix read is typed, never a panic or a silent head
    /// answer — callers holding pre-floor pins must re-pin forward.
    #[test]
    fn compacted_reads_are_typed() {
        let e = GeoError::CatalogCompacted("seq 2 is below the floor at seq 5".into());
        assert_eq!(e.kind(), "catalog-compacted");
        assert!(!e.is_transient());
        assert_eq!(e.failed_site(), None);
    }

    /// Deadline and cancellation must never look like a crashed site:
    /// the failover re-planner keys on `failed_site`, and re-planning an
    /// over-budget query would just burn more budget.
    #[test]
    fn deadline_and_cancellation_do_not_trigger_failover() {
        for e in [
            GeoError::DeadlineExceeded("over budget".into()),
            GeoError::Cancelled("aborted".into()),
            GeoError::Admission("tenant backlog full".into()),
            GeoError::catalog_stale(
                Location::new("L2"),
                3,
                0,
                false,
                "replica behind pinned epoch",
            ),
        ] {
            assert!(!e.is_transient());
            assert_eq!(e.failed_site(), None);
            assert_eq!(e.failed_link(), None);
        }
    }
}
