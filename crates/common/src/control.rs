//! Cooperative query control: cancellation tokens and simulated-clock
//! deadlines.
//!
//! Both engines (the sequential interpreter and the pipelined runtime)
//! consult a [`RunControl`] at **batch granularity**: before every scan,
//! every shipped batch, and every exchange fetch. A query past its
//! [`QueryDeadline`] budget — or one whose [`CancelToken`] was fired —
//! unwinds every fragment worker with a typed
//! [`GeoError::DeadlineExceeded`] / [`GeoError::Cancelled`] instead of
//! running on. Deadlines are measured against the *simulated* network
//! clock (the same `α + β·b` cost model the optimizer prices plans
//! with), so deadline verdicts are deterministic and replayable — they
//! never depend on wall-clock scheduling.

use crate::error::{GeoError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, cloneable abort flag. Cloning shares the flag: firing any
/// clone cancels every worker holding one. Workers poll it between
/// batches (`check`), so cancellation is cooperative — no thread is ever
/// killed, every fragment worker joins cleanly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Re-arm the token so the next query can run. Only meaningful once
    /// the cancelled query has fully unwound.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Typed check: `Err(GeoError::Cancelled)` naming `what` if the token
    /// has fired.
    pub fn check(&self, what: &str) -> Result<()> {
        if self.is_cancelled() {
            Err(GeoError::Cancelled(format!(
                "query cancelled before {what}"
            )))
        } else {
            Ok(())
        }
    }
}

/// A completion-time budget in simulated milliseconds. The budget covers
/// the whole resilient execution — retries, backoff, and failover
/// re-plans all spend from the same clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryDeadline {
    /// Total simulated milliseconds the query may spend.
    pub budget_ms: f64,
}

impl QueryDeadline {
    /// A deadline of `budget_ms` simulated milliseconds.
    pub fn new(budget_ms: f64) -> QueryDeadline {
        QueryDeadline { budget_ms }
    }

    /// Typed check: `Err(GeoError::DeadlineExceeded)` if `spent_ms` of
    /// simulated time has already run past the budget.
    pub fn check(&self, spent_ms: f64, what: &str) -> Result<()> {
        if spent_ms > self.budget_ms {
            Err(GeoError::DeadlineExceeded(format!(
                "{what} at {spent_ms:.1} ms exceeds the {:.1} ms query budget",
                self.budget_ms
            )))
        } else {
            Ok(())
        }
    }
}

/// The control surface threaded through an execution attempt: an
/// optional cancel token, an optional deadline, and the simulated
/// milliseconds already spent by *earlier* attempts of the same
/// resilient query (so a failover re-plan cannot reset the clock).
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Cooperative abort flag, if the caller wants one.
    pub cancel: Option<CancelToken>,
    /// Completion-time budget, if the caller set one.
    pub deadline: Option<QueryDeadline>,
    /// Simulated ms spent before this attempt started.
    pub base_ms: f64,
}

impl RunControl {
    /// A control surface with neither token nor deadline (never trips).
    pub fn unlimited() -> RunControl {
        RunControl::default()
    }

    /// Poll the cancel token, if any.
    pub fn check_cancel(&self, what: &str) -> Result<()> {
        match &self.cancel {
            Some(token) => token.check(what),
            None => Ok(()),
        }
    }

    /// Check `attempt_ms` of this attempt's simulated time (plus the
    /// base spent by earlier attempts) against the deadline, if any.
    pub fn check_deadline(&self, attempt_ms: f64, what: &str) -> Result<()> {
        match self.deadline {
            Some(d) => d.check(self.base_ms + attempt_ms, what),
            None => Ok(()),
        }
    }

    /// Both checks, cancellation first.
    pub fn check(&self, attempt_ms: f64, what: &str) -> Result<()> {
        self.check_cancel(what)?;
        self.check_deadline(attempt_ms, what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(a.check("scan of t1").is_ok());
        b.cancel();
        assert!(a.is_cancelled());
        let err = a.check("scan of t1").unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(err.message().contains("scan of t1"));
        a.reset();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn deadline_trips_only_past_the_budget() {
        let d = QueryDeadline::new(100.0);
        assert!(d.check(100.0, "batch").is_ok(), "exactly on budget is fine");
        let err = d.check(100.1, "batch 3 of edge 1").unwrap_err();
        assert_eq!(err.kind(), "deadline");
        assert!(err.message().contains("batch 3 of edge 1"));
    }

    #[test]
    fn run_control_accumulates_base_time_across_attempts() {
        let ctl = RunControl {
            cancel: None,
            deadline: Some(QueryDeadline::new(50.0)),
            base_ms: 40.0,
        };
        assert!(ctl.check(10.0, "x").is_ok());
        assert_eq!(ctl.check(10.1, "x").unwrap_err().kind(), "deadline");
        assert!(RunControl::unlimited().check(1e18, "x").is_ok());
    }
}
