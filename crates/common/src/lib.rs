//! # geoqp-common
//!
//! Shared foundation types for the `geoqp` workspace — the Rust reproduction
//! of *Compliant Geo-distributed Query Processing* (SIGMOD 2021).
//!
//! This crate defines:
//!
//! * [`Value`] and [`DataType`] — the dynamic value model used by the
//!   expression evaluator, executor, and network serializer,
//! * [`Schema`] / [`Field`] — relational schemas with name-based lookup,
//! * [`Location`], [`LocationSet`], and [`LocationPattern`] — geographic or
//!   institutional sites, the *execution/shipping trait* carriers of the
//!   paper's Section 6,
//! * [`TableRef`] — a `database.table` reference tying a table to a site,
//! * [`GeoError`] / [`Result`] — the workspace-wide error type.
//!
//! Everything here is deliberately dependency-light so that every other crate
//! in the workspace can build on it.

pub mod churn;
pub mod columnar;
pub mod control;
pub mod error;
pub mod location;
pub mod row;
pub mod schema;
pub mod table_ref;
pub mod types;
pub mod value;

pub use churn::{CatalogPin, ChurnEvent, ChurnSignal, ChurnWatch, StaleGuard};
pub use columnar::{Column, ColumnarBatch, SelectionVector};
pub use control::{CancelToken, QueryDeadline, RunControl};
pub use error::{ChurnAbort, GeoError, Result, StaleReplica, Unavailable};
pub use location::{Location, LocationPattern, LocationSet};
pub use row::{Row, Rows};
pub use schema::{Field, Schema};
pub use table_ref::TableRef;
pub use types::DataType;
pub use value::Value;
