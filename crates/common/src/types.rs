//! Relational data types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of a column or scalar expression.
///
/// The set matches what the TPC-H schema and the paper's examples need:
/// integers, decimals (modelled as binary doubles), strings, dates, and
/// booleans. `Date` is carried as days since 1970-01-01, which makes range
/// predicates over dates ordinary integer-interval reasoning inside the
/// implication prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean truth value.
    Bool,
    /// 64-bit signed integer (keys, quantities).
    Int64,
    /// 64-bit IEEE float (prices, balances; TPC-H decimal substitute).
    Float64,
    /// UTF-8 string.
    Str,
    /// Calendar date, stored as days since the Unix epoch.
    Date,
}

impl DataType {
    /// True if the type is numeric (participates in arithmetic and
    /// aggregation functions such as SUM/AVG).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// True if values of this type have a total order usable in range
    /// predicates (`<`, `BETWEEN`, ...).
    pub fn is_ordered(self) -> bool {
        !matches!(self, DataType::Bool)
    }

    /// The result type of arithmetic between two numeric types
    /// (float wins, i.e. `Int64 + Float64 = Float64`).
    pub fn arithmetic_result(self, other: DataType) -> Option<DataType> {
        match (self, other) {
            (DataType::Int64, DataType::Int64) => Some(DataType::Int64),
            (a, b) if a.is_numeric() && b.is_numeric() => Some(DataType::Float64),
            // Date ± Int64 is a date offset, used by TPC-H interval predicates.
            (DataType::Date, DataType::Int64) | (DataType::Int64, DataType::Date) => {
                Some(DataType::Date)
            }
            _ => None,
        }
    }

    /// Whether two types can be compared with `=`, `<`, etc.
    pub fn comparable_with(self, other: DataType) -> bool {
        self == other || (self.is_numeric() && other.is_numeric())
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Date.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn ordering_classification() {
        assert!(DataType::Date.is_ordered());
        assert!(DataType::Str.is_ordered());
        assert!(!DataType::Bool.is_ordered());
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(
            DataType::Int64.arithmetic_result(DataType::Int64),
            Some(DataType::Int64)
        );
        assert_eq!(
            DataType::Int64.arithmetic_result(DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::Date.arithmetic_result(DataType::Int64),
            Some(DataType::Date)
        );
        assert_eq!(DataType::Str.arithmetic_result(DataType::Int64), None);
    }

    #[test]
    fn comparability() {
        assert!(DataType::Int64.comparable_with(DataType::Float64));
        assert!(DataType::Date.comparable_with(DataType::Date));
        assert!(!DataType::Date.comparable_with(DataType::Int64));
        assert!(!DataType::Str.comparable_with(DataType::Bool));
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Str.to_string(), "VARCHAR");
        assert_eq!(DataType::Date.to_string(), "DATE");
    }
}
