//! Dynamic runtime values.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed scalar value flowing through the executor.
///
/// `Value` implements total `Eq`/`Ord`/`Hash` (floats via
/// [`f64::total_cmp`]/bit patterns) so that it can key hash joins and
/// hash aggregations directly. Strings are reference counted so that
/// row cloning during joins and shipping stays cheap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value; equal to itself for
    /// grouping purposes (SQL `GROUP BY` semantics), but comparison
    /// *predicates* involving NULL evaluate to false in the evaluator.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string (cheaply clonable).
    Str(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct a date from `(year, month, day)` using a proleptic
    /// Gregorian calendar. Panics on out-of-range month/day; the TPC-H
    /// generator only produces valid dates.
    pub fn date(year: i32, month: u32, day: u32) -> Value {
        Value::Date(days_from_civil(year, month, day))
    }

    /// The type of this value, or `None` for NULL (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a truth value (for WHERE-clause results).
    /// NULL is treated as false, per SQL's three-valued logic collapsing
    /// to a filter decision.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view as f64 (ints widen; dates expose their day number so
    /// date arithmetic composes with interval literals).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int64(i) => Some(*i as f64),
            Value::Float64(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Integer view, if the value is an integer or date.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(i) => Some(*i),
            Value::Date(d) => Some(*d as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: returns `None` when either side is NULL or the types
    /// are incomparable, otherwise the ordering. Numeric types compare
    /// cross-type (Int64 vs Float64).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int64(a), Value::Int64(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                // Mixed numeric comparison; Date only compares with Date,
                // guarded above (Date vs numeric falls through to here, so
                // re-check kinds).
                (Some(x), Some(y))
                    if a.data_type().is_some_and(DataType::is_numeric)
                        && b.data_type().is_some_and(DataType::is_numeric) =>
                {
                    Some(x.total_cmp(&y))
                }
                _ => None,
            },
        }
    }

    /// Approximate serialized width in bytes, used by the optimizer's
    /// cardinality/byte estimates when costing SHIP operators.
    pub fn estimated_width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int64(_) => 8,
            Value::Float64(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Date(_) => 4,
        }
    }

    /// Append a compact binary encoding of this value to `out` and return
    /// the number of bytes written. Used by the SHIP operator to account
    /// for real (simulated) network transfer volume.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int64(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float64(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(5);
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        out.len() - start
    }

    /// Decode a value previously written by [`Value::encode_into`],
    /// returning the value and the number of bytes consumed.
    pub fn decode_from(buf: &[u8]) -> Option<(Value, usize)> {
        let tag = *buf.first()?;
        match tag {
            0 => Some((Value::Null, 1)),
            1 => Some((Value::Bool(*buf.get(1)? != 0), 2)),
            2 => {
                let b: [u8; 8] = buf.get(1..9)?.try_into().ok()?;
                Some((Value::Int64(i64::from_le_bytes(b)), 9))
            }
            3 => {
                let b: [u8; 8] = buf.get(1..9)?.try_into().ok()?;
                Some((Value::Float64(f64::from_le_bytes(b)), 9))
            }
            4 => {
                let lb: [u8; 4] = buf.get(1..5)?.try_into().ok()?;
                let len = u32::from_le_bytes(lb) as usize;
                let s = std::str::from_utf8(buf.get(5..5 + len)?).ok()?;
                Some((Value::str(s), 5 + len))
            }
            5 => {
                let b: [u8; 4] = buf.get(1..5)?.try_into().ok()?;
                Some((Value::Date(i32::from_le_bytes(b)), 5))
            }
            _ => None,
        }
    }
}

/// Total equality: NULL == NULL, floats by bit-equivalent total order.
/// This is *grouping* equality (hash join/aggregate keys), distinct from
/// SQL predicate equality which is handled in the expression evaluator.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl Value {
    /// Total order over all values (for sorting and BTree keys):
    /// NULL < Bool < Int64/Float64 (numeric, merged) < Date < Str.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int64(_) | Value::Float64(_) => 2,
                Value::Date(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int64(a), Value::Int64(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Float64(a), Value::Float64(b)) => a.total_cmp(b),
            (Value::Int64(a), Value::Float64(b)) => (*a as f64).total_cmp(b),
            (Value::Float64(a), Value::Int64(b)) => a.total_cmp(&(*b as f64)),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int64 and Float64 must hash identically when numerically equal
            // because total_cmp treats them as one numeric domain.
            Value::Int64(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float64(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int64(i) => write!(f, "{i}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => {
                let (y, m, day) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian civil date
/// (Howard Hinnant's algorithm).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    assert!((1..=12).contains(&m), "month out of range: {m}");
    assert!((1..=31).contains(&d), "day out of range: {d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn date_round_trip_known_values() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
        for &(y, m, d) in &[(1992, 1, 1), (1998, 12, 1), (1995, 3, 15), (2024, 2, 29)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
    }

    #[test]
    fn date_display_is_iso() {
        assert_eq!(Value::date(1995, 3, 15).to_string(), "1995-03-15");
    }

    #[test]
    fn sql_cmp_nulls_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int64(1)), None);
        assert_eq!(Value::Int64(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numerics() {
        assert_eq!(
            Value::Int64(2).sql_cmp(&Value::Float64(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float64(1.5).sql_cmp(&Value::Int64(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_incompatible_types() {
        assert_eq!(Value::str("a").sql_cmp(&Value::Int64(1)), None);
        assert_eq!(Value::Date(10).sql_cmp(&Value::Int64(10)), None);
    }

    #[test]
    fn grouping_equality_treats_null_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Int64(3), Value::Float64(3.0));
    }

    #[test]
    fn numeric_hash_consistency_with_eq() {
        assert_eq!(hash_of(&Value::Int64(42)), hash_of(&Value::Float64(42.0)));
    }

    #[test]
    fn total_order_ranks() {
        let mut vs = [
            Value::str("z"),
            Value::Date(0),
            Value::Float64(0.5),
            Value::Bool(true),
            Value::Null,
            Value::Int64(7),
        ];
        vs.sort();
        assert!(vs[0].is_null());
        assert!(matches!(vs[1], Value::Bool(_)));
        assert!(matches!(vs.last(), Some(Value::Str(_))));
    }

    #[test]
    fn encode_decode_round_trip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int64(-77),
            Value::Float64(3.5),
            Value::str("hello world"),
            Value::date(1996, 6, 30),
        ];
        for v in &vals {
            let mut buf = Vec::new();
            let n = v.encode_into(&mut buf);
            assert_eq!(n, buf.len());
            let (back, consumed) = Value::decode_from(&buf).expect("decode");
            assert_eq!(consumed, n);
            assert_eq!(&back, v);
        }
    }

    #[test]
    fn estimated_width_tracks_strings() {
        assert_eq!(Value::Int64(1).estimated_width(), 8);
        assert_eq!(Value::str("abc").estimated_width(), 7);
    }

    #[test]
    fn is_true_only_for_bool_true() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Int64(1).is_true());
    }
}
