//! Rows and row batches.

use crate::columnar::ColumnarBatch;
use crate::value::Value;
use std::sync::{Arc, OnceLock};

/// A single tuple: one value per schema field, in schema order.
pub type Row = Vec<Value>;

/// A materialized batch of rows — the unit that flows between operators in
/// the local executor and across SHIP operators in the distributed engine.
///
/// Batches born on the vectorized engine stay columnar until a consumer
/// actually asks for row-major data (late materialization): the first
/// [`Rows::rows`] / [`Rows::iter`] access transposes once and caches the
/// result, so pipelines that only count rows, account bytes, or hand the
/// batch onward never pay the per-row `Vec` allocations of an eager
/// transpose. Row-native constructors ([`Rows::from_rows`],
/// [`Rows::decode`]) are materialized from the start, and all observable
/// behavior — lengths, iteration order, equality, the wire encoding — is
/// identical either way.
#[derive(Debug, Default)]
pub struct Rows {
    /// Deferred columnar payload: present only while no row access has
    /// forced the transpose (and cleared by mutation).
    cols: Option<Arc<ColumnarBatch>>,
    /// Row-major payload; set at construction for row-native batches, or
    /// on first access for columnar-born ones.
    rows: OnceLock<Vec<Row>>,
}

impl Rows {
    /// Empty batch.
    pub fn new() -> Rows {
        Rows::from_rows(Vec::new())
    }

    /// From a vector of rows (materialized immediately).
    pub fn from_rows(rows: Vec<Row>) -> Rows {
        let cell = OnceLock::new();
        let _ = cell.set(rows);
        Rows {
            cols: None,
            rows: cell,
        }
    }

    /// From a columnar batch, deferring the row-major transpose until a
    /// consumer asks for rows. Length, byte accounting, and encoding are
    /// served from column metadata until then.
    pub fn from_batch(batch: Arc<ColumnarBatch>) -> Rows {
        Rows {
            cols: Some(batch),
            rows: OnceLock::new(),
        }
    }

    /// The materialized row vector, transposing the columnar payload on
    /// first use.
    fn materialized(&self) -> &Vec<Row> {
        self.rows.get_or_init(|| match &self.cols {
            Some(b) => b.to_row_vec(),
            None => Vec::new(),
        })
    }

    /// Mutable access to the row vector, forcing materialization and
    /// dropping the (now stale) columnar payload.
    fn materialized_mut(&mut self) -> &mut Vec<Row> {
        if self.rows.get().is_none() {
            let v = match &self.cols {
                Some(b) => b.to_row_vec(),
                None => Vec::new(),
            };
            let _ = self.rows.set(v);
        }
        self.cols = None;
        self.rows.get_mut().expect("just materialized")
    }

    /// Number of rows (from column metadata when still columnar).
    pub fn len(&self) -> usize {
        match self.rows.get() {
            Some(r) => r.len(),
            None => self.cols.as_ref().map_or(0, |b| b.len()),
        }
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one row.
    pub fn push(&mut self, row: Row) {
        self.materialized_mut().push(row);
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[Row] {
        self.materialized()
    }

    /// Consume into the underlying vector.
    pub fn into_rows(self) -> Vec<Row> {
        match self.rows.into_inner() {
            Some(r) => r,
            None => self.cols.as_ref().map_or_else(Vec::new, |b| b.to_row_vec()),
        }
    }

    /// Iterate over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.materialized().iter()
    }

    /// Exact serialized size of the batch under [`Value::encode_into`]'s
    /// encoding, plus a fixed 8-byte batch header. This is the byte count
    /// the network simulator charges for a SHIP of this batch. Served
    /// from column metadata while the batch is still columnar
    /// ([`ColumnarBatch::encoded_size`] is defined to agree exactly).
    pub fn encoded_size(&self) -> usize {
        if self.rows.get().is_none() {
            if let Some(b) = &self.cols {
                return b.encoded_size();
            }
        }
        8 + self
            .materialized()
            .iter()
            .flat_map(|r| r.iter())
            .map(Value::estimated_exact_width)
            .sum::<usize>()
    }

    /// Serialize all rows into a byte buffer (8-byte row-count header, then
    /// each row's values back to back). The distributed engine ships these
    /// bytes and re-decodes them at the receiving site, so the simulated
    /// transfer volume is the real volume.
    pub fn encode(&self) -> Vec<u8> {
        let rows = self.materialized();
        let mut buf = Vec::with_capacity(self.encoded_size());
        buf.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for row in rows {
            for v in row {
                v.encode_into(&mut buf);
            }
        }
        buf
    }

    /// Decode a buffer produced by [`Rows::encode`], given the row arity.
    pub fn decode(buf: &[u8], arity: usize) -> Option<Rows> {
        let header: [u8; 8] = buf.get(..8)?.try_into().ok()?;
        let n = u64::from_le_bytes(header) as usize;
        let mut pos = 8;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                let (v, used) = Value::decode_from(&buf[pos..])?;
                pos += used;
                row.push(v);
            }
            rows.push(row);
        }
        (pos == buf.len()).then_some(Rows::from_rows(rows))
    }
}

impl Clone for Rows {
    fn clone(&self) -> Rows {
        let cell = OnceLock::new();
        if let Some(r) = self.rows.get() {
            let _ = cell.set(r.clone());
        }
        Rows {
            cols: self.cols.clone(),
            rows: cell,
        }
    }
}

/// Logical equality: same rows in the same order, regardless of which
/// representation (columnar or row-major) currently backs each side.
impl PartialEq for Rows {
    fn eq(&self, other: &Rows) -> bool {
        self.rows() == other.rows()
    }
}

impl Eq for Rows {}

impl Value {
    /// Exact width of this value under the wire encoding (tag byte included).
    pub fn estimated_exact_width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int64(_) | Value::Float64(_) => 9,
            Value::Date(_) => 5,
            Value::Str(s) => 5 + s.len(),
        }
    }
}

impl FromIterator<Row> for Rows {
    fn from_iter<I: IntoIterator<Item = Row>>(iter: I) -> Rows {
        Rows::from_rows(iter.into_iter().collect())
    }
}

impl IntoIterator for Rows {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_rows().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rows {
        Rows::from_rows(vec![
            vec![Value::Int64(1), Value::str("alice"), Value::Float64(10.5)],
            vec![Value::Int64(2), Value::Null, Value::Float64(-3.25)],
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let rows = sample();
        let buf = rows.encode();
        assert_eq!(buf.len(), rows.encoded_size());
        let back = Rows::decode(&buf, 3).expect("decode");
        assert_eq!(back, rows);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = sample().encode();
        buf.push(0xFF);
        assert!(Rows::decode(&buf, 3).is_none());
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = sample().encode();
        assert!(Rows::decode(&buf[..buf.len() - 1], 3).is_none());
    }

    #[test]
    fn empty_batch_is_header_only() {
        let rows = Rows::new();
        assert!(rows.is_empty());
        let buf = rows.encode();
        assert_eq!(buf.len(), 8);
        assert_eq!(Rows::decode(&buf, 5).unwrap().len(), 0);
    }

    #[test]
    fn collect_from_iterator() {
        let rows: Rows = (0..3).map(|i| vec![Value::Int64(i)]).collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.rows()[2][0], Value::Int64(2));
    }
}
