//! Rows and row batches.

use crate::value::Value;

/// A single tuple: one value per schema field, in schema order.
pub type Row = Vec<Value>;

/// A materialized batch of rows — the unit that flows between operators in
/// the local executor and across SHIP operators in the distributed engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rows {
    rows: Vec<Row>,
}

impl Rows {
    /// Empty batch.
    pub fn new() -> Rows {
        Rows { rows: Vec::new() }
    }

    /// From a vector of rows.
    pub fn from_rows(rows: Vec<Row>) -> Rows {
        Rows { rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into the underlying vector.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Iterate over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Exact serialized size of the batch under [`Value::encode_into`]'s
    /// encoding, plus a fixed 8-byte batch header. This is the byte count
    /// the network simulator charges for a SHIP of this batch.
    pub fn encoded_size(&self) -> usize {
        8 + self
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .map(Value::estimated_exact_width)
            .sum::<usize>()
    }

    /// Serialize all rows into a byte buffer (8-byte row-count header, then
    /// each row's values back to back). The distributed engine ships these
    /// bytes and re-decodes them at the receiving site, so the simulated
    /// transfer volume is the real volume.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_size());
        buf.extend_from_slice(&(self.rows.len() as u64).to_le_bytes());
        for row in &self.rows {
            for v in row {
                v.encode_into(&mut buf);
            }
        }
        buf
    }

    /// Decode a buffer produced by [`Rows::encode`], given the row arity.
    pub fn decode(buf: &[u8], arity: usize) -> Option<Rows> {
        let header: [u8; 8] = buf.get(..8)?.try_into().ok()?;
        let n = u64::from_le_bytes(header) as usize;
        let mut pos = 8;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                let (v, used) = Value::decode_from(&buf[pos..])?;
                pos += used;
                row.push(v);
            }
            rows.push(row);
        }
        (pos == buf.len()).then_some(Rows { rows })
    }
}

impl Value {
    /// Exact width of this value under the wire encoding (tag byte included).
    pub fn estimated_exact_width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int64(_) | Value::Float64(_) => 9,
            Value::Date(_) => 5,
            Value::Str(s) => 5 + s.len(),
        }
    }
}

impl FromIterator<Row> for Rows {
    fn from_iter<I: IntoIterator<Item = Row>>(iter: I) -> Rows {
        Rows {
            rows: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Rows {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rows {
        Rows::from_rows(vec![
            vec![Value::Int64(1), Value::str("alice"), Value::Float64(10.5)],
            vec![Value::Int64(2), Value::Null, Value::Float64(-3.25)],
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let rows = sample();
        let buf = rows.encode();
        assert_eq!(buf.len(), rows.encoded_size());
        let back = Rows::decode(&buf, 3).expect("decode");
        assert_eq!(back, rows);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = sample().encode();
        buf.push(0xFF);
        assert!(Rows::decode(&buf, 3).is_none());
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = sample().encode();
        assert!(Rows::decode(&buf[..buf.len() - 1], 3).is_none());
    }

    #[test]
    fn empty_batch_is_header_only() {
        let rows = Rows::new();
        assert!(rows.is_empty());
        let buf = rows.encode();
        assert_eq!(buf.len(), 8);
        assert_eq!(Rows::decode(&buf, 5).unwrap().len(), 0);
    }

    #[test]
    fn collect_from_iterator() {
        let rows: Rows = (0..3).map(|i| vec![Value::Int64(i)]).collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.rows()[2][0], Value::Int64(2));
    }
}
