//! Columnar batches: the vectorized execution engine's data layout.
//!
//! A [`ColumnarBatch`] stores a row batch column-major in typed vectors —
//! `Int64`/`Float64`/`Date`/`Bool` as fixed-width buffers with a validity
//! vector, strings dictionary-encoded (`u32` codes into a shared
//! [`Arc`]'d dictionary of [`Arc<str>`] entries) — plus an [`Any`]
//! fallback column for mixed-typed outputs (e.g. unions of differently
//! typed branches). Batches are immutable once built and flow through the
//! engine as `Arc<ColumnarBatch>`, so fragment hand-off and scan caching
//! are zero-copy.
//!
//! Two invariants tie the columnar engine to the row engine:
//!
//! * **Round-trip exactness** — [`ColumnarBatch::to_rows`] reproduces the
//!   source rows value-for-value (float bit patterns included), so row
//!   multisets are preserved by construction.
//! * **Byte accounting** — [`ColumnarBatch::encoded_size`] equals
//!   [`Rows::encoded_size`] (and therefore `Rows::encode().len()`) for
//!   the same rows, computed from column metadata without materializing
//!   the wire encoding. The network simulator charges identical bytes
//!   whether a SHIP carries rows or a columnar batch.
//!
//! [`Any`]: Column::Any

use crate::row::{Row, Rows};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A selection vector: physical row indices (in order) that survive a
/// filter. Kernels compose selections instead of materializing filtered
/// batches; [`ColumnarBatch::gather`] materializes when required (e.g.
/// before a SHIP, whose byte accounting must see exactly the surviving
/// rows).
pub type SelectionVector = Vec<u32>;

/// FNV-1a offset basis / prime, used for string and key fingerprints.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Mix one value fingerprint into a running key fingerprint. The rotate
/// keeps column order significant; the multiply diffuses.
pub fn mix_fingerprint(h: u64, v: u64) -> u64 {
    (h.rotate_left(23) ^ v).wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// One typed column vector. Fixed-width variants carry a parallel
/// validity vector (`valid[i] == false` means NULL; the slot in `values`
/// is then a zero placeholder). Strings are dictionary-encoded with
/// per-entry fingerprints precomputed so join/group keys never rehash
/// string bytes per row.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Fixed-width buffer (0 on NULL slots).
        values: Vec<i64>,
        /// Validity: false = NULL.
        valid: Vec<bool>,
    },
    /// 64-bit floats.
    Float64 {
        /// Fixed-width buffer (0.0 on NULL slots).
        values: Vec<f64>,
        /// Validity: false = NULL.
        valid: Vec<bool>,
    },
    /// Days since the Unix epoch.
    Date {
        /// Fixed-width buffer (0 on NULL slots).
        values: Vec<i32>,
        /// Validity: false = NULL.
        valid: Vec<bool>,
    },
    /// Booleans.
    Bool {
        /// Fixed-width buffer (false on NULL slots).
        values: Vec<bool>,
        /// Validity: false = NULL.
        valid: Vec<bool>,
    },
    /// Dictionary-encoded strings.
    Str {
        /// Distinct entries, shared across slices/gathers.
        dict: Arc<Vec<Arc<str>>>,
        /// Precomputed per-entry byte fingerprints (parallel to `dict`).
        hashes: Arc<Vec<u64>>,
        /// Per-row dictionary codes (0 on NULL slots).
        codes: Vec<u32>,
        /// Validity: false = NULL.
        valid: Vec<bool>,
    },
    /// Mixed-typed fallback: one [`Value`] per row.
    Any {
        /// The row values.
        values: Vec<Value>,
    },
}

/// Value-level fingerprint tags. Int64 and Float64 share a tag (and a
/// payload: the value as `f64` bits) because [`Value`]'s equality merges
/// the numeric domain; dates keep their own tag because `Date(3) !=
/// Int64(3)`.
const FP_NULL: u64 = 0x9ae1_6a3b_2f90_404f;
const FP_BOOL: u64 = 0x3c79_ac49_2ba7_b653;
const FP_NUM: u64 = 0x1b87_3593_21e4_9d09;
const FP_DATE: u64 = 0x60be_e2be_e120_fc15;
const FP_STR: u64 = 0xa0b4_28db_8a4b_cc69;

/// Fingerprint of one scalar [`Value`], consistent with [`Value`]'s
/// `Eq`/`Hash` classes: equal values always produce equal fingerprints.
pub fn value_fingerprint(v: &Value) -> u64 {
    match v {
        Value::Null => FP_NULL,
        Value::Bool(b) => FP_BOOL ^ (*b as u64),
        Value::Int64(i) => FP_NUM ^ (*i as f64).to_bits(),
        Value::Float64(f) => FP_NUM ^ f.to_bits(),
        Value::Date(d) => FP_DATE ^ (*d as i64 as u64),
        Value::Str(s) => FP_STR ^ fnv1a(s.as_bytes()),
    }
}

impl Column {
    /// Build a column from row values, sniffing the narrowest typed
    /// representation: a column whose non-null values are all one
    /// variant becomes that typed vector, anything mixed falls back to
    /// [`Column::Any`].
    pub fn from_values(values: Vec<Value>) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Float,
            Date,
            Bool,
            Str,
        }
        let mut kind: Option<Kind> = None;
        for v in &values {
            let k = match v {
                Value::Null => continue,
                Value::Int64(_) => Kind::Int,
                Value::Float64(_) => Kind::Float,
                Value::Date(_) => Kind::Date,
                Value::Bool(_) => Kind::Bool,
                Value::Str(_) => Kind::Str,
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => return Column::Any { values },
            }
        }
        let n = values.len();
        match kind {
            // All-NULL columns take the cheapest fixed-width layout.
            None | Some(Kind::Int) => {
                let mut vals = Vec::with_capacity(n);
                let mut valid = Vec::with_capacity(n);
                for v in &values {
                    match v {
                        Value::Int64(i) => {
                            vals.push(*i);
                            valid.push(true);
                        }
                        _ => {
                            vals.push(0);
                            valid.push(false);
                        }
                    }
                }
                Column::Int64 {
                    values: vals,
                    valid,
                }
            }
            Some(Kind::Float) => {
                let mut vals = Vec::with_capacity(n);
                let mut valid = Vec::with_capacity(n);
                for v in &values {
                    match v {
                        Value::Float64(f) => {
                            vals.push(*f);
                            valid.push(true);
                        }
                        _ => {
                            vals.push(0.0);
                            valid.push(false);
                        }
                    }
                }
                Column::Float64 {
                    values: vals,
                    valid,
                }
            }
            Some(Kind::Date) => {
                let mut vals = Vec::with_capacity(n);
                let mut valid = Vec::with_capacity(n);
                for v in &values {
                    match v {
                        Value::Date(d) => {
                            vals.push(*d);
                            valid.push(true);
                        }
                        _ => {
                            vals.push(0);
                            valid.push(false);
                        }
                    }
                }
                Column::Date {
                    values: vals,
                    valid,
                }
            }
            Some(Kind::Bool) => {
                let mut vals = Vec::with_capacity(n);
                let mut valid = Vec::with_capacity(n);
                for v in &values {
                    match v {
                        Value::Bool(b) => {
                            vals.push(*b);
                            valid.push(true);
                        }
                        _ => {
                            vals.push(false);
                            valid.push(false);
                        }
                    }
                }
                Column::Bool {
                    values: vals,
                    valid,
                }
            }
            Some(Kind::Str) => {
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut hashes: Vec<u64> = Vec::new();
                let mut intern: HashMap<Arc<str>, u32> = HashMap::new();
                let mut codes = Vec::with_capacity(n);
                let mut valid = Vec::with_capacity(n);
                for v in &values {
                    match v {
                        Value::Str(s) => {
                            let code = *intern.entry(Arc::clone(s)).or_insert_with(|| {
                                dict.push(Arc::clone(s));
                                hashes.push(fnv1a(s.as_bytes()));
                                (dict.len() - 1) as u32
                            });
                            codes.push(code);
                            valid.push(true);
                        }
                        _ => {
                            codes.push(0);
                            valid.push(false);
                        }
                    }
                }
                Column::Str {
                    dict: Arc::new(dict),
                    hashes: Arc::new(hashes),
                    codes,
                    valid,
                }
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
            Column::Date { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Any { values } => values.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i` (clones are cheap: strings share their
    /// dictionary entry's `Arc`).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int64 { values, valid } => {
                if valid[i] {
                    Value::Int64(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Float64 { values, valid } => {
                if valid[i] {
                    Value::Float64(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Date { values, valid } => {
                if valid[i] {
                    Value::Date(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Bool { values, valid } => {
                if valid[i] {
                    Value::Bool(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Str {
                dict, codes, valid, ..
            } => {
                if valid[i] {
                    Value::Str(Arc::clone(&dict[codes[i] as usize]))
                } else {
                    Value::Null
                }
            }
            Column::Any { values } => values[i].clone(),
        }
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int64 { valid, .. }
            | Column::Float64 { valid, .. }
            | Column::Date { valid, .. }
            | Column::Bool { valid, .. }
            | Column::Str { valid, .. } => !valid[i],
            Column::Any { values } => values[i].is_null(),
        }
    }

    /// Fingerprint of row `i`, consistent with [`value_fingerprint`] on
    /// [`Column::get`]'s result (string hashes come precomputed from the
    /// dictionary).
    pub fn fingerprint_at(&self, i: usize) -> u64 {
        match self {
            Column::Int64 { values, valid } => {
                if valid[i] {
                    FP_NUM ^ (values[i] as f64).to_bits()
                } else {
                    FP_NULL
                }
            }
            Column::Float64 { values, valid } => {
                if valid[i] {
                    FP_NUM ^ values[i].to_bits()
                } else {
                    FP_NULL
                }
            }
            Column::Date { values, valid } => {
                if valid[i] {
                    FP_DATE ^ (values[i] as i64 as u64)
                } else {
                    FP_NULL
                }
            }
            Column::Bool { values, valid } => {
                if valid[i] {
                    FP_BOOL ^ (values[i] as u64)
                } else {
                    FP_NULL
                }
            }
            Column::Str {
                hashes,
                codes,
                valid,
                ..
            } => {
                if valid[i] {
                    FP_STR ^ hashes[codes[i] as usize]
                } else {
                    FP_NULL
                }
            }
            Column::Any { values } => value_fingerprint(&values[i]),
        }
    }

    /// Vectorized [`Column::fingerprint_at`] fold for join/group keys:
    /// mixes this column's per-row fingerprints into the running key
    /// fingerprints `h`, clearing `live[i]` where the row is NULL (NULL
    /// keys never join, so their mixed value is irrelevant). One column
    /// -type dispatch per column instead of one per cell.
    pub fn fold_key_fingerprints(&self, h: &mut [u64], live: &mut [bool]) {
        match self {
            Column::Int64 { values, valid } => {
                for i in 0..values.len() {
                    if valid[i] {
                        h[i] = mix_fingerprint(h[i], FP_NUM ^ (values[i] as f64).to_bits());
                    } else {
                        live[i] = false;
                    }
                }
            }
            Column::Float64 { values, valid } => {
                for i in 0..values.len() {
                    if valid[i] {
                        h[i] = mix_fingerprint(h[i], FP_NUM ^ values[i].to_bits());
                    } else {
                        live[i] = false;
                    }
                }
            }
            Column::Date { values, valid } => {
                for i in 0..values.len() {
                    if valid[i] {
                        h[i] = mix_fingerprint(h[i], FP_DATE ^ (values[i] as i64 as u64));
                    } else {
                        live[i] = false;
                    }
                }
            }
            Column::Bool { values, valid } => {
                for i in 0..values.len() {
                    if valid[i] {
                        h[i] = mix_fingerprint(h[i], FP_BOOL ^ (values[i] as u64));
                    } else {
                        live[i] = false;
                    }
                }
            }
            Column::Str {
                hashes,
                codes,
                valid,
                ..
            } => {
                for i in 0..codes.len() {
                    if valid[i] {
                        h[i] = mix_fingerprint(h[i], FP_STR ^ hashes[codes[i] as usize]);
                    } else {
                        live[i] = false;
                    }
                }
            }
            Column::Any { values } => {
                for (i, v) in values.iter().enumerate() {
                    if v.is_null() {
                        live[i] = false;
                    } else {
                        h[i] = mix_fingerprint(h[i], value_fingerprint(v));
                    }
                }
            }
        }
    }

    /// Push this column's values onto `rows` (one value per row, in row
    /// order) — the column-wise leg of [`ColumnarBatch::to_rows`], with
    /// the variant dispatch hoisted out of the per-cell loop.
    pub fn append_rows(&self, rows: &mut [Row]) {
        match self {
            Column::Int64 { values, valid } => {
                for ((row, &v), &ok) in rows.iter_mut().zip(values).zip(valid) {
                    row.push(if ok { Value::Int64(v) } else { Value::Null });
                }
            }
            Column::Float64 { values, valid } => {
                for ((row, &v), &ok) in rows.iter_mut().zip(values).zip(valid) {
                    row.push(if ok { Value::Float64(v) } else { Value::Null });
                }
            }
            Column::Date { values, valid } => {
                for ((row, &v), &ok) in rows.iter_mut().zip(values).zip(valid) {
                    row.push(if ok { Value::Date(v) } else { Value::Null });
                }
            }
            Column::Bool { values, valid } => {
                for ((row, &v), &ok) in rows.iter_mut().zip(values).zip(valid) {
                    row.push(if ok { Value::Bool(v) } else { Value::Null });
                }
            }
            Column::Str {
                dict, codes, valid, ..
            } => {
                for ((row, &c), &ok) in rows.iter_mut().zip(codes).zip(valid) {
                    row.push(if ok {
                        Value::Str(Arc::clone(&dict[c as usize]))
                    } else {
                        Value::Null
                    });
                }
            }
            Column::Any { values } => {
                for (row, v) in rows.iter_mut().zip(values) {
                    row.push(v.clone());
                }
            }
        }
    }

    /// Exact wire width of row `i` under [`Value::estimated_exact_width`].
    pub fn encoded_width(&self, i: usize) -> usize {
        match self {
            Column::Int64 { valid, .. } | Column::Float64 { valid, .. } => {
                if valid[i] {
                    9
                } else {
                    1
                }
            }
            Column::Date { valid, .. } => {
                if valid[i] {
                    5
                } else {
                    1
                }
            }
            Column::Bool { valid, .. } => {
                if valid[i] {
                    2
                } else {
                    1
                }
            }
            Column::Str {
                dict, codes, valid, ..
            } => {
                if valid[i] {
                    5 + dict[codes[i] as usize].len()
                } else {
                    1
                }
            }
            Column::Any { values } => values[i].estimated_exact_width(),
        }
    }

    /// Sum of [`Column::encoded_width`] over all rows, computed from
    /// column metadata (validity counts and dictionary lengths) without
    /// visiting a wire encoding.
    pub fn encoded_size(&self) -> usize {
        fn fixed(valid: &[bool], width: usize) -> usize {
            let non_null = valid.iter().filter(|v| **v).count();
            non_null * width + (valid.len() - non_null)
        }
        match self {
            Column::Int64 { valid, .. } | Column::Float64 { valid, .. } => fixed(valid, 9),
            Column::Date { valid, .. } => fixed(valid, 5),
            Column::Bool { valid, .. } => fixed(valid, 2),
            Column::Str {
                dict, codes, valid, ..
            } => codes
                .iter()
                .zip(valid)
                .map(|(c, ok)| if *ok { 5 + dict[*c as usize].len() } else { 1 })
                .sum(),
            Column::Any { values } => values.iter().map(Value::estimated_exact_width).sum(),
        }
    }

    /// Typed equality between row `i` of this column and row `j` of
    /// `other`, exactly matching `self.get(i) == other.get(j)` under
    /// [`Value`]'s equality (`total_cmp == Equal`: NULL equals NULL, the
    /// numeric domain is merged via `f64::total_cmp`, dates never equal
    /// numbers) — but without materializing `Value`s, so join/group key
    /// verification stays allocation-free on typed columns.
    pub fn eq_at(&self, i: usize, other: &Column, j: usize) -> bool {
        use std::cmp::Ordering;
        match (self, other) {
            (
                Column::Int64 {
                    values: a,
                    valid: va,
                },
                Column::Int64 {
                    values: b,
                    valid: vb,
                },
            ) => {
                if va[i] && vb[j] {
                    a[i] == b[j]
                } else {
                    va[i] == vb[j]
                }
            }
            (
                Column::Float64 {
                    values: a,
                    valid: va,
                },
                Column::Float64 {
                    values: b,
                    valid: vb,
                },
            ) => {
                if va[i] && vb[j] {
                    a[i].total_cmp(&b[j]) == Ordering::Equal
                } else {
                    va[i] == vb[j]
                }
            }
            (
                Column::Int64 {
                    values: a,
                    valid: va,
                },
                Column::Float64 {
                    values: b,
                    valid: vb,
                },
            ) => {
                if va[i] && vb[j] {
                    (a[i] as f64).total_cmp(&b[j]) == Ordering::Equal
                } else {
                    va[i] == vb[j]
                }
            }
            (
                Column::Float64 {
                    values: a,
                    valid: va,
                },
                Column::Int64 {
                    values: b,
                    valid: vb,
                },
            ) => {
                if va[i] && vb[j] {
                    a[i].total_cmp(&(b[j] as f64)) == Ordering::Equal
                } else {
                    va[i] == vb[j]
                }
            }
            (
                Column::Date {
                    values: a,
                    valid: va,
                },
                Column::Date {
                    values: b,
                    valid: vb,
                },
            ) => {
                if va[i] && vb[j] {
                    a[i] == b[j]
                } else {
                    va[i] == vb[j]
                }
            }
            (
                Column::Bool {
                    values: a,
                    valid: va,
                },
                Column::Bool {
                    values: b,
                    valid: vb,
                },
            ) => {
                if va[i] && vb[j] {
                    a[i] == b[j]
                } else {
                    va[i] == vb[j]
                }
            }
            (
                Column::Str {
                    dict: da,
                    hashes: ha,
                    codes: ca,
                    valid: va,
                },
                Column::Str {
                    dict: db,
                    hashes: hb,
                    codes: cb,
                    valid: vb,
                },
            ) => {
                if va[i] && vb[j] {
                    let (x, y) = (ca[i] as usize, cb[j] as usize);
                    if Arc::ptr_eq(da, db) {
                        // Interned dictionary: same code ⇔ same string.
                        x == y
                    } else {
                        ha[x] == hb[y] && da[x] == db[y]
                    }
                } else {
                    va[i] == vb[j]
                }
            }
            // Mixed layouts (Any on either side, or typed kinds whose
            // non-null values can never be equal): NULLs still compare
            // equal to each other; otherwise defer to Value equality.
            (a, b) => {
                let (na, nb) = (a.is_null(i), b.is_null(j));
                if na || nb {
                    na && nb
                } else {
                    a.get(i) == b.get(j)
                }
            }
        }
    }

    /// Copy rows `offset..offset + len` into a new column. String slices
    /// share the source dictionary (`Arc` clone).
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        match self {
            Column::Int64 { values, valid } => Column::Int64 {
                values: values[offset..offset + len].to_vec(),
                valid: valid[offset..offset + len].to_vec(),
            },
            Column::Float64 { values, valid } => Column::Float64 {
                values: values[offset..offset + len].to_vec(),
                valid: valid[offset..offset + len].to_vec(),
            },
            Column::Date { values, valid } => Column::Date {
                values: values[offset..offset + len].to_vec(),
                valid: valid[offset..offset + len].to_vec(),
            },
            Column::Bool { values, valid } => Column::Bool {
                values: values[offset..offset + len].to_vec(),
                valid: valid[offset..offset + len].to_vec(),
            },
            Column::Str {
                dict,
                hashes,
                codes,
                valid,
            } => Column::Str {
                dict: Arc::clone(dict),
                hashes: Arc::clone(hashes),
                codes: codes[offset..offset + len].to_vec(),
                valid: valid[offset..offset + len].to_vec(),
            },
            Column::Any { values } => Column::Any {
                values: values[offset..offset + len].to_vec(),
            },
        }
    }

    /// Gather the rows at `indices` (in order) into a new column.
    pub fn gather(&self, indices: &[u32]) -> Column {
        match self {
            Column::Int64 { values, valid } => Column::Int64 {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                valid: indices.iter().map(|&i| valid[i as usize]).collect(),
            },
            Column::Float64 { values, valid } => Column::Float64 {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                valid: indices.iter().map(|&i| valid[i as usize]).collect(),
            },
            Column::Date { values, valid } => Column::Date {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                valid: indices.iter().map(|&i| valid[i as usize]).collect(),
            },
            Column::Bool { values, valid } => Column::Bool {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                valid: indices.iter().map(|&i| valid[i as usize]).collect(),
            },
            Column::Str {
                dict,
                hashes,
                codes,
                valid,
            } => Column::Str {
                dict: Arc::clone(dict),
                hashes: Arc::clone(hashes),
                codes: indices.iter().map(|&i| codes[i as usize]).collect(),
                valid: indices.iter().map(|&i| valid[i as usize]).collect(),
            },
            Column::Any { values } => Column::Any {
                values: indices
                    .iter()
                    .map(|&i| values[i as usize].clone())
                    .collect(),
            },
        }
    }

    /// Concatenate columns end to end. Homogeneous typed inputs stay
    /// typed (string dictionaries are merged with code remapping); mixed
    /// inputs fall back to [`Column::Any`].
    pub fn concat(parts: &[&Column]) -> Column {
        use std::mem::discriminant;
        if parts.is_empty() {
            return Column::Any { values: Vec::new() };
        }
        let homogeneous = parts
            .iter()
            .all(|c| discriminant(*c) == discriminant(parts[0]));
        if !homogeneous {
            let values = parts
                .iter()
                .flat_map(|c| (0..c.len()).map(|i| c.get(i)))
                .collect();
            return Column::Any { values };
        }
        match parts[0] {
            Column::Int64 { .. } => {
                let (mut values, mut valid) = (Vec::new(), Vec::new());
                for p in parts {
                    if let Column::Int64 {
                        values: v,
                        valid: k,
                    } = p
                    {
                        values.extend_from_slice(v);
                        valid.extend_from_slice(k);
                    }
                }
                Column::Int64 { values, valid }
            }
            Column::Float64 { .. } => {
                let (mut values, mut valid) = (Vec::new(), Vec::new());
                for p in parts {
                    if let Column::Float64 {
                        values: v,
                        valid: k,
                    } = p
                    {
                        values.extend_from_slice(v);
                        valid.extend_from_slice(k);
                    }
                }
                Column::Float64 { values, valid }
            }
            Column::Date { .. } => {
                let (mut values, mut valid) = (Vec::new(), Vec::new());
                for p in parts {
                    if let Column::Date {
                        values: v,
                        valid: k,
                    } = p
                    {
                        values.extend_from_slice(v);
                        valid.extend_from_slice(k);
                    }
                }
                Column::Date { values, valid }
            }
            Column::Bool { .. } => {
                let (mut values, mut valid) = (Vec::new(), Vec::new());
                for p in parts {
                    if let Column::Bool {
                        values: v,
                        valid: k,
                    } = p
                    {
                        values.extend_from_slice(v);
                        valid.extend_from_slice(k);
                    }
                }
                Column::Bool { values, valid }
            }
            Column::Str { .. } => {
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut hashes: Vec<u64> = Vec::new();
                let mut intern: HashMap<Arc<str>, u32> = HashMap::new();
                let (mut codes, mut valid) = (Vec::new(), Vec::new());
                for p in parts {
                    if let Column::Str {
                        dict: d,
                        hashes: h,
                        codes: c,
                        valid: k,
                    } = p
                    {
                        // Remap this part's codes into the merged dictionary.
                        let remap: Vec<u32> = d
                            .iter()
                            .zip(h.iter())
                            .map(|(s, hash)| {
                                *intern.entry(Arc::clone(s)).or_insert_with(|| {
                                    dict.push(Arc::clone(s));
                                    hashes.push(*hash);
                                    (dict.len() - 1) as u32
                                })
                            })
                            .collect();
                        codes.extend(c.iter().map(|&code| remap[code as usize]));
                        valid.extend_from_slice(k);
                    }
                }
                Column::Str {
                    dict: Arc::new(dict),
                    hashes: Arc::new(hashes),
                    codes,
                    valid,
                }
            }
            Column::Any { .. } => {
                let mut values = Vec::new();
                for p in parts {
                    if let Column::Any { values: v } = p {
                        values.extend(v.iter().cloned());
                    }
                }
                Column::Any { values }
            }
        }
    }
}

/// An immutable column-major row batch.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    len: usize,
    columns: Vec<Column>,
}

impl ColumnarBatch {
    /// Build from row-major data. `arity` fixes the column count (needed
    /// for empty inputs, whose rows cannot be inspected).
    pub fn from_rows(rows: &[Row], arity: usize) -> ColumnarBatch {
        let columns = (0..arity)
            .map(|j| Column::from_values(rows.iter().map(|r| r[j].clone()).collect()))
            .collect();
        ColumnarBatch {
            len: rows.len(),
            columns,
        }
    }

    /// Build from pre-constructed columns (all the same length).
    pub fn from_columns(columns: Vec<Column>) -> ColumnarBatch {
        let len = columns.first().map_or(0, Column::len);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        ColumnarBatch { len, columns }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One column.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// The value at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Round-trip back to row-major form (materialized eagerly; the
    /// engines defer this via [`Rows::from_batch`] instead).
    pub fn to_rows(&self) -> Rows {
        Rows::from_rows(self.to_row_vec())
    }

    /// The row-major transpose itself. Column-wise: each column appends
    /// its values to every row in one typed pass, so the variant dispatch
    /// runs once per column rather than once per cell. Output is
    /// identical to materializing [`ColumnarBatch::row`] per row.
    pub fn to_row_vec(&self) -> Vec<Row> {
        let arity = self.columns.len();
        let mut rows: Vec<Row> = (0..self.len).map(|_| Row::with_capacity(arity)).collect();
        for c in &self.columns {
            c.append_rows(&mut rows);
        }
        rows
    }

    /// Exact wire size of this batch under the row encoding: equals
    /// `self.to_rows().encode().len()` (8-byte header plus every value's
    /// exact width) but is computed from column metadata alone.
    pub fn encoded_size(&self) -> usize {
        8 + self.columns.iter().map(Column::encoded_size).sum::<usize>()
    }

    /// Copy rows `offset..offset + len` into a new batch.
    pub fn slice(&self, offset: usize, len: usize) -> ColumnarBatch {
        ColumnarBatch {
            len,
            columns: self.columns.iter().map(|c| c.slice(offset, len)).collect(),
        }
    }

    /// Gather the rows at `indices` (in order) into a new batch.
    pub fn gather(&self, indices: &[u32]) -> ColumnarBatch {
        ColumnarBatch {
            len: indices.len(),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
        }
    }

    /// Concatenate batches end to end. `arity` fixes the column count
    /// when `parts` is empty.
    pub fn concat(parts: &[Arc<ColumnarBatch>], arity: usize) -> ColumnarBatch {
        if parts.is_empty() {
            return ColumnarBatch::from_rows(&[], arity);
        }
        let len = parts.iter().map(|p| p.len).sum();
        let columns = (0..parts[0].arity())
            .map(|j| {
                let cols: Vec<&Column> = parts.iter().map(|p| p.column(j)).collect();
                Column::concat(&cols)
            })
            .collect();
        ColumnarBatch { len, columns }
    }

    /// Combined fingerprint of the key columns `key_cols` at row `i`.
    /// Equal key tuples (under [`Value`] equality) always produce equal
    /// fingerprints; kernels verify candidate matches with real value
    /// comparisons, so collisions cost time, never correctness.
    pub fn key_fingerprint(&self, key_cols: &[usize], i: usize) -> u64 {
        let mut h = FNV_OFFSET;
        for &c in key_cols {
            h = mix_fingerprint(h, self.columns[c].fingerprint_at(i));
        }
        h
    }

    /// [`ColumnarBatch::key_fingerprint`] for every row at once, plus a
    /// liveness mask: `live[i]` is false iff any key column is NULL at
    /// row `i` (such rows never join, and their fingerprint slot is
    /// unspecified). For live rows `fps[i] == self.key_fingerprint(key_cols, i)`.
    pub fn key_fingerprints(&self, key_cols: &[usize]) -> (Vec<u64>, Vec<bool>) {
        let mut fps = vec![FNV_OFFSET; self.len];
        let mut live = vec![true; self.len];
        for &c in key_cols {
            self.columns[c].fold_key_fingerprints(&mut fps, &mut live);
        }
        (fps, live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_rows() -> Vec<Row> {
        vec![
            vec![
                Value::Int64(1),
                Value::str("alpha"),
                Value::Float64(1.5),
                Value::Date(9000),
                Value::Bool(true),
            ],
            vec![
                Value::Int64(2),
                Value::Null,
                Value::Float64(f64::NAN),
                Value::Null,
                Value::Bool(false),
            ],
            vec![
                Value::Null,
                Value::str("alpha"),
                Value::Float64(-0.0),
                Value::Date(-12),
                Value::Null,
            ],
            vec![
                Value::Int64(-7),
                Value::str("émoji ✓"),
                Value::Float64(2.0),
                Value::Date(0),
                Value::Bool(true),
            ],
        ]
    }

    #[test]
    fn round_trip_preserves_values_exactly() {
        let rows = mixed_rows();
        let batch = ColumnarBatch::from_rows(&rows, 5);
        let back = batch.to_rows();
        assert_eq!(back.len(), rows.len());
        for (a, b) in back.iter().zip(&rows) {
            for (x, y) in a.iter().zip(b) {
                // Bit-exact floats: compare via encoding, not PartialEq
                // (NaN != NaN under SQL equality but must round-trip).
                let mut ex = Vec::new();
                let mut ey = Vec::new();
                x.encode_into(&mut ex);
                y.encode_into(&mut ey);
                assert_eq!(ex, ey, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn encoded_size_matches_row_encoding_exactly() {
        let rows = Rows::from_rows(mixed_rows());
        let batch = ColumnarBatch::from_rows(rows.rows(), 5);
        assert_eq!(batch.encoded_size(), rows.encode().len());
        assert_eq!(batch.encoded_size(), rows.encoded_size());
        // Empty batches are header-only, like `Rows`.
        let empty = ColumnarBatch::from_rows(&[], 3);
        assert_eq!(empty.encoded_size(), 8);
        assert_eq!(empty.arity(), 3);
    }

    #[test]
    fn slice_and_gather_match_row_slicing() {
        let rows = mixed_rows();
        let batch = ColumnarBatch::from_rows(&rows, 5);
        let s = batch.slice(1, 2);
        assert_eq!(s.to_rows().rows(), &rows[1..3]);
        let g = batch.gather(&[3, 0, 3]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.row(0), rows[3]);
        assert_eq!(g.row(1), rows[0]);
        assert_eq!(g.row(2), rows[3]);
        // Sliced/gathered batches keep exact byte accounting.
        let expect: usize = 8 + rows[1..3]
            .iter()
            .flatten()
            .map(Value::estimated_exact_width)
            .sum::<usize>();
        assert_eq!(s.encoded_size(), expect);
    }

    #[test]
    fn concat_merges_dictionaries_and_preserves_bytes() {
        let rows = mixed_rows();
        let a = Arc::new(ColumnarBatch::from_rows(&rows[..2], 5));
        let b = Arc::new(ColumnarBatch::from_rows(&rows[2..], 5));
        let joined = ColumnarBatch::concat(&[a, b], 5);
        assert_eq!(joined.to_rows().rows(), &rows[..]);
        let all = ColumnarBatch::from_rows(&rows, 5);
        assert_eq!(joined.encoded_size(), all.encoded_size());
    }

    #[test]
    fn concat_of_mismatched_column_types_falls_back_to_any() {
        let a = Arc::new(ColumnarBatch::from_rows(&[vec![Value::Int64(1)]], 1));
        let b = Arc::new(ColumnarBatch::from_rows(&[vec![Value::str("x")]], 1));
        let j = ColumnarBatch::concat(&[a, b], 1);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(0, 0), Value::Int64(1));
        assert_eq!(j.get(1, 0), Value::str("x"));
    }

    #[test]
    fn mixed_typed_column_falls_back_to_any() {
        let col = Column::from_values(vec![Value::Int64(1), Value::str("x")]);
        assert!(matches!(col, Column::Any { .. }));
        assert_eq!(col.get(0), Value::Int64(1));
        assert_eq!(col.encoded_size(), 9 + 6);
    }

    #[test]
    fn fingerprints_respect_value_equality_classes() {
        // Int64 and Float64 merge numerically.
        assert_eq!(
            value_fingerprint(&Value::Int64(3)),
            value_fingerprint(&Value::Float64(3.0))
        );
        // Dates are NOT numbers.
        assert_ne!(
            value_fingerprint(&Value::Date(3)),
            value_fingerprint(&Value::Int64(3))
        );
        assert_eq!(
            value_fingerprint(&Value::str("abc")),
            value_fingerprint(&Value::str("abc"))
        );
        assert_ne!(
            value_fingerprint(&Value::str("abc")),
            value_fingerprint(&Value::str("abd"))
        );

        // Column fingerprints agree with the scalar scheme, across both
        // typed and Any layouts.
        let vals = vec![
            Value::Null,
            Value::Int64(42),
            Value::str("k"),
            Value::Float64(42.0),
            Value::Bool(true),
            Value::Date(42),
        ];
        let any = Column::Any {
            values: vals.clone(),
        };
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(any.fingerprint_at(i), value_fingerprint(v));
        }
        let ints = Column::from_values(vec![Value::Int64(42), Value::Null]);
        assert_eq!(ints.fingerprint_at(0), value_fingerprint(&Value::Int64(42)));
        assert_eq!(ints.fingerprint_at(1), value_fingerprint(&Value::Null));
        let strs = Column::from_values(vec![Value::str("k"), Value::str("k")]);
        assert_eq!(strs.fingerprint_at(0), value_fingerprint(&Value::str("k")));
        assert_eq!(strs.fingerprint_at(0), strs.fingerprint_at(1));
    }

    #[test]
    fn key_fingerprint_is_order_sensitive() {
        let rows = vec![
            vec![Value::Int64(1), Value::Int64(2)],
            vec![Value::Int64(2), Value::Int64(1)],
            vec![Value::Int64(1), Value::Int64(2)],
        ];
        let b = ColumnarBatch::from_rows(&rows, 2);
        assert_eq!(b.key_fingerprint(&[0, 1], 0), b.key_fingerprint(&[0, 1], 2));
        assert_ne!(b.key_fingerprint(&[0, 1], 0), b.key_fingerprint(&[0, 1], 1));
    }

    #[test]
    fn eq_at_agrees_with_value_equality_across_layouts() {
        let vals = vec![
            Value::Null,
            Value::Int64(42),
            Value::Float64(42.0),
            Value::Float64(-0.0),
            Value::Float64(0.0),
            Value::Float64(f64::NAN),
            Value::Int64(0),
            Value::Date(42),
            Value::Bool(true),
            Value::str("k"),
            Value::str("m"),
        ];
        // Layouts to cross-compare: the Any fallback, plus each
        // homogeneous typed projection of the same values.
        let any = Column::Any {
            values: vals.clone(),
        };
        let typed: Vec<Column> = vec![
            Column::from_values(vec![Value::Int64(42), Value::Int64(0), Value::Null]),
            Column::from_values(vec![
                Value::Float64(42.0),
                Value::Float64(-0.0),
                Value::Float64(0.0),
                Value::Float64(f64::NAN),
                Value::Null,
            ]),
            Column::from_values(vec![Value::Date(42), Value::Null]),
            Column::from_values(vec![Value::Bool(true), Value::Bool(false), Value::Null]),
            Column::from_values(vec![Value::str("k"), Value::str("m"), Value::Null]),
        ];
        let mut cols: Vec<&Column> = vec![&any];
        cols.extend(typed.iter());
        for a in &cols {
            for b in &cols {
                for i in 0..a.len() {
                    for j in 0..b.len() {
                        assert_eq!(
                            a.eq_at(i, b, j),
                            a.get(i) == b.get(j),
                            "layouts {a:?}[{i}] vs {b:?}[{j}]"
                        );
                    }
                }
            }
        }
        // Distinct dictionaries with equal content still compare equal.
        let s1 = Column::from_values(vec![Value::str("dup")]);
        let s2 = Column::from_values(vec![Value::str("dup"), Value::str("no")]);
        assert!(s1.eq_at(0, &s2, 0));
        assert!(!s1.eq_at(0, &s2, 1));
    }

    #[test]
    fn dictionary_interning_dedupes_repeated_strings() {
        let col = Column::from_values(vec![
            Value::str("dup"),
            Value::str("dup"),
            Value::str("other"),
        ]);
        if let Column::Str { dict, .. } = &col {
            assert_eq!(dict.len(), 2);
        } else {
            panic!("expected dictionary column");
        }
    }
}
