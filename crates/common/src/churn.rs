//! Live policy-churn plumbing shared by the catalog service, the engine,
//! and both executors.
//!
//! The versioned policy-catalog log lives in `geoqp-policy` and its
//! replication transport in `geoqp-net`; what the *executors* need from
//! them is deliberately tiny and dependency-free, so it lives here:
//!
//! * [`CatalogPin`] — the `(seq, epoch)` snapshot a query pins at
//!   admission. Epochs are chain hashes (unordered), so freshness is
//!   proven by the monotone log **sequence number**, and the epoch rides
//!   along to key checkpoints, memos, and plan caches.
//! * [`ChurnSignal`] — how revocations reach in-flight queries: a set of
//!   pre-planned, step-triggered events (deterministic replay for the
//!   bench and chaos harnesses) plus a live published head (the server's
//!   `update_tenant_policies` path). Grants never appear here — they only
//!   take effect for queries admitted later.
//! * [`StaleGuard`] — the fail-safe for replication lag: the set of sites
//!   whose catalog replica has *proven* it applied the pinned sequence.
//!   A site outside the set refuses to originate a transfer with
//!   [`GeoError::CatalogStale`] rather than audit against old policy.

use crate::error::{GeoError, Result};
use crate::location::{Location, LocationSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// The catalog snapshot a query pins at admission: the log sequence
/// number it was admitted under and the deterministic epoch that
/// sequence hashes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CatalogPin {
    /// Monotone catalog-log sequence number (0 = the base catalog).
    pub seq: u64,
    /// Deterministic chain epoch of the log prefix up to `seq`.
    pub epoch: u64,
}

impl CatalogPin {
    /// A pin at `(seq, epoch)`.
    pub fn new(seq: u64, epoch: u64) -> CatalogPin {
        CatalogPin { seq, epoch }
    }
}

/// One pre-planned churn event: at executor step `step`, log entry
/// `seq` (epoch `epoch`) becomes visible to in-flight queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Executor step (the runtime's deterministic per-batch clock) at
    /// which the entry lands.
    pub step: u64,
    /// Log sequence number of the entry.
    pub seq: u64,
    /// Chain epoch at that sequence.
    pub epoch: u64,
    /// Whether the entry revokes a policy. Only revocations abort
    /// in-flight queries; grants wait for the next admission.
    pub revocation: bool,
}

/// The channel through which catalog changes reach in-flight queries.
///
/// Two sources feed it: *planned* events with deterministic trigger
/// steps (seeded experiments replay identically), and a *live* head
/// published by the service when an administrator revokes a policy
/// mid-run. Executors poll [`ChurnSignal::revoked_since`] at batch
/// granularity; a hit aborts the attempt with
/// [`GeoError::PolicyChurn`] so the failover loop can re-pin.
#[derive(Debug, Default)]
pub struct ChurnSignal {
    planned: Vec<ChurnEvent>,
    live_seq: AtomicU64,
    live_epoch: AtomicU64,
    live_revocation: AtomicU64,
    /// Sequence of the newest live-published *grant*, feeding
    /// [`ChurnSignal::granted_since`]: a refused in-flight query may
    /// re-pin forward onto it, because grants only grow the legal set.
    live_grant: AtomicU64,
}

impl ChurnSignal {
    /// A signal with no planned events and no published head.
    pub fn new() -> ChurnSignal {
        ChurnSignal::default()
    }

    /// A signal carrying pre-planned, step-triggered events (sorted by
    /// trigger step internally; ties resolve by sequence).
    pub fn with_planned(mut events: Vec<ChurnEvent>) -> ChurnSignal {
        events.sort_by_key(|e| (e.step, e.seq));
        ChurnSignal {
            planned: events,
            ..ChurnSignal::default()
        }
    }

    /// Publish a new live head (the server path). `revocation` marks
    /// whether the update contained at least one revoke; only those
    /// interrupt in-flight queries.
    pub fn publish(&self, seq: u64, epoch: u64, revocation: bool) {
        // Seq is monotone per log, so a plain max-update suffices.
        if seq > self.live_seq.load(Ordering::Acquire) {
            self.live_epoch.store(epoch, Ordering::Release);
            self.live_seq.store(seq, Ordering::Release);
            if revocation {
                self.live_revocation.store(seq, Ordering::Release);
            } else {
                self.live_grant.store(seq, Ordering::Release);
            }
        }
    }

    /// The newest *revocation* visible at executor step `step` that the
    /// pin at `pin_seq` has not seen, if any — the head the aborting
    /// query should re-pin to. Returns the highest-sequence candidate
    /// so one abort absorbs a burst of revocations.
    pub fn revoked_since(&self, pin_seq: u64, step: u64) -> Option<CatalogPin> {
        let mut head: Option<CatalogPin> = None;
        for e in &self.planned {
            if e.step <= step && e.revocation && e.seq > pin_seq {
                let better = head.is_none_or(|h| e.seq > h.seq);
                if better {
                    head = Some(CatalogPin::new(e.seq, e.epoch));
                }
            }
        }
        let live_rev = self.live_revocation.load(Ordering::Acquire);
        if live_rev > pin_seq && head.is_none_or(|h| live_rev > h.seq) {
            // The epoch published alongside the head is at least as new
            // as the revocation itself; re-pin to the full head.
            head = Some(CatalogPin::new(
                self.live_seq.load(Ordering::Acquire).max(live_rev),
                self.live_epoch.load(Ordering::Acquire),
            ));
        }
        head
    }

    /// The newest *grant* visible at executor step `step` that the pin at
    /// `pin_seq` has not seen, if any — the head a query refused
    /// `NonCompliant` under its pin may re-pin forward to. Sound because
    /// grants are additive: the legal set at the returned head is a
    /// superset of the one at `pin_seq` plus whatever revocations the
    /// re-pin already absorbed, and the retry re-runs the full compliant
    /// optimizer and Definition-1 audit under the new snapshot anyway.
    ///
    /// Planned grants are gated by their trigger step (deterministic
    /// replay); live-published grants really happened, so they are always
    /// visible.
    pub fn granted_since(&self, pin_seq: u64, step: u64) -> Option<CatalogPin> {
        let mut head: Option<CatalogPin> = None;
        for e in &self.planned {
            if e.step <= step && !e.revocation && e.seq > pin_seq {
                let better = head.is_none_or(|h| e.seq > h.seq);
                if better {
                    head = Some(CatalogPin::new(e.seq, e.epoch));
                }
            }
        }
        let live_grant = self.live_grant.load(Ordering::Acquire);
        if live_grant > pin_seq && head.is_none_or(|h| live_grant > h.seq) {
            // Re-pin to the full live head: it is at least as new as the
            // grant, and newer revocations in between must be absorbed,
            // not skipped.
            head = Some(CatalogPin::new(
                self.live_seq.load(Ordering::Acquire).max(live_grant),
                self.live_epoch.load(Ordering::Acquire),
            ));
        }
        head
    }

    /// Whether any planned event exists (used by executors to skip the
    /// per-batch scan entirely on churn-free runs).
    pub fn is_idle(&self) -> bool {
        self.planned.is_empty() && self.live_revocation.load(Ordering::Acquire) == 0
    }
}

/// Per-site catalog freshness proof for one pinned sequence: a site in
/// `fresh` has applied (and chain-verified) every log entry up to the
/// pin. Built by the catalog service from its replica states at
/// execution start; consulted by executors before a transfer leaves a
/// site.
#[derive(Debug, Clone)]
pub struct StaleGuard {
    pin: CatalogPin,
    fresh: LocationSet,
    /// Sites whose catalog-plane link to the coordinator is severed for
    /// good (open-ended crash or partition): their lag is unbounded, and
    /// refusals name them as permanently stale instead of merely behind.
    unbounded: LocationSet,
}

impl StaleGuard {
    /// A guard for `pin` with the given proven-fresh sites.
    pub fn new(pin: CatalogPin, fresh: LocationSet) -> StaleGuard {
        StaleGuard {
            pin,
            fresh,
            unbounded: LocationSet::new(),
        }
    }

    /// Mark the sites whose replication lag can never clear.
    pub fn with_unbounded(mut self, unbounded: LocationSet) -> StaleGuard {
        self.unbounded = unbounded;
        self
    }

    /// Whether `site`'s lag is unbounded (severed from the coordinator).
    pub fn is_unbounded(&self, site: &Location) -> bool {
        self.unbounded.contains(site)
    }

    /// The pin this guard proves freshness against.
    pub fn pin(&self) -> CatalogPin {
        self.pin
    }

    /// Whether `site`'s replica has proven it applied the pinned
    /// sequence.
    pub fn sees(&self, site: &Location) -> bool {
        self.fresh.contains(site)
    }

    /// Fail-safe check before `site` originates a transfer: stale
    /// replicas refuse with [`GeoError::CatalogStale`] rather than
    /// audit the transfer against an old catalog.
    pub fn check_origin(&self, site: &Location) -> Result<()> {
        if self.sees(site) {
            Ok(())
        } else {
            let unbounded = self.is_unbounded(site);
            let cause = if unbounded {
                "its catalog-plane link to the coordinator is severed \
                 (unbounded lag)"
            } else {
                "its replica is behind"
            };
            Err(GeoError::catalog_stale(
                site.clone(),
                self.pin.seq,
                self.pin.epoch,
                unbounded,
                format!(
                    "site {site} cannot prove it has seen catalog seq {} \
                     (epoch {:016x}): {cause}; refusing to originate the \
                     transfer",
                    self.pin.seq, self.pin.epoch
                ),
            ))
        }
    }
}

/// Everything an executor needs to enforce live churn on one attempt:
/// the pin the query was admitted under, the signal revocations arrive
/// on, and (optionally) the per-site replica-freshness guard. Built by
/// the catalog service, re-built by the failover loop after each
/// churn-driven re-pin.
#[derive(Debug, Clone)]
pub struct ChurnWatch {
    /// The catalog snapshot this attempt executes under.
    pub pin: CatalogPin,
    /// Where revocations land (planned events and/or live publishes).
    pub signal: std::sync::Arc<ChurnSignal>,
    /// Per-site freshness proof for `pin`; `None` skips the stale-origin
    /// check (single-site deployments, or the server path where every
    /// worker reads the coordinator's log directly).
    pub stale: Option<std::sync::Arc<StaleGuard>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_revocations_trigger_by_step_and_seq() {
        let sig = ChurnSignal::with_planned(vec![
            ChurnEvent {
                step: 4,
                seq: 2,
                epoch: 0xa,
                revocation: true,
            },
            ChurnEvent {
                step: 9,
                seq: 3,
                epoch: 0xb,
                revocation: true,
            },
            ChurnEvent {
                step: 1,
                seq: 1,
                epoch: 0x9,
                revocation: false, // a grant: never aborts anything
            },
        ]);
        assert!(!sig.is_idle());
        assert_eq!(sig.revoked_since(0, 3), None);
        assert_eq!(sig.revoked_since(0, 4), Some(CatalogPin::new(2, 0xa)));
        // A burst: the newest visible revocation wins.
        assert_eq!(sig.revoked_since(0, 100), Some(CatalogPin::new(3, 0xb)));
        // A pin that already saw seq 3 is undisturbed.
        assert_eq!(sig.revoked_since(3, 100), None);
    }

    #[test]
    fn live_publish_reaches_pinned_queries() {
        let sig = ChurnSignal::new();
        assert!(sig.is_idle());
        sig.publish(5, 0xfeed, false); // grants don't interrupt
        assert_eq!(sig.revoked_since(0, 0), None);
        sig.publish(6, 0xbeef, true);
        assert_eq!(sig.revoked_since(5, 0), Some(CatalogPin::new(6, 0xbeef)));
        assert_eq!(sig.revoked_since(6, 0), None);
        // Stale publishes (lower seq) are ignored.
        sig.publish(2, 0x2, true);
        assert_eq!(sig.revoked_since(5, 0), Some(CatalogPin::new(6, 0xbeef)));
    }

    #[test]
    fn stale_guard_refuses_unproven_origins() {
        let mut fresh = LocationSet::new();
        fresh.insert(Location::new("L1"));
        let mut severed = LocationSet::new();
        severed.insert(Location::new("L3"));
        let guard = StaleGuard::new(CatalogPin::new(2, 0xc0ffee), fresh).with_unbounded(severed);
        assert!(guard.check_origin(&Location::new("L1")).is_ok());
        let err = guard.check_origin(&Location::new("L2")).unwrap_err();
        assert_eq!(err.kind(), "catalog-stale");
        assert!(err.message().contains("seq 2"));
        // The refusal names the lagging site in the typed payload.
        assert_eq!(err.stale_site(), Some((&Location::new("L2"), false)));
        // A severed replica is named as unbounded lag.
        let err = guard.check_origin(&Location::new("L3")).unwrap_err();
        assert_eq!(err.stale_site(), Some((&Location::new("L3"), true)));
        assert!(err.message().contains("unbounded lag"));
    }

    #[test]
    fn planned_grants_become_visible_by_step() {
        let sig = ChurnSignal::with_planned(vec![
            ChurnEvent {
                step: 2,
                seq: 1,
                epoch: 0x1,
                revocation: true,
            },
            ChurnEvent {
                step: 4,
                seq: 2,
                epoch: 0x2,
                revocation: false,
            },
            ChurnEvent {
                step: 9,
                seq: 3,
                epoch: 0x3,
                revocation: false,
            },
        ]);
        assert_eq!(sig.granted_since(0, 3), None, "grant not yet released");
        assert_eq!(sig.granted_since(0, 4), Some(CatalogPin::new(2, 0x2)));
        // A burst: the newest visible grant wins.
        assert_eq!(sig.granted_since(0, 100), Some(CatalogPin::new(3, 0x3)));
        // A pin that already saw seq 3 gains nothing from retrying.
        assert_eq!(sig.granted_since(3, 100), None);
        // Revocations never count as grants.
        assert_eq!(sig.granted_since(0, 2), None);
    }

    #[test]
    fn live_grants_are_always_visible() {
        let sig = ChurnSignal::new();
        assert_eq!(sig.granted_since(0, 0), None);
        sig.publish(4, 0xaaaa, false);
        assert_eq!(sig.granted_since(0, 0), Some(CatalogPin::new(4, 0xaaaa)));
        // A newer revocation moves the head; the grant re-pin absorbs it.
        sig.publish(5, 0xbbbb, true);
        assert_eq!(sig.granted_since(0, 0), Some(CatalogPin::new(5, 0xbbbb)));
        assert_eq!(sig.granted_since(4, 0), None, "no grant after the pin");
    }
}
