//! Qualified table references.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `database.table` reference.
///
/// Following the paper's model (Section 3), each location houses exactly one
/// database, so the database component also identifies the site the table is
/// stored at. Policy expressions reference tables as `db-2.partsupp`
/// (Table 3), and unqualified references resolve against the global schema.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableRef {
    /// Owning database, e.g. `db-1`. `None` for references against the
    /// global schema that are resolved later.
    pub database: Option<String>,
    /// Table name, lower-cased at construction for case-insensitive SQL.
    pub table: String,
}

impl TableRef {
    /// An unqualified reference (`customer`).
    pub fn bare(table: impl AsRef<str>) -> TableRef {
        TableRef {
            database: None,
            table: table.as_ref().to_ascii_lowercase(),
        }
    }

    /// A qualified reference (`db-1.customer`).
    pub fn qualified(database: impl AsRef<str>, table: impl AsRef<str>) -> TableRef {
        TableRef {
            database: Some(database.as_ref().to_ascii_lowercase()),
            table: table.as_ref().to_ascii_lowercase(),
        }
    }

    /// Parse `db.table` or `table`.
    pub fn parse(s: &str) -> TableRef {
        match s.split_once('.') {
            Some((db, t)) => TableRef::qualified(db, t),
            None => TableRef::bare(s),
        }
    }

    /// Whether this reference matches another, treating a missing database
    /// qualifier as a wildcard.
    pub fn matches(&self, other: &TableRef) -> bool {
        if self.table != other.table {
            return false;
        }
        match (&self.database, &other.database) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.database {
            Some(db) => write!(f, "{db}.{}", self.table),
            None => f.write_str(&self.table),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_qualified_and_bare() {
        assert_eq!(
            TableRef::parse("db-2.PartSupp"),
            TableRef::qualified("db-2", "partsupp")
        );
        assert_eq!(TableRef::parse("Customer"), TableRef::bare("customer"));
    }

    #[test]
    fn matching_treats_missing_db_as_wildcard() {
        let q = TableRef::qualified("db-1", "customer");
        let b = TableRef::bare("customer");
        assert!(b.matches(&q));
        assert!(q.matches(&b));
        assert!(q.matches(&q));
        assert!(!q.matches(&TableRef::qualified("db-2", "customer")));
        assert!(!b.matches(&TableRef::bare("orders")));
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(
            TableRef::parse("db-1.customer").to_string(),
            "db-1.customer"
        );
        assert_eq!(TableRef::parse("orders").to_string(), "orders");
    }
}
