//! Property tests for the wire format and value ordering laws.

use geoqp_common::{value::civil_from_days, value::days_from_civil, Row, Rows, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int64),
        any::<f64>().prop_map(Value::Float64),
        ".{0,24}".prop_map(Value::str),
        (-200_000i32..200_000).prop_map(Value::Date),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    proptest::collection::vec(arb_value(), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value survives the wire encoding bit-for-bit (floats by
    /// total order, i.e. NaN payloads included).
    #[test]
    fn value_round_trips(v in arb_value()) {
        let mut buf = Vec::new();
        let n = v.encode_into(&mut buf);
        prop_assert_eq!(n, buf.len());
        let (back, used) = Value::decode_from(&buf).expect("decode");
        prop_assert_eq!(used, n);
        prop_assert_eq!(back.total_cmp(&v), Ordering::Equal);
    }

    /// Batches round trip, and encoded_size is exact.
    #[test]
    fn batch_round_trips(rows in proptest::collection::vec(arb_row(), 0..12)) {
        // Give every row the arity of the first (mixed arity is invalid).
        let arity = rows.first().map(Vec::len).unwrap_or(0);
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(arity, Value::Null);
                r
            })
            .collect();
        let batch = Rows::from_rows(rows);
        let buf = batch.encode();
        prop_assert_eq!(buf.len(), batch.encoded_size());
        let back = Rows::decode(&buf, arity).expect("decode");
        prop_assert_eq!(back.len(), batch.len());
        for (a, b) in back.iter().zip(batch.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.total_cmp(y), Ordering::Equal);
            }
        }
    }

    /// Truncated buffers never decode (no panics, no partial reads).
    #[test]
    fn truncation_is_detected(rows in proptest::collection::vec(arb_row(), 1..6), cut in 1usize..16) {
        let arity = rows[0].len();
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(arity, Value::Null);
                r
            })
            .collect();
        let batch = Rows::from_rows(rows);
        let buf = batch.encode();
        if cut < buf.len() {
            let truncated = &buf[..buf.len() - cut];
            prop_assert!(Rows::decode(truncated, arity).is_none());
        }
    }

    /// total_cmp is a total order: antisymmetric and transitive on samples.
    #[test]
    fn total_cmp_laws(a in arb_value(), b in arb_value(), c in arb_value()) {
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (≤).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // Hash consistency with equality.
        if a.total_cmp(&b) == Ordering::Equal {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Date conversion is a bijection over a wide range.
    #[test]
    fn civil_date_bijection(days in -200_000i32..200_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }
}
