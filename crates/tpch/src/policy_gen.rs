//! Policy-expression generators for the evaluation's four template sets
//! (Section 7.1): **T** (whole tables), **C** (column lists), **CR**
//! (columns + row conditions), and **CR+A** (CR plus aggregate
//! expressions).
//!
//! Each generated set consists of a crafted base — designed, like the
//! paper's, so that *every* evaluated query retains at least one compliant
//! plan — plus deterministic random filler expressions up to the requested
//! count. Filler only ever *adds* permissions (the disclosure model is
//! additive), so the compliant-plan guarantee is preserved at any size.

use crate::schema::schema_of;
use geoqp_common::{GeoError, LocationPattern, LocationSet, Result, TableRef, Value};
use geoqp_expr::{AggFunc, ScalarExpr};
use geoqp_policy::{PolicyCatalog, PolicyExpression, ShipAttrs};
use geoqp_storage::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four expression templates of Section 7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyTemplate {
    /// `ship * from t to locations` — whole-table restrictions.
    T,
    /// `ship attrs from t to locations` — column restrictions.
    C,
    /// C plus `where condition` — column + row restrictions.
    CR,
    /// CR plus aggregate expressions.
    CRA,
}

impl PolicyTemplate {
    /// Display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            PolicyTemplate::T => "T",
            PolicyTemplate::C => "C",
            PolicyTemplate::CR => "CR",
            PolicyTemplate::CRA => "CR+A",
        }
    }

    /// The paper's base set size (8 for T, 10 otherwise).
    pub fn base_count(self) -> usize {
        match self {
            PolicyTemplate::T => 8,
            _ => 10,
        }
    }
}

/// The columns each evaluated query reads, per table — the base sets grant
/// exactly these so that every query keeps a compliant plan.
pub(crate) fn needed_columns(table: &str) -> &'static [&'static str] {
    match table {
        "customer" => &[
            "c_custkey",
            "c_nationkey",
            "c_mktsegment",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_address",
        ],
        "orders" => &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        "lineitem" => &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
            "l_quantity",
            "l_shipdate",
            "l_returnflag",
        ],
        "supplier" => &[
            "s_suppkey",
            "s_nationkey",
            "s_acctbal",
            "s_name",
            "s_address",
            "s_phone",
        ],
        "part" => &["p_partkey", "p_size", "p_type", "p_name", "p_mfgr"],
        "partsupp" => &["ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"],
        "nation" => &["n_nationkey", "n_name", "n_regionkey"],
        "region" => &["r_regionkey", "r_name"],
        _ => &[],
    }
}

/// The base destination lists: unrestricted for the small/dimension
/// tables, pinched for the big fact-side tables so that compliance
/// actually binds (this is what makes the traditional baseline violate).
fn base_destinations(table: &str, template: PolicyTemplate) -> LocationPattern {
    // Every grant includes L4 (the lineitem site), so any combination of
    // tables can legally meet there — the compliant-plan guarantee — while
    // movement toward other sites binds and trips the baseline.
    match table {
        "customer" => LocationPattern::Set(LocationSet::from_iter(["L1", "L3", "L4", "L5"])),
        "orders" => LocationPattern::Set(LocationSet::from_iter(["L1", "L3", "L4"])),
        "supplier" => LocationPattern::Set(LocationSet::from_iter(["L2", "L3", "L4"])),
        "lineitem" => LocationPattern::Set(LocationSet::from_iter(["L1", "L3", "L4"])),
        // In the row-restricted sets, part is governed by the e4-style
        // condition instead of a destination pinch (its grant then points
        // at L4, like Table 3's e4).
        "part" => match template {
            PolicyTemplate::CR | PolicyTemplate::CRA => {
                LocationPattern::Set(LocationSet::from_iter(["L4"]))
            }
            _ => LocationPattern::Set(LocationSet::from_iter(["L3", "L4"])),
        },
        "partsupp" => LocationPattern::Set(LocationSet::from_iter(["L2", "L3", "L4"])),
        "nation" | "region" => {
            LocationPattern::Set(LocationSet::from_iter(["L1", "L3", "L4", "L5"]))
        }
        _ => LocationPattern::Star,
    }
}

fn register(cat: &mut PolicyCatalog, catalog: &Catalog, e: PolicyExpression) -> Result<()> {
    let entries = catalog.resolve(&e.table);
    let entry = entries
        .first()
        .ok_or_else(|| GeoError::Policy(format!("unknown table `{}`", e.table)))?;
    cat.register(e, &entry.schema)?;
    Ok(())
}

/// The exact Table 3 snippet (e1–e5).
pub fn table3_policies(catalog: &Catalog) -> Result<PolicyCatalog> {
    let mut cat = PolicyCatalog::new();
    let texts = [
        "ship * from db-5.nation to *",
        "ship * from db-5.region to *",
        "ship ps_partkey, ps_suppkey, ps_supplycost from db-2.partsupp to L3, L4",
        "ship p_partkey, p_mfgr, p_size, p_type, p_name from db-3.part to L4 \
         where p_size > 40 OR p_type LIKE '%COPPER%'",
        "ship l_extendedprice, l_discount as aggregates sum from db-4.lineitem to L1 \
         group by l_suppkey, l_orderkey",
    ];
    for t in texts {
        let e = geoqp_parser::parse_policy(t)?;
        register(&mut cat, catalog, e)?;
    }
    Ok(cat)
}

/// Eight `ship * from t to *` expressions — the no-restriction policy set
/// behind the minimal-overhead experiment (Figure 6(b)).
pub fn no_restriction_policies(catalog: &Catalog) -> Result<PolicyCatalog> {
    star_policies_with_destinations(catalog, LocationPattern::Star)
}

/// Eight `ship * from t to <destinations>` expressions with an explicit
/// destination pattern — used by the #to-locations scalability experiment
/// (Figure 8).
pub fn star_policies_with_destinations(
    catalog: &Catalog,
    to: LocationPattern,
) -> Result<PolicyCatalog> {
    let mut cat = PolicyCatalog::new();
    for t in crate::schema::TABLES {
        register(
            &mut cat,
            catalog,
            PolicyExpression::basic(TableRef::bare(t), ShipAttrs::Star, to.clone(), None),
        )?;
    }
    Ok(cat)
}

/// Generate a policy set for a template with `count` expressions (at least
/// the template's base count), deterministically from `seed`.
pub fn generate_policies(
    catalog: &Catalog,
    template: PolicyTemplate,
    count: usize,
    seed: u64,
) -> Result<PolicyCatalog> {
    let mut cat = PolicyCatalog::new();
    base_set(&mut cat, catalog, template)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    while cat.len() < count.max(cat.len()) {
        let e = filler_expression(&mut rng, template);
        register(&mut cat, catalog, e)?;
    }
    Ok(cat)
}

fn base_set(cat: &mut PolicyCatalog, catalog: &Catalog, template: PolicyTemplate) -> Result<()> {
    for table in crate::schema::TABLES {
        let attrs = match template {
            PolicyTemplate::T => ShipAttrs::Star,
            _ => ShipAttrs::list(needed_columns(table)),
        };
        // Row restrictions bind on the two tables the paper's Table 3
        // restricts: part (the e4-style disjunction) and lineitem
        // (a ship-date window).
        let predicate = match template {
            PolicyTemplate::CR | PolicyTemplate::CRA => match table {
                "part" => Some(
                    ScalarExpr::col("p_size")
                        .gt(ScalarExpr::lit(40i64))
                        .or(ScalarExpr::col("p_type").like("%COPPER%")),
                ),
                "lineitem" => Some(
                    // A window Q3's own ship-date predicate does NOT
                    // imply, so raw line items stay at their site in the
                    // evaluated queries (Figure 5(d/e)'s setup).
                    ScalarExpr::col("l_shipdate").gt(ScalarExpr::lit(Value::date(1995, 6, 30))),
                ),
                _ => None,
            },
            _ => None,
        };
        register(
            cat,
            catalog,
            PolicyExpression::basic(
                TableRef::bare(table),
                attrs,
                base_destinations(table, template),
                predicate,
            ),
        )?;
    }
    // Column/row templates have 10 base expressions: add two more grants.
    match template {
        PolicyTemplate::T => {}
        PolicyTemplate::C => {
            register(
                cat,
                catalog,
                PolicyExpression::basic(
                    TableRef::bare("customer"),
                    ShipAttrs::list(["c_mktsegment", "c_nationkey"]),
                    LocationPattern::Star,
                    None,
                ),
            )?;
            register(
                cat,
                catalog,
                PolicyExpression::basic(
                    TableRef::bare("supplier"),
                    ShipAttrs::list(["s_name", "s_nationkey"]),
                    LocationPattern::Star,
                    None,
                ),
            )?;
        }
        PolicyTemplate::CR | PolicyTemplate::CRA => {
            // An unconditioned lineitem grant confined to the fact-side
            // sites keeps part⋈lineitem work feasible at L3 even when the
            // conditioned expressions do not apply; raw lineitem still
            // cannot reach L1 without the ship-date window binding.
            register(
                cat,
                catalog,
                PolicyExpression::basic(
                    TableRef::bare("lineitem"),
                    ShipAttrs::list(needed_columns("lineitem")),
                    LocationPattern::Set(LocationSet::from_iter(["L3", "L4"])),
                    None,
                ),
            )?;
            if template == PolicyTemplate::CRA {
                // The e5-style lineitem aggregate (enables the
                // Figure 5(e) aggregation pushdown toward L1).
                register(
                    cat,
                    catalog,
                    PolicyExpression::aggregate(
                        TableRef::bare("lineitem"),
                        ShipAttrs::list(["l_extendedprice", "l_discount"]),
                        [AggFunc::Sum],
                        ["l_orderkey".to_string(), "l_suppkey".to_string()],
                        LocationPattern::Set(LocationSet::from_iter(["L1"])),
                        None,
                    ),
                )?;
            } else {
                register(
                    cat,
                    catalog,
                    PolicyExpression::basic(
                        TableRef::bare("customer"),
                        ShipAttrs::list(["c_mktsegment", "c_nationkey"]),
                        LocationPattern::Star,
                        None,
                    ),
                )?;
            }
        }
    }
    Ok(())
}

/// A random additive filler expression.
fn filler_expression(rng: &mut StdRng, template: PolicyTemplate) -> PolicyExpression {
    let tables = crate::schema::TABLES;
    let table = tables[rng.gen_range(0..tables.len())];
    let schema = schema_of(table).expect("built-in TPC-H table");
    let all: Vec<&str> = schema.names();
    let n_attrs = rng.gen_range(1..=3.min(all.len()));
    let mut attrs: Vec<&str> = Vec::new();
    for _ in 0..n_attrs {
        let c = all[rng.gen_range(0..all.len())];
        if !attrs.contains(&c) {
            attrs.push(c);
        }
    }
    let n_locs = rng.gen_range(1..=3usize);
    let locs: Vec<String> = (0..n_locs)
        .map(|_| format!("L{}", rng.gen_range(1..=5)))
        .collect();
    let to = LocationPattern::Set(LocationSet::from_iter(locs));

    let predicate =
        if matches!(template, PolicyTemplate::CR | PolicyTemplate::CRA) && rng.gen_bool(0.5) {
            random_predicate(rng, table)
        } else {
            None
        };

    if template == PolicyTemplate::CRA && rng.gen_bool(0.3) {
        if let Some((agg_col, group_col)) = aggregatable(table) {
            return PolicyExpression::aggregate(
                TableRef::bare(table),
                ShipAttrs::list([agg_col]),
                [AggFunc::Sum, AggFunc::Avg],
                [group_col.to_string()],
                to,
                predicate,
            );
        }
    }
    PolicyExpression::basic(TableRef::bare(table), ShipAttrs::list(attrs), to, predicate)
}

/// The property-file analog: which column of a table can be aggregated,
/// grouped by which key.
fn aggregatable(table: &str) -> Option<(&'static str, &'static str)> {
    match table {
        "customer" => Some(("c_acctbal", "c_nationkey")),
        "supplier" => Some(("s_acctbal", "s_nationkey")),
        "orders" => Some(("o_totalprice", "o_custkey")),
        "lineitem" => Some(("l_quantity", "l_orderkey")),
        "partsupp" => Some(("ps_availqty", "ps_partkey")),
        "part" => Some(("p_retailprice", "p_mfgr")),
        _ => None,
    }
}

/// A random row condition over a table (the range/LIKE pools of the
/// property file).
fn random_predicate(rng: &mut StdRng, table: &str) -> Option<ScalarExpr> {
    let e = match table {
        "customer" => {
            ScalarExpr::col("c_acctbal").gt(ScalarExpr::lit(rng.gen_range(-500..5000) as f64))
        }
        "supplier" => {
            ScalarExpr::col("s_acctbal").gt(ScalarExpr::lit(rng.gen_range(-500..5000) as f64))
        }
        "orders" => ScalarExpr::col("o_orderdate").gt(ScalarExpr::lit(Value::date(
            rng.gen_range(1992..1998),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
        ))),
        "lineitem" => {
            ScalarExpr::col("l_quantity").lt(ScalarExpr::lit(rng.gen_range(10..50) as i64))
        }
        "part" => ScalarExpr::col("p_size").gt(ScalarExpr::lit(rng.gen_range(1..45) as i64)),
        "partsupp" => {
            ScalarExpr::col("ps_availqty").gt(ScalarExpr::lit(rng.gen_range(100..5000) as i64))
        }
        _ => return None,
    };
    Some(e)
}

/// Public view of the per-table covered-column pool (used by the ad-hoc
/// query generator so that generated queries stay within granted columns).
pub fn needed_columns_public(table: &str) -> &'static [&'static str] {
    needed_columns(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::paper_catalog;
    use geoqp_policy::PolicyKind;

    #[test]
    fn table3_snippet_registers() {
        let c = paper_catalog(1.0);
        let cat = table3_policies(&c).unwrap();
        assert_eq!(cat.len(), 5);
        let (basic, agg) = cat.kind_counts();
        assert_eq!(basic, 4);
        assert_eq!(agg, 1);
    }

    #[test]
    fn base_counts_match_paper() {
        let c = paper_catalog(1.0);
        for (t, n) in [
            (PolicyTemplate::T, 8),
            (PolicyTemplate::C, 10),
            (PolicyTemplate::CR, 10),
            (PolicyTemplate::CRA, 10),
        ] {
            let cat = generate_policies(&c, t, t.base_count(), 1).unwrap();
            assert_eq!(cat.len(), n, "{}", t.name());
        }
    }

    #[test]
    fn generation_is_deterministic_and_scales() {
        let c = paper_catalog(1.0);
        let a = generate_policies(&c, PolicyTemplate::CRA, 50, 9).unwrap();
        let b = generate_policies(&c, PolicyTemplate::CRA, 50, 9).unwrap();
        assert_eq!(a.len(), 50);
        assert_eq!(
            a.expressions()
                .iter()
                .map(|e| e.expr.to_string())
                .collect::<Vec<_>>(),
            b.expressions()
                .iter()
                .map(|e| e.expr.to_string())
                .collect::<Vec<_>>()
        );
        let big = generate_policies(&c, PolicyTemplate::CRA, 100, 9).unwrap();
        assert_eq!(big.len(), 100);
    }

    #[test]
    fn cr_template_has_row_conditions() {
        let c = paper_catalog(1.0);
        let cat = generate_policies(&c, PolicyTemplate::CR, 10, 1).unwrap();
        let with_pred = cat
            .expressions()
            .iter()
            .filter(|e| e.expr.predicate.is_some())
            .count();
        assert!(with_pred >= 2, "part and lineitem carry conditions");
        assert!(cat
            .expressions()
            .iter()
            .all(|e| matches!(e.expr.kind, PolicyKind::Basic)));
    }

    #[test]
    fn cra_template_has_aggregates() {
        let c = paper_catalog(1.0);
        let cat = generate_policies(&c, PolicyTemplate::CRA, 10, 1).unwrap();
        let (_, agg) = cat.kind_counts();
        assert!(agg >= 1);
    }

    #[test]
    fn no_restriction_set_is_all_stars() {
        let c = paper_catalog(1.0);
        let cat = no_restriction_policies(&c).unwrap();
        assert_eq!(cat.len(), 8);
        for e in cat.expressions() {
            assert_eq!(e.expr.to, LocationPattern::Star);
            assert_eq!(e.expr.attrs, ShipAttrs::Star);
        }
    }
}
