//! The ad-hoc query generator of Section 7.1, scaled out.
//!
//! "Our query generator creates an ad-hoc query by randomly selecting a
//! table and joining in additional tables using the PK–FK relationship. It
//! chooses joining tables in a way that they span over two or more
//! locations. It then randomly selects output columns and generates query
//! predicates. For aggregation queries, it randomly chooses grouping as
//! well as aggregation attributes." — roughly half the queries reference
//! two tables with a long tail up to five, about 30% aggregate, and a
//! query carries ~4 output columns and 1–4 predicates.
//!
//! Every generated query carries both its [`LogicalPlan`] and the SQL
//! text that lowers to the same plan shape, so the generator doubles as a
//! differential-fuzz corpus for the parser and both execution engines.
//! Generation is a pure function of the seed, and failure modes (catalog
//! without TPC-H tables, FK-disconnected table subsets) surface as typed
//! [`GeoError`]s rather than panics or unbounded retries.

use crate::policy_gen;
use crate::queries::scan;
use geoqp_common::{GeoError, Result, TableRef, Value};
use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
use geoqp_plan::logical::LogicalPlan;
use geoqp_storage::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// PK–FK edges of the TPC-H schema: `(left table, left key, right table,
/// right key)`.
const FK_EDGES: [(&str, &str, &str, &str); 9] = [
    ("customer", "c_custkey", "orders", "o_custkey"),
    ("orders", "o_orderkey", "lineitem", "l_orderkey"),
    ("part", "p_partkey", "partsupp", "ps_partkey"),
    ("supplier", "s_suppkey", "partsupp", "ps_suppkey"),
    ("part", "p_partkey", "lineitem", "l_partkey"),
    ("supplier", "s_suppkey", "lineitem", "l_suppkey"),
    ("nation", "n_nationkey", "customer", "c_nationkey"),
    ("nation", "n_nationkey", "supplier", "s_nationkey"),
    ("region", "r_regionkey", "nation", "n_regionkey"),
];

/// The TPC-H table universe the generator draws from.
const ALL_TABLES: [&str; 8] = [
    "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
];

/// Attempts to build one query before giving up with a typed error — a
/// catalog whose present tables are FK-disconnected or single-location
/// can make a target shape unreachable, and the generator must refuse
/// rather than spin.
const MAX_ATTEMPTS: usize = 4096;

/// Columns an ad-hoc query may output or filter on, per table — the
/// "analytically relevant" pool the base policy sets also cover, so that
/// every generated query keeps at least one compliant plan.
fn column_pool(table: &str) -> &'static [&'static str] {
    policy_gen::needed_columns_public(table)
}

/// Low-cardinality grouping candidates per table.
fn group_pool(table: &str) -> &'static [&'static str] {
    match table {
        "customer" => &["c_mktsegment", "c_nationkey"],
        "orders" => &["o_orderdate", "o_custkey"],
        "lineitem" => &["l_returnflag", "l_suppkey"],
        "supplier" => &["s_nationkey"],
        "part" => &["p_mfgr", "p_size"],
        "partsupp" => &["ps_partkey"],
        "nation" => &["n_name", "n_regionkey"],
        "region" => &["r_name"],
        _ => &[],
    }
}

/// Numeric aggregation candidates per table.
fn agg_pool(table: &str) -> &'static [&'static str] {
    match table {
        "customer" => &["c_acctbal"],
        "orders" => &["o_shippriority"],
        "lineitem" => &["l_quantity", "l_extendedprice", "l_discount"],
        "supplier" => &["s_acctbal"],
        "part" => &["p_size"],
        "partsupp" => &["ps_supplycost", "ps_availqty"],
        _ => &[],
    }
}

/// A generated ad-hoc query with its descriptive stats.
#[derive(Debug, Clone)]
pub struct AdhocQuery {
    /// Sequence number.
    pub id: usize,
    /// The logical plan.
    pub plan: Arc<LogicalPlan>,
    /// SQL text that parses and lowers to the same plan shape (same
    /// tables, joins, and output schema).
    pub sql: String,
    /// Tables referenced.
    pub tables: Vec<&'static str>,
    /// Whether the query aggregates.
    pub aggregated: bool,
}

/// Generate `n` ad-hoc queries against the catalog, deterministically from
/// `seed`.
///
/// Fails with a typed [`GeoError::Plan`] when the catalog holds fewer
/// than two TPC-H tables, or when the present tables cannot yield the
/// target query shape (FK-disconnected, single-location) within a
/// bounded number of attempts.
pub fn generate_adhoc(catalog: &Catalog, n: usize, seed: u64) -> Result<Vec<AdhocQuery>> {
    let present: Vec<&'static str> = ALL_TABLES
        .iter()
        .copied()
        .filter(|t| !catalog.resolve(&TableRef::bare(t)).is_empty())
        .collect();
    if present.len() < 2 {
        return Err(GeoError::Plan(format!(
            "ad-hoc generation needs at least two TPC-H tables in the catalog, found {}",
            present.len()
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAD0C);
    let mut out = Vec::with_capacity(n);
    let mut id = 0;
    while out.len() < n {
        // 52% two tables, 33% three, 10% four, 5% five — the target is
        // fixed across retries so that rejected single-location
        // combinations do not skew the distribution.
        let roll: f64 = rng.gen();
        let n_tables = if roll < 0.52 {
            2
        } else if roll < 0.85 {
            3
        } else if roll < 0.95 {
            4
        } else {
            5
        };
        let n_tables = n_tables.min(present.len());
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return Err(GeoError::Plan(format!(
                    "ad-hoc generator gave up on a {n_tables}-table query after \
                     {MAX_ATTEMPTS} attempts; the {} present tables span too few \
                     locations or are not FK-connected",
                    present.len()
                )));
            }
            if let Some(q) = try_generate(catalog, &present, &mut rng, id, n_tables)? {
                out.push(q);
                id += 1;
                break;
            }
        }
    }
    Ok(out)
}

fn try_generate(
    catalog: &Catalog,
    present: &[&'static str],
    rng: &mut StdRng,
    id: usize,
    n_tables: usize,
) -> Result<Option<AdhocQuery>> {
    // Random connected subgraph over the FK edges, restricted to tables
    // the catalog actually holds.
    let mut tables: Vec<&'static str> = vec![present[rng.gen_range(0..present.len())]];
    let mut edges: Vec<(&str, &str, &str, &str)> = Vec::new();
    for _ in 0..32 {
        if tables.len() == n_tables {
            break;
        }
        let candidates: Vec<_> = FK_EDGES
            .iter()
            .filter(|(lt, _, rt, _)| {
                // Exactly one end inside, and the newcomer must exist.
                let newcomer = if tables.contains(lt) { rt } else { lt };
                tables.contains(lt) != tables.contains(rt) && present.contains(newcomer)
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let e = candidates[rng.gen_range(0..candidates.len())];
        let newcomer = if tables.contains(&e.0) { e.2 } else { e.0 };
        tables.push(newcomer);
        edges.push(*e);
    }
    if tables.len() != n_tables {
        return Ok(None);
    }

    // Must span ≥ 2 locations.
    let locations: BTreeSet<_> = tables
        .iter()
        .flat_map(|t| catalog.resolve(&TableRef::bare(t)))
        .map(|e| e.location.clone())
        .collect();
    if locations.len() < 2 {
        return Ok(None);
    }

    // Build the join tree: start at the first table, attach via edges.
    // The SQL FROM list mirrors the join order and each join contributes
    // one equi-conjunct, so lowering the text reproduces this exact tree.
    let mut builder = scan(catalog, tables[0])?;
    let mut joined: Vec<&str> = vec![tables[0]];
    let mut join_conds: Vec<String> = Vec::new();
    let mut pending = edges.clone();
    while !pending.is_empty() {
        let pos = pending
            .iter()
            .position(|(lt, _, rt, _)| joined.contains(lt) != joined.contains(rt));
        let Some(pos) = pos else { break };
        let (lt, lk, rt, rk) = pending.remove(pos);
        let (new_table, on) = if joined.contains(&lt) {
            (rt, vec![(lk, rk)])
        } else {
            (lt, vec![(rk, lk)])
        };
        join_conds.push(format!("{} = {}", on[0].0, on[0].1));
        builder = builder.join(scan(catalog, new_table)?, on)?;
        joined.push(new_table);
    }

    // Predicates: 1–4, drawn per referenced table.
    let mut where_sql = join_conds;
    let n_preds = rng.gen_range(1..=4usize);
    for _ in 0..n_preds {
        let t = tables[rng.gen_range(0..tables.len())];
        if let Some(p) = query_predicate(rng, t) {
            where_sql.push(sql_predicate(&p));
            builder = builder.filter(p)?;
        }
    }

    // ~30% aggregation queries.
    let aggregated = rng.gen_bool(0.3);
    let (builder, select_sql, group_sql) = if aggregated {
        let group_candidates: Vec<&str> = tables
            .iter()
            .flat_map(|t| group_pool(t).iter().copied())
            .collect();
        let agg_candidates: Vec<&str> = tables
            .iter()
            .flat_map(|t| agg_pool(t).iter().copied())
            .collect();
        if group_candidates.is_empty() || agg_candidates.is_empty() {
            return Ok(None);
        }
        let mut groups: Vec<&str> = Vec::new();
        for _ in 0..rng.gen_range(1..=2usize) {
            let g = group_candidates[rng.gen_range(0..group_candidates.len())];
            if !groups.contains(&g) {
                groups.push(g);
            }
        }
        let mut calls = Vec::new();
        let mut items: Vec<String> = groups.iter().map(|g| g.to_string()).collect();
        let funcs = [AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
        for (i, _) in (0..rng.gen_range(1..=2usize)).enumerate() {
            let col = agg_candidates[rng.gen_range(0..agg_candidates.len())];
            let f = funcs[rng.gen_range(0..funcs.len())];
            items.push(format!("{f}({col}) AS agg_{i}"));
            calls.push(AggCall::new(f, ScalarExpr::col(col), format!("agg_{i}")));
        }
        let group_sql = format!(" GROUP BY {}", groups.join(", "));
        (
            builder.aggregate(&groups, calls)?,
            items.join(", "),
            group_sql,
        )
    } else {
        // Random output columns (~4).
        let pool: Vec<&str> = tables
            .iter()
            .flat_map(|t| column_pool(t).iter().copied())
            .collect();
        let mut cols: Vec<&str> = Vec::new();
        for _ in 0..rng.gen_range(3..=5usize) {
            let c = pool[rng.gen_range(0..pool.len())];
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        let select_sql = cols.join(", ");
        (builder.project_columns(&cols)?, select_sql, String::new())
    };

    let sql = format!(
        "SELECT {select_sql} FROM {} WHERE {}{group_sql}",
        joined.join(", "),
        where_sql.join(" AND "),
    );
    Ok(Some(AdhocQuery {
        id,
        plan: builder.build(),
        sql,
        tables,
        aggregated,
    }))
}

/// Render a literal as SQL text that re-lexes to the same [`Value`]:
/// floats keep their fractional point and dates take the `DATE` keyword
/// (bare `Display` would round-trip `4500.0` as an integer and a date as
/// an identifier).
fn sql_value(v: &Value) -> String {
    match v {
        Value::Float64(f) => format!("{f:?}"),
        Value::Date(_) => format!("DATE '{v}'"),
        _ => v.to_string(),
    }
}

/// Render a generated predicate as SQL. Covers exactly the shapes
/// [`query_predicate`] emits: column-vs-literal comparisons and LIKE
/// (whose `Display` is already SQL).
fn sql_predicate(e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Column(c) => c.clone(),
        ScalarExpr::Literal(v) => sql_value(v),
        ScalarExpr::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", sql_predicate(lhs), sql_predicate(rhs))
        }
        other => other.to_string(),
    }
}

/// A random query predicate over a table, restricted to the covered
/// column pool.
fn query_predicate(rng: &mut StdRng, table: &str) -> Option<ScalarExpr> {
    let col = ScalarExpr::col;
    let pick = rng.gen_range(0..3u8);
    Some(match table {
        "customer" => match pick {
            0 => col("c_mktsegment").eq(ScalarExpr::lit(
                crate::text::SEGMENTS[rng.gen_range(0..crate::text::SEGMENTS.len())],
            )),
            1 => col("c_acctbal").gt(ScalarExpr::lit(rng.gen_range(-500..5000) as f64)),
            _ => col("c_nationkey").lt(ScalarExpr::lit(rng.gen_range(5..25) as i64)),
        },
        "orders" => match pick {
            0 => col("o_orderdate").gt(ScalarExpr::lit(Value::date(
                rng.gen_range(1992..1998),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            ))),
            1 => col("o_orderdate").lt(ScalarExpr::lit(Value::date(
                rng.gen_range(1993..1999),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            ))),
            _ => col("o_shippriority").eq(ScalarExpr::lit(0i64)),
        },
        "lineitem" => match pick {
            0 => col("l_quantity").lt(ScalarExpr::lit(rng.gen_range(10..50) as i64)),
            1 => col("l_returnflag").eq(ScalarExpr::lit("R")),
            _ => col("l_shipdate").gt(ScalarExpr::lit(Value::date(
                rng.gen_range(1995..1998),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            ))),
        },
        "supplier" => col("s_acctbal").gt(ScalarExpr::lit(rng.gen_range(-500..5000) as f64)),
        "part" => match pick {
            0 => col("p_size").gt(ScalarExpr::lit(rng.gen_range(1..45) as i64)),
            1 => col("p_type").like(format!(
                "%{}%",
                crate::text::TYPE_SYLLABLE_3[rng.gen_range(0..crate::text::TYPE_SYLLABLE_3.len())]
            )),
            _ => col("p_size").lt(ScalarExpr::lit(rng.gen_range(10..50) as i64)),
        },
        "partsupp" => col("ps_availqty").gt(ScalarExpr::lit(rng.gen_range(100..5000) as i64)),
        "nation" => col("n_regionkey").eq(ScalarExpr::lit(rng.gen_range(0..5) as i64)),
        "region" => col("r_name").eq(ScalarExpr::lit(
            crate::text::REGIONS[rng.gen_range(0..crate::text::REGIONS.len())],
        )),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::paper_catalog;

    #[test]
    fn generates_requested_count_deterministically() {
        let c = paper_catalog(1.0);
        let qs = generate_adhoc(&c, 50, 11).unwrap();
        assert_eq!(qs.len(), 50);
        let qs2 = generate_adhoc(&c, 50, 11).unwrap();
        for (a, b) in qs.iter().zip(&qs2) {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.sql, b.sql, "SQL must be byte-identical per seed");
        }
    }

    #[test]
    fn table_count_distribution_roughly_matches() {
        let c = paper_catalog(1.0);
        let qs = generate_adhoc(&c, 300, 3).unwrap();
        let share = |k: usize| qs.iter().filter(|q| q.tables.len() == k).count() as f64 / 300.0;
        let (two, three, four, five) = (share(2), share(3), share(4), share(5));
        assert!((0.40..0.70).contains(&two), "two-table share {two}");
        assert!((0.20..0.50).contains(&three), "three-table share {three}");
        assert!((0.02..0.20).contains(&four), "four-table share {four}");
        assert!((0.01..0.12).contains(&five), "five-table share {five}");
        let agg = qs.iter().filter(|q| q.aggregated).count() as f64 / 300.0;
        assert!((0.18..0.45).contains(&agg), "aggregate share {agg}");
    }

    #[test]
    fn queries_span_multiple_locations_and_validate() {
        let c = paper_catalog(1.0);
        for q in generate_adhoc(&c, 100, 5).unwrap() {
            assert!(q.plan.source_locations().len() >= 2, "query {}", q.id);
            assert!(q.plan.join_count() >= 1);
        }
    }

    #[test]
    fn empty_catalog_is_a_typed_error_not_a_hang() {
        let err = generate_adhoc(&Catalog::new(), 5, 1).unwrap_err();
        assert_eq!(err.kind(), "plan");
        assert!(
            err.to_string().contains("at least two TPC-H tables"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn sql_literals_round_trip_lexing() {
        assert_eq!(sql_value(&Value::Float64(4500.0)), "4500.0");
        assert_eq!(sql_value(&Value::Float64(-500.0)), "-500.0");
        assert_eq!(sql_value(&Value::date(1995, 1, 15)), "DATE '1995-01-15'");
        assert_eq!(sql_value(&Value::str("BRAZIL")), "'BRAZIL'");
        assert_eq!(sql_value(&Value::Int64(7)), "7");
    }
}
