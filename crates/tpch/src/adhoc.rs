//! The ad-hoc query generator of Section 7.1.
//!
//! "Our query generator creates an ad-hoc query by randomly selecting a
//! table and joining in additional tables using the PK–FK relationship. It
//! chooses joining tables in a way that they span over two or more
//! locations. It then randomly selects output columns and generates query
//! predicates. For aggregation queries, it randomly chooses grouping as
//! well as aggregation attributes." — 55% of queries reference two
//! tables, 35% three, 10% four; about 30% aggregate; ~4 output columns and
//! 3–4 predicates on average.

use crate::policy_gen;
use crate::queries::scan;
use geoqp_common::{Result, TableRef, Value};
use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
use geoqp_plan::logical::LogicalPlan;
use geoqp_storage::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// PK–FK edges of the TPC-H schema: `(left table, left key, right table,
/// right key)`.
const FK_EDGES: [(&str, &str, &str, &str); 9] = [
    ("customer", "c_custkey", "orders", "o_custkey"),
    ("orders", "o_orderkey", "lineitem", "l_orderkey"),
    ("part", "p_partkey", "partsupp", "ps_partkey"),
    ("supplier", "s_suppkey", "partsupp", "ps_suppkey"),
    ("part", "p_partkey", "lineitem", "l_partkey"),
    ("supplier", "s_suppkey", "lineitem", "l_suppkey"),
    ("nation", "n_nationkey", "customer", "c_nationkey"),
    ("nation", "n_nationkey", "supplier", "s_nationkey"),
    ("region", "r_regionkey", "nation", "n_regionkey"),
];

/// Columns an ad-hoc query may output or filter on, per table — the
/// "analytically relevant" pool the base policy sets also cover, so that
/// every generated query keeps at least one compliant plan.
fn column_pool(table: &str) -> &'static [&'static str] {
    policy_gen::needed_columns_public(table)
}

/// Low-cardinality grouping candidates per table.
fn group_pool(table: &str) -> &'static [&'static str] {
    match table {
        "customer" => &["c_mktsegment", "c_nationkey"],
        "orders" => &["o_orderdate", "o_custkey"],
        "lineitem" => &["l_returnflag", "l_suppkey"],
        "supplier" => &["s_nationkey"],
        "part" => &["p_mfgr", "p_size"],
        "partsupp" => &["ps_partkey"],
        "nation" => &["n_name", "n_regionkey"],
        "region" => &["r_name"],
        _ => &[],
    }
}

/// Numeric aggregation candidates per table.
fn agg_pool(table: &str) -> &'static [&'static str] {
    match table {
        "customer" => &["c_acctbal"],
        "orders" => &["o_shippriority"],
        "lineitem" => &["l_quantity", "l_extendedprice", "l_discount"],
        "supplier" => &["s_acctbal"],
        "part" => &["p_size"],
        "partsupp" => &["ps_supplycost", "ps_availqty"],
        _ => &[],
    }
}

/// A generated ad-hoc query with its descriptive stats.
#[derive(Debug, Clone)]
pub struct AdhocQuery {
    /// Sequence number.
    pub id: usize,
    /// The logical plan.
    pub plan: Arc<LogicalPlan>,
    /// Tables referenced.
    pub tables: Vec<&'static str>,
    /// Whether the query aggregates.
    pub aggregated: bool,
}

/// Generate `n` ad-hoc queries against the catalog, deterministically from
/// `seed`.
pub fn generate_adhoc(catalog: &Catalog, n: usize, seed: u64) -> Result<Vec<AdhocQuery>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAD0C);
    let mut out = Vec::with_capacity(n);
    let mut id = 0;
    while out.len() < n {
        // 55% two tables, 35% three, 10% four — the target is fixed across
        // retries so that rejected single-location combinations do not
        // skew the distribution.
        let roll: f64 = rng.gen();
        let n_tables = if roll < 0.55 {
            2
        } else if roll < 0.90 {
            3
        } else {
            4
        };
        loop {
            if let Some(q) = try_generate(catalog, &mut rng, id, n_tables)? {
                out.push(q);
                id += 1;
                break;
            }
        }
    }
    Ok(out)
}

fn try_generate(
    catalog: &Catalog,
    rng: &mut StdRng,
    id: usize,
    n_tables: usize,
) -> Result<Option<AdhocQuery>> {
    // Random connected subgraph over the FK edges.
    const ALL: [&str; 8] = [
        "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
    ];
    let mut tables: Vec<&'static str> = vec![ALL[rng.gen_range(0..ALL.len())]];
    let mut edges: Vec<(&str, &str, &str, &str)> = Vec::new();
    for _ in 0..32 {
        if tables.len() == n_tables {
            break;
        }
        let candidates: Vec<_> = FK_EDGES
            .iter()
            .filter(|(lt, _, rt, _)| {
                tables.contains(lt) != tables.contains(rt) // exactly one end inside
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let e = candidates[rng.gen_range(0..candidates.len())];
        let newcomer = if tables.contains(&e.0) { e.2 } else { e.0 };
        tables.push(newcomer);
        edges.push(*e);
    }
    if tables.len() != n_tables {
        return Ok(None);
    }

    // Must span ≥ 2 locations.
    let locations: BTreeSet<_> = tables
        .iter()
        .flat_map(|t| catalog.resolve(&TableRef::bare(t)))
        .map(|e| e.location.clone())
        .collect();
    if locations.len() < 2 {
        return Ok(None);
    }

    // Build the join tree: start at the first table, attach via edges.
    let mut builder = scan(catalog, tables[0])?;
    let mut joined: Vec<&str> = vec![tables[0]];
    let mut pending = edges.clone();
    while !pending.is_empty() {
        let pos = pending
            .iter()
            .position(|(lt, _, rt, _)| joined.contains(lt) != joined.contains(rt));
        let Some(pos) = pos else { break };
        let (lt, lk, rt, rk) = pending.remove(pos);
        let (new_table, on) = if joined.contains(&lt) {
            (rt, vec![(lk, rk)])
        } else {
            (lt, vec![(rk, lk)])
        };
        builder = builder.join(scan(catalog, new_table)?, on)?;
        joined.push(new_table);
    }

    // Predicates: 1–4, drawn per referenced table.
    let n_preds = rng.gen_range(1..=4usize);
    for _ in 0..n_preds {
        let t = tables[rng.gen_range(0..tables.len())];
        if let Some(p) = query_predicate(rng, t) {
            builder = builder.filter(p)?;
        }
    }

    // ~30% aggregation queries.
    let aggregated = rng.gen_bool(0.3);
    let builder = if aggregated {
        let group_candidates: Vec<&str> = tables
            .iter()
            .flat_map(|t| group_pool(t).iter().copied())
            .collect();
        let agg_candidates: Vec<&str> = tables
            .iter()
            .flat_map(|t| agg_pool(t).iter().copied())
            .collect();
        if group_candidates.is_empty() || agg_candidates.is_empty() {
            return Ok(None);
        }
        let mut groups: Vec<&str> = Vec::new();
        for _ in 0..rng.gen_range(1..=2usize) {
            let g = group_candidates[rng.gen_range(0..group_candidates.len())];
            if !groups.contains(&g) {
                groups.push(g);
            }
        }
        let mut calls = Vec::new();
        let funcs = [AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
        for (i, _) in (0..rng.gen_range(1..=2usize)).enumerate() {
            let col = agg_candidates[rng.gen_range(0..agg_candidates.len())];
            let f = funcs[rng.gen_range(0..funcs.len())];
            calls.push(AggCall::new(f, ScalarExpr::col(col), format!("agg_{i}")));
        }
        builder.aggregate(&groups, calls)?
    } else {
        // Random output columns (~4).
        let pool: Vec<&str> = tables
            .iter()
            .flat_map(|t| column_pool(t).iter().copied())
            .collect();
        let mut cols: Vec<&str> = Vec::new();
        for _ in 0..rng.gen_range(3..=5usize) {
            let c = pool[rng.gen_range(0..pool.len())];
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        builder.project_columns(&cols)?
    };

    Ok(Some(AdhocQuery {
        id,
        plan: builder.build(),
        tables,
        aggregated,
    }))
}

/// A random query predicate over a table, restricted to the covered
/// column pool.
fn query_predicate(rng: &mut StdRng, table: &str) -> Option<ScalarExpr> {
    let col = ScalarExpr::col;
    let pick = rng.gen_range(0..3u8);
    Some(match table {
        "customer" => match pick {
            0 => col("c_mktsegment").eq(ScalarExpr::lit(
                crate::text::SEGMENTS[rng.gen_range(0..crate::text::SEGMENTS.len())],
            )),
            1 => col("c_acctbal").gt(ScalarExpr::lit(rng.gen_range(-500..5000) as f64)),
            _ => col("c_nationkey").lt(ScalarExpr::lit(rng.gen_range(5..25) as i64)),
        },
        "orders" => match pick {
            0 => col("o_orderdate").gt(ScalarExpr::lit(Value::date(
                rng.gen_range(1992..1998),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            ))),
            1 => col("o_orderdate").lt(ScalarExpr::lit(Value::date(
                rng.gen_range(1993..1999),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            ))),
            _ => col("o_shippriority").eq(ScalarExpr::lit(0i64)),
        },
        "lineitem" => match pick {
            0 => col("l_quantity").lt(ScalarExpr::lit(rng.gen_range(10..50) as i64)),
            1 => col("l_returnflag").eq(ScalarExpr::lit("R")),
            _ => col("l_shipdate").gt(ScalarExpr::lit(Value::date(
                rng.gen_range(1995..1998),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            ))),
        },
        "supplier" => col("s_acctbal").gt(ScalarExpr::lit(rng.gen_range(-500..5000) as f64)),
        "part" => match pick {
            0 => col("p_size").gt(ScalarExpr::lit(rng.gen_range(1..45) as i64)),
            1 => col("p_type").like(format!(
                "%{}%",
                crate::text::TYPE_SYLLABLE_3[rng.gen_range(0..crate::text::TYPE_SYLLABLE_3.len())]
            )),
            _ => col("p_size").lt(ScalarExpr::lit(rng.gen_range(10..50) as i64)),
        },
        "partsupp" => col("ps_availqty").gt(ScalarExpr::lit(rng.gen_range(100..5000) as i64)),
        "nation" => col("n_regionkey").eq(ScalarExpr::lit(rng.gen_range(0..5) as i64)),
        "region" => col("r_name").eq(ScalarExpr::lit(
            crate::text::REGIONS[rng.gen_range(0..crate::text::REGIONS.len())],
        )),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::paper_catalog;

    #[test]
    fn generates_requested_count_deterministically() {
        let c = paper_catalog(1.0);
        let qs = generate_adhoc(&c, 50, 11).unwrap();
        assert_eq!(qs.len(), 50);
        let qs2 = generate_adhoc(&c, 50, 11).unwrap();
        for (a, b) in qs.iter().zip(&qs2) {
            assert_eq!(a.plan, b.plan);
        }
    }

    #[test]
    fn table_count_distribution_roughly_matches() {
        let c = paper_catalog(1.0);
        let qs = generate_adhoc(&c, 300, 3).unwrap();
        let two = qs.iter().filter(|q| q.tables.len() == 2).count() as f64 / 300.0;
        let three = qs.iter().filter(|q| q.tables.len() == 3).count() as f64 / 300.0;
        let four = qs.iter().filter(|q| q.tables.len() == 4).count() as f64 / 300.0;
        assert!((0.40..0.70).contains(&two), "two-table share {two}");
        assert!((0.20..0.50).contains(&three), "three-table share {three}");
        assert!((0.02..0.20).contains(&four), "four-table share {four}");
        let agg = qs.iter().filter(|q| q.aggregated).count() as f64 / 300.0;
        assert!((0.18..0.45).contains(&agg), "aggregate share {agg}");
    }

    #[test]
    fn queries_span_multiple_locations_and_validate() {
        let c = paper_catalog(1.0);
        for q in generate_adhoc(&c, 100, 5).unwrap() {
            assert!(q.plan.source_locations().len() >= 2, "query {}", q.id);
            assert!(q.plan.join_count() >= 1);
        }
    }
}
