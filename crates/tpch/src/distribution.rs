//! The geo-distribution of TPC-H tables (paper Table 2), plus the
//! Section 7.5 variant with Customer and Orders partitioned across sites.

use crate::gen::generate;
use crate::schema::{schema_of, stats_of, TABLES};
use geoqp_common::{GeoError, Location, Result, TableRef};
use geoqp_storage::{Catalog, Table, TableStats};
use std::sync::Arc;

/// Table 2: which tables each location's database hosts.
pub const DISTRIBUTION: [(&str, &str, &[&str]); 5] = [
    ("L1", "db-1", &["customer", "orders"]),
    ("L2", "db-2", &["supplier", "partsupp"]),
    ("L3", "db-3", &["part"]),
    ("L4", "db-4", &["lineitem"]),
    ("L5", "db-5", &["nation", "region"]),
];

/// Build the paper's five-location catalog with statistics at scale
/// factor `sf` (the paper uses SF 10 for optimization; scale does not
/// affect plan choice, only the byte estimates' magnitudes).
pub fn paper_catalog(sf: f64) -> Catalog {
    let mut c = Catalog::new();
    for (loc, db, tables) in DISTRIBUTION {
        c.add_database(db, Location::new(loc))
            .expect("fresh catalog");
        for t in tables {
            c.add_table(
                db,
                *t,
                schema_of(t).expect("built-in TPC-H table"),
                stats_of(t, sf).expect("built-in TPC-H table"),
            )
            .expect("fresh catalog");
        }
    }
    c
}

/// The Section 7.5 variant: Customer and Orders are horizontally
/// partitioned across the first `n_locations` sites (2..=5). Each partition
/// is registered under that site's database; bare-name resolution then
/// yields a union, exactly the GAV rewrite `t = t_1 ∪ … ∪ t_n`.
pub fn paper_catalog_partitioned(sf: f64, n_locations: usize) -> Result<Catalog> {
    if !(2..=5).contains(&n_locations) {
        return Err(GeoError::Storage(format!(
            "partitioned catalog supports 2–5 locations, got {n_locations}"
        )));
    }
    let mut c = Catalog::new();
    for (loc, db, tables) in DISTRIBUTION {
        c.add_database(db, Location::new(loc))?;
        for t in tables {
            if *t == "customer" || *t == "orders" {
                continue; // handled below
            }
            c.add_table(db, *t, schema_of(t)?, stats_of(t, sf)?)?;
        }
    }
    // Spread customer and orders over db-1..db-n with split statistics.
    for t in ["customer", "orders"] {
        let full = stats_of(t, sf)?;
        for (loc_idx, (_, db, _)) in DISTRIBUTION.iter().enumerate().take(n_locations) {
            let _ = loc_idx;
            let mut part_stats =
                TableStats::new(full.row_count / n_locations as u64, full.avg_row_bytes);
            for (col, ndv) in &full.ndv {
                part_stats = part_stats.with_ndv(col.clone(), (*ndv / n_locations as u64).max(1));
            }
            c.add_table(db, t, schema_of(t)?, part_stats)?;
        }
    }
    Ok(c)
}

/// Generate data at `sf` and attach it to every registered table. For
/// partitioned tables the generated rows are distributed round-robin over
/// the partitions. Each attached table's columnar mirror is built here,
/// at load time — the first columnar scan is already a zero-copy `Arc`
/// clone instead of paying a row-to-column conversion mid-query.
pub fn populate(catalog: &Catalog, sf: f64, seed: u64) -> Result<()> {
    for t in TABLES {
        let entries = catalog.resolve(&TableRef::bare(t));
        if entries.is_empty() {
            continue;
        }
        let rows = generate(t, sf, seed)?;
        if entries.len() == 1 {
            let entry = &entries[0];
            let table = Table::new(Arc::clone(&entry.schema), rows)?;
            table.to_columnar();
            entry.set_data(table)?;
        } else {
            let n = entries.len();
            for (i, entry) in entries.iter().enumerate() {
                let part: Vec<_> = rows
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % n == i)
                    .map(|(_, r)| r.clone())
                    .collect();
                let table = Table::new(Arc::clone(&entry.schema), part)?;
                table.to_columnar();
                entry.set_data(table)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_matches_table2() {
        let c = paper_catalog(10.0);
        assert_eq!(c.locations().len(), 5);
        assert_eq!(c.table_count(), 8);
        let li = c.resolve_one(&TableRef::bare("lineitem")).unwrap();
        assert_eq!(li.location, Location::new("L4"));
        assert_eq!(li.stats.row_count, 60_000_000);
        let n = c.resolve_one(&TableRef::bare("nation")).unwrap();
        assert_eq!(n.location, Location::new("L5"));
    }

    #[test]
    fn partitioned_catalog_splits_customer_orders() {
        let c = paper_catalog_partitioned(1.0, 3).unwrap();
        assert_eq!(c.resolve(&TableRef::bare("customer")).len(), 3);
        assert_eq!(c.resolve(&TableRef::bare("orders")).len(), 3);
        assert_eq!(c.resolve(&TableRef::bare("part")).len(), 1);
        assert!(paper_catalog_partitioned(1.0, 1).is_err());
        assert!(paper_catalog_partitioned(1.0, 6).is_err());
    }

    #[test]
    fn populate_attaches_all_data() {
        let c = paper_catalog(0.001);
        populate(&c, 0.001, 42).unwrap();
        for t in TABLES {
            let e = c.resolve_one(&TableRef::bare(t)).unwrap();
            assert!(e.data().is_some(), "{t} not populated");
            assert_eq!(
                e.data().unwrap().row_count() as u64,
                crate::schema::rows_at(t, 0.001).unwrap()
            );
        }
    }

    #[test]
    fn populate_partitioned_round_robin() {
        let c = paper_catalog_partitioned(0.001, 2).unwrap();
        populate(&c, 0.001, 42).unwrap();
        let parts = c.resolve(&TableRef::bare("customer"));
        let total: usize = parts.iter().map(|e| e.data().unwrap().row_count()).sum();
        assert_eq!(
            total as u64,
            crate::schema::rows_at("customer", 0.001).unwrap()
        );
        assert!(parts.iter().all(|e| e.data().unwrap().row_count() > 0));
    }
}
