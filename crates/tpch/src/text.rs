//! TPC-H text pools: the fixed vocabularies dbgen draws strings from.

/// The five regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 nations with their region indices (TPC-H specification order).
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions.
pub const SHIP_INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Containers (two-word combinations).
pub const CONTAINER_SIZES: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Container kinds.
pub const CONTAINER_KINDS: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Type syllables (p_type = one of each: 6 × 5 × 5 = 150 types).
pub const TYPE_SYLLABLE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second syllable.
pub const TYPE_SYLLABLE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third syllable.
pub const TYPE_SYLLABLE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Part-name color words (p_name = 5 of these).
pub const COLORS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "green",
];

/// A deterministic pseudo-comment of bounded length.
pub fn comment(seed: u64, max_words: usize) -> String {
    const WORDS: [&str; 12] = [
        "carefully",
        "final",
        "deposits",
        "sleep",
        "quickly",
        "ironic",
        "requests",
        "haggle",
        "furiously",
        "pending",
        "accounts",
        "bold",
    ];
    let n = (seed as usize % max_words.max(1)) + 1;
    let mut out = String::new();
    let mut s = seed;
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push_str(WORDS[(s >> 33) as usize % WORDS.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_have_spec_sizes() {
        assert_eq!(REGIONS.len(), 5);
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(
            TYPE_SYLLABLE_1.len() * TYPE_SYLLABLE_2.len() * TYPE_SYLLABLE_3.len(),
            150
        );
        assert!(NATIONS.iter().all(|(_, r)| *r < REGIONS.len()));
    }

    #[test]
    fn comments_are_deterministic_and_bounded() {
        assert_eq!(comment(42, 5), comment(42, 5));
        for s in 0..50 {
            let c = comment(s, 4);
            assert!(c.split(' ').count() <= 4);
            assert!(!c.is_empty());
        }
    }
}
