//! TPC-H table schemas and statistics.

use geoqp_common::{DataType, Field, GeoError, Result, Schema};
use geoqp_storage::TableStats;

/// The eight TPC-H tables.
pub const TABLES: [&str; 8] = [
    "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
];

/// The typed error every lookup in this crate returns for a table name
/// outside [`TABLES`] — a bad name from the CLI surfaces as an error
/// result instead of aborting the process.
pub(crate) fn unknown_table(table: &str) -> GeoError {
    GeoError::Storage(format!(
        "unknown TPC-H table `{table}` (expected one of: {})",
        TABLES.join(", ")
    ))
}

/// Base cardinality of a table at scale factor 1 (TPC-H specification).
pub fn base_rows(table: &str) -> Result<u64> {
    Ok(match table {
        "region" => 5,
        "nation" => 25,
        "supplier" => 10_000,
        "part" => 200_000,
        "partsupp" => 800_000,
        "customer" => 150_000,
        "orders" => 1_500_000,
        "lineitem" => 6_000_000,
        _ => return Err(unknown_table(table)),
    })
}

/// Row count at a scale factor (region/nation are fixed).
pub fn rows_at(table: &str, sf: f64) -> Result<u64> {
    match table {
        "region" | "nation" => base_rows(table),
        t => Ok(((base_rows(t)? as f64) * sf).round().max(1.0) as u64),
    }
}

/// Schema of a TPC-H table.
pub fn schema_of(table: &str) -> Result<Schema> {
    use DataType::*;
    let fields: Vec<Field> = match table {
        "region" => vec![
            Field::new("r_regionkey", Int64),
            Field::new("r_name", Str),
            Field::new("r_comment", Str),
        ],
        "nation" => vec![
            Field::new("n_nationkey", Int64),
            Field::new("n_name", Str),
            Field::new("n_regionkey", Int64),
            Field::new("n_comment", Str),
        ],
        "supplier" => vec![
            Field::new("s_suppkey", Int64),
            Field::new("s_name", Str),
            Field::new("s_address", Str),
            Field::new("s_nationkey", Int64),
            Field::new("s_phone", Str),
            Field::new("s_acctbal", Float64),
            Field::new("s_comment", Str),
        ],
        "part" => vec![
            Field::new("p_partkey", Int64),
            Field::new("p_name", Str),
            Field::new("p_mfgr", Str),
            Field::new("p_brand", Str),
            Field::new("p_type", Str),
            Field::new("p_size", Int64),
            Field::new("p_container", Str),
            Field::new("p_retailprice", Float64),
            Field::new("p_comment", Str),
        ],
        "partsupp" => vec![
            Field::new("ps_partkey", Int64),
            Field::new("ps_suppkey", Int64),
            Field::new("ps_availqty", Int64),
            Field::new("ps_supplycost", Float64),
            Field::new("ps_comment", Str),
        ],
        "customer" => vec![
            Field::new("c_custkey", Int64),
            Field::new("c_name", Str),
            Field::new("c_address", Str),
            Field::new("c_nationkey", Int64),
            Field::new("c_phone", Str),
            Field::new("c_acctbal", Float64),
            Field::new("c_mktsegment", Str),
            Field::new("c_comment", Str),
        ],
        "orders" => vec![
            Field::new("o_orderkey", Int64),
            Field::new("o_custkey", Int64),
            Field::new("o_orderstatus", Str),
            Field::new("o_totalprice", Float64),
            Field::new("o_orderdate", Date),
            Field::new("o_orderpriority", Str),
            Field::new("o_clerk", Str),
            Field::new("o_shippriority", Int64),
            Field::new("o_comment", Str),
        ],
        "lineitem" => vec![
            Field::new("l_orderkey", Int64),
            Field::new("l_partkey", Int64),
            Field::new("l_suppkey", Int64),
            Field::new("l_linenumber", Int64),
            Field::new("l_quantity", Int64),
            Field::new("l_extendedprice", Float64),
            Field::new("l_discount", Float64),
            Field::new("l_tax", Float64),
            Field::new("l_returnflag", Str),
            Field::new("l_linestatus", Str),
            Field::new("l_shipdate", Date),
            Field::new("l_commitdate", Date),
            Field::new("l_receiptdate", Date),
            Field::new("l_shipinstruct", Str),
            Field::new("l_shipmode", Str),
            Field::new("l_comment", Str),
        ],
        _ => return Err(unknown_table(table)),
    };
    Ok(Schema::new(fields).expect("static schemas are valid"))
}

/// Statistics for a table at a scale factor, with NDVs for the columns the
/// optimizer's estimator cares about (keys, predicate columns, grouping
/// columns).
pub fn stats_of(table: &str, sf: f64) -> Result<TableStats> {
    let rows = rows_at(table, sf)?;
    let width = schema_of(table)?.estimated_row_width() as f64;
    let mut s = TableStats::new(rows, width);
    let r = |frac: f64| ((rows as f64 * frac).round() as u64).max(1);
    match table {
        "region" => {
            s = s.with_ndv("r_regionkey", 5).with_ndv("r_name", 5);
        }
        "nation" => {
            s = s
                .with_ndv("n_nationkey", 25)
                .with_ndv("n_name", 25)
                .with_ndv("n_regionkey", 5);
        }
        "supplier" => {
            s = s
                .with_ndv("s_suppkey", rows)
                .with_ndv("s_nationkey", 25)
                .with_ndv("s_acctbal", r(0.9));
        }
        "part" => {
            s = s
                .with_ndv("p_partkey", rows)
                .with_ndv("p_mfgr", 5)
                .with_ndv("p_brand", 25)
                .with_ndv("p_type", 150)
                .with_ndv("p_size", 50)
                .with_ndv("p_container", 40);
        }
        "partsupp" => {
            s = s
                .with_ndv("ps_partkey", rows / 4)
                .with_ndv("ps_suppkey", rows_at("supplier", sf)?)
                .with_ndv("ps_supplycost", r(0.5));
        }
        "customer" => {
            s = s
                .with_ndv("c_custkey", rows)
                .with_ndv("c_nationkey", 25)
                .with_ndv("c_mktsegment", 5)
                .with_ndv("c_acctbal", r(0.9));
        }
        "orders" => {
            s = s
                .with_ndv("o_orderkey", rows)
                .with_ndv("o_custkey", rows_at("customer", sf)?)
                .with_ndv("o_orderstatus", 3)
                .with_ndv("o_orderdate", 2406)
                .with_ndv("o_orderpriority", 5)
                .with_ndv("o_shippriority", 1);
        }
        "lineitem" => {
            s = s
                .with_ndv("l_orderkey", rows_at("orders", sf)?)
                .with_ndv("l_partkey", rows_at("part", sf)?)
                .with_ndv("l_suppkey", rows_at("supplier", sf)?)
                .with_ndv("l_linenumber", 7)
                .with_ndv("l_quantity", 50)
                .with_ndv("l_discount", 11)
                .with_ndv("l_tax", 9)
                .with_ndv("l_returnflag", 3)
                .with_ndv("l_linestatus", 2)
                .with_ndv("l_shipdate", 2526)
                .with_ndv("l_shipmode", 7);
        }
        _ => return Err(unknown_table(table)),
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemas_valid_and_unique_columns() {
        for t in TABLES {
            let s = schema_of(t).unwrap();
            assert!(!s.is_empty(), "{t} schema empty");
            // TPC-H prefixed names keep cross-table uniqueness.
            for f in s.fields() {
                let prefix = match t {
                    "region" => "r_",
                    "nation" => "n_",
                    "supplier" => "s_",
                    "part" => "p_",
                    "partsupp" => "ps_",
                    "customer" => "c_",
                    "orders" => "o_",
                    "lineitem" => "l_",
                    _ => unreachable!(),
                };
                assert!(f.name.starts_with(prefix), "{t}: {}", f.name);
            }
        }
    }

    #[test]
    fn cardinality_scaling() {
        assert_eq!(rows_at("lineitem", 1.0).unwrap(), 6_000_000);
        assert_eq!(rows_at("lineitem", 0.01).unwrap(), 60_000);
        assert_eq!(rows_at("region", 10.0).unwrap(), 5);
        assert_eq!(rows_at("nation", 0.001).unwrap(), 25);
        assert_eq!(rows_at("customer", 10.0).unwrap(), 1_500_000);
    }

    #[test]
    fn stats_have_key_ndvs() {
        let s = stats_of("orders", 0.1).unwrap();
        assert_eq!(s.row_count, 150_000);
        assert_eq!(s.ndv_of("o_orderkey"), 150_000);
        assert_eq!(s.ndv_of("o_orderstatus"), 3);
    }

    #[test]
    fn unknown_table_is_a_typed_storage_error() {
        for r in [
            base_rows("widgets").map(|_| ()),
            rows_at("widgets", 1.0).map(|_| ()),
            schema_of("widgets").map(|_| ()),
            stats_of("widgets", 1.0).map(|_| ()),
        ] {
            let e = r.unwrap_err();
            assert_eq!(e.kind(), "storage");
            assert!(e.message().contains("unknown TPC-H table `widgets`"));
        }
    }
}
