//! The six TPC-H queries of the paper's evaluation (Section 7.1): Q2, Q3,
//! Q5, Q8, Q9, Q10, as logical plans against a geo-distributed catalog.
//!
//! Query complexity in joins `j` (the paper's measure): Q3 j=2, Q10 j=3,
//! Q5/Q9 j=5, Q8 j=7, and Q2 j=8 after decorrelating its MIN-supplycost
//! subquery into a join with a grouped aggregate (the paper reports j=13
//! for Q2 on Calcite's expansion; the structure — a doubled
//! partsupp/supplier/nation/region chain — is the same).
//!
//! Faithfulness notes: Q8's per-year CASE market share and Q9's
//! EXTRACT(year) grouping are replaced by nation-level grouping (this
//! engine has no CASE/EXTRACT); join structure, predicates, and aggregate
//! arguments follow the TPC-H definitions.

use geoqp_common::{GeoError, Result, TableRef, Value};
use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
use geoqp_plan::logical::{LogicalPlan, SortKey};
use geoqp_plan::PlanBuilder;
use geoqp_storage::Catalog;
use std::sync::Arc;

fn col(n: &str) -> ScalarExpr {
    ScalarExpr::col(n)
}
fn lit(v: impl Into<Value>) -> ScalarExpr {
    ScalarExpr::lit(v)
}
fn date(y: i32, m: u32, d: u32) -> ScalarExpr {
    ScalarExpr::lit(Value::date(y, m, d))
}

/// Scan a table by bare name, building a union over site partitions when
/// the table is distributed (Section 7.5).
pub fn scan(catalog: &Catalog, table: &str) -> Result<PlanBuilder> {
    let entries = catalog.resolve(&TableRef::bare(table));
    match entries.len() {
        0 => Err(GeoError::Plan(format!("table `{table}` not in catalog"))),
        1 => {
            let e = &entries[0];
            Ok(PlanBuilder::scan(
                e.table.clone(),
                e.location.clone(),
                e.schema.as_ref().clone(),
            ))
        }
        _ => {
            let mut parts = entries.iter().map(|e| {
                PlanBuilder::scan(
                    e.table.clone(),
                    e.location.clone(),
                    e.schema.as_ref().clone(),
                )
            });
            let first = parts.next().unwrap();
            first.union(parts.collect())
        }
    }
}

/// The revenue expression `l_extendedprice * (1 - l_discount)`.
fn revenue_expr() -> ScalarExpr {
    col("l_extendedprice").mul(lit(1i64).sub(col("l_discount")))
}

/// TPC-H Q1 — pricing summary report (single-site; not part of the
/// paper's evaluated set, provided for library completeness).
pub fn q1(catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    let disc_price = revenue_expr();
    let charge = revenue_expr().mul(lit(1i64).add(col("l_tax")));
    let plan = scan(catalog, "lineitem")?
        .filter(col("l_shipdate").lt_eq(date(1998, 9, 2)))?
        .aggregate(
            &["l_returnflag", "l_linestatus"],
            vec![
                AggCall::new(AggFunc::Sum, col("l_quantity"), "sum_qty"),
                AggCall::new(AggFunc::Sum, col("l_extendedprice"), "sum_base_price"),
                AggCall::new(AggFunc::Sum, disc_price, "sum_disc_price"),
                AggCall::new(AggFunc::Sum, charge, "sum_charge"),
                AggCall::new(AggFunc::Avg, col("l_quantity"), "avg_qty"),
                AggCall::new(AggFunc::Avg, col("l_extendedprice"), "avg_price"),
                AggCall::new(AggFunc::Avg, col("l_discount"), "avg_disc"),
                AggCall::count_star("count_order"),
            ],
        )?
        .sort(vec![
            SortKey::asc("l_returnflag"),
            SortKey::asc("l_linestatus"),
        ])?;
    Ok(plan.build())
}

/// TPC-H Q6 — forecasting revenue change (single-site; library
/// completeness).
pub fn q6(catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    let plan = scan(catalog, "lineitem")?
        .filter(
            col("l_shipdate")
                .gt_eq(date(1994, 1, 1))
                .and(col("l_shipdate").lt(date(1995, 1, 1)))
                .and(col("l_discount").between(ScalarExpr::lit(0.05), ScalarExpr::lit(0.07)))
                .and(col("l_quantity").lt(lit(24i64))),
        )?
        .aggregate(
            &[],
            vec![AggCall::new(
                AggFunc::Sum,
                col("l_extendedprice").mul(col("l_discount")),
                "revenue",
            )],
        )?;
    Ok(plan.build())
}

/// TPC-H Q2 — minimum-cost supplier, decorrelated.
pub fn q2(catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    // Inner: min supply cost per part among European suppliers.
    let inner = scan(catalog, "partsupp")?
        .join(
            scan(catalog, "supplier")?,
            vec![("ps_suppkey", "s_suppkey")],
        )?
        .join(
            scan(catalog, "nation")?,
            vec![("s_nationkey", "n_nationkey")],
        )?
        .join(
            scan(catalog, "region")?,
            vec![("n_regionkey", "r_regionkey")],
        )?
        .filter(col("r_name").eq(lit("EUROPE")))?
        .aggregate(
            &["ps_partkey"],
            vec![AggCall::new(AggFunc::Min, col("ps_supplycost"), "mc_cost")],
        )?
        .project(vec![
            (col("ps_partkey"), "mc_partkey".into()),
            (col("mc_cost"), "mc_cost".into()),
        ])?;

    // Outer: part–partsupp–supplier–nation–region chain in Europe.
    let plan = scan(catalog, "part")?
        .filter(
            col("p_size")
                .eq(lit(15i64))
                .and(col("p_type").like("%BRASS")),
        )?
        .join(
            scan(catalog, "partsupp")?,
            vec![("p_partkey", "ps_partkey")],
        )?
        .join(
            scan(catalog, "supplier")?,
            vec![("ps_suppkey", "s_suppkey")],
        )?
        .join(
            scan(catalog, "nation")?,
            vec![("s_nationkey", "n_nationkey")],
        )?
        .join(
            scan(catalog, "region")?,
            vec![("n_regionkey", "r_regionkey")],
        )?
        .filter(col("r_name").eq(lit("EUROPE")))?
        .join(
            inner,
            vec![("p_partkey", "mc_partkey"), ("ps_supplycost", "mc_cost")],
        )?
        .project_columns(&[
            "s_acctbal",
            "s_name",
            "n_name",
            "p_partkey",
            "p_mfgr",
            "s_address",
            "s_phone",
        ])?
        .sort(vec![
            SortKey::desc("s_acctbal"),
            SortKey::asc("n_name"),
            SortKey::asc("s_name"),
            SortKey::asc("p_partkey"),
        ])?
        .limit(100);
    Ok(plan.build())
}

/// TPC-H Q3 — shipping-priority revenue.
pub fn q3(catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    let plan = scan(catalog, "customer")?
        .filter(col("c_mktsegment").eq(lit("BUILDING")))?
        .join(scan(catalog, "orders")?, vec![("c_custkey", "o_custkey")])?
        .filter(col("o_orderdate").lt(date(1995, 3, 15)))?
        .join(
            scan(catalog, "lineitem")?,
            vec![("o_orderkey", "l_orderkey")],
        )?
        .filter(col("l_shipdate").gt(date(1995, 3, 15)))?
        .aggregate(
            &["l_orderkey", "o_orderdate", "o_shippriority"],
            vec![AggCall::new(AggFunc::Sum, revenue_expr(), "revenue")],
        )?
        .sort(vec![SortKey::desc("revenue"), SortKey::asc("o_orderdate")])?
        .limit(10);
    Ok(plan.build())
}

/// TPC-H Q5 — local-supplier volume.
pub fn q5(catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    let plan = scan(catalog, "customer")?
        .join(scan(catalog, "orders")?, vec![("c_custkey", "o_custkey")])?
        .filter(
            col("o_orderdate")
                .gt_eq(date(1994, 1, 1))
                .and(col("o_orderdate").lt(date(1995, 1, 1))),
        )?
        .join(
            scan(catalog, "lineitem")?,
            vec![("o_orderkey", "l_orderkey")],
        )?
        .join(
            scan(catalog, "supplier")?,
            vec![("l_suppkey", "s_suppkey"), ("c_nationkey", "s_nationkey")],
        )?
        .join(
            scan(catalog, "nation")?,
            vec![("s_nationkey", "n_nationkey")],
        )?
        .join(
            scan(catalog, "region")?,
            vec![("n_regionkey", "r_regionkey")],
        )?
        .filter(col("r_name").eq(lit("ASIA")))?
        .aggregate(
            &["n_name"],
            vec![AggCall::new(AggFunc::Sum, revenue_expr(), "revenue")],
        )?
        .sort(vec![SortKey::desc("revenue")])?;
    Ok(plan.build())
}

/// TPC-H Q8 — national market share (nation-level volume variant).
pub fn q8(catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    // Supplier-side nation, renamed to avoid clashing with the customer's
    // nation in the join schema.
    let supp_nation = scan(catalog, "nation")?.project(vec![
        (col("n_nationkey"), "n2_nationkey".into()),
        (col("n_name"), "n2_name".into()),
    ])?;
    let plan = scan(catalog, "part")?
        .filter(col("p_type").eq(lit("ECONOMY ANODIZED STEEL")))?
        .join(scan(catalog, "lineitem")?, vec![("p_partkey", "l_partkey")])?
        .join(scan(catalog, "supplier")?, vec![("l_suppkey", "s_suppkey")])?
        .join(scan(catalog, "orders")?, vec![("l_orderkey", "o_orderkey")])?
        .filter(col("o_orderdate").between(date(1995, 1, 1), date(1996, 12, 31)))?
        .join(scan(catalog, "customer")?, vec![("o_custkey", "c_custkey")])?
        .join(
            scan(catalog, "nation")?,
            vec![("c_nationkey", "n_nationkey")],
        )?
        .join(
            scan(catalog, "region")?,
            vec![("n_regionkey", "r_regionkey")],
        )?
        .filter(col("r_name").eq(lit("AMERICA")))?
        .join(supp_nation, vec![("s_nationkey", "n2_nationkey")])?
        .aggregate(
            &["n2_name"],
            vec![AggCall::new(AggFunc::Sum, revenue_expr(), "volume")],
        )?
        .sort(vec![SortKey::asc("n2_name")])?;
    Ok(plan.build())
}

/// TPC-H Q9 — product-type profit (nation-level variant).
pub fn q9(catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    let profit = revenue_expr().sub(col("ps_supplycost").mul(col("l_quantity")));
    let plan = scan(catalog, "part")?
        .filter(col("p_name").like("%green%"))?
        .join(
            scan(catalog, "partsupp")?,
            vec![("p_partkey", "ps_partkey")],
        )?
        .join(
            scan(catalog, "lineitem")?,
            vec![("ps_partkey", "l_partkey"), ("ps_suppkey", "l_suppkey")],
        )?
        .join(scan(catalog, "supplier")?, vec![("l_suppkey", "s_suppkey")])?
        .join(scan(catalog, "orders")?, vec![("l_orderkey", "o_orderkey")])?
        .join(
            scan(catalog, "nation")?,
            vec![("s_nationkey", "n_nationkey")],
        )?
        .aggregate(
            &["n_name"],
            vec![AggCall::new(AggFunc::Sum, profit, "sum_profit")],
        )?
        .sort(vec![SortKey::asc("n_name")])?;
    Ok(plan.build())
}

/// TPC-H Q10 — returned-item reporting.
pub fn q10(catalog: &Catalog) -> Result<Arc<LogicalPlan>> {
    let plan = scan(catalog, "customer")?
        .join(scan(catalog, "orders")?, vec![("c_custkey", "o_custkey")])?
        .filter(
            col("o_orderdate")
                .gt_eq(date(1993, 10, 1))
                .and(col("o_orderdate").lt(date(1994, 1, 1))),
        )?
        .join(
            scan(catalog, "lineitem")?,
            vec![("o_orderkey", "l_orderkey")],
        )?
        .filter(col("l_returnflag").eq(lit("R")))?
        .join(
            scan(catalog, "nation")?,
            vec![("c_nationkey", "n_nationkey")],
        )?
        .aggregate(
            &[
                "c_custkey",
                "c_name",
                "c_acctbal",
                "c_phone",
                "n_name",
                "c_address",
            ],
            vec![AggCall::new(AggFunc::Sum, revenue_expr(), "revenue")],
        )?
        .sort(vec![SortKey::desc("revenue")])?
        .limit(20);
    Ok(plan.build())
}

/// All evaluated queries in the paper's order, as `(name, plan)` pairs.
pub fn all_queries(catalog: &Catalog) -> Result<Vec<(&'static str, Arc<LogicalPlan>)>> {
    Ok(vec![
        ("Q2", q2(catalog)?),
        ("Q3", q3(catalog)?),
        ("Q5", q5(catalog)?),
        ("Q8", q8(catalog)?),
        ("Q9", q9(catalog)?),
        ("Q10", q10(catalog)?),
    ])
}

/// Look up one query by name (`"Q3"` etc.).
pub fn query_by_name(catalog: &Catalog, name: &str) -> Result<Arc<LogicalPlan>> {
    match name.to_ascii_uppercase().as_str() {
        "Q1" => q1(catalog),
        "Q6" => q6(catalog),
        "Q2" => q2(catalog),
        "Q3" => q3(catalog),
        "Q5" => q5(catalog),
        "Q8" => q8(catalog),
        "Q9" => q9(catalog),
        "Q10" => q10(catalog),
        other => Err(GeoError::Plan(format!("unknown TPC-H query `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::paper_catalog;

    #[test]
    fn join_counts_match_complexity_classes() {
        let c = paper_catalog(10.0);
        let expected = [
            ("Q2", 8),
            ("Q3", 2),
            ("Q5", 5),
            ("Q8", 7),
            ("Q9", 5),
            ("Q10", 3),
        ];
        for (name, j) in expected {
            let plan = query_by_name(&c, name).unwrap();
            assert_eq!(plan.join_count(), j, "{name} join count");
        }
    }

    #[test]
    fn queries_span_multiple_locations() {
        let c = paper_catalog(10.0);
        for (name, plan) in all_queries(&c).unwrap() {
            assert!(
                plan.source_locations().len() >= 2,
                "{name} touches {} locations",
                plan.source_locations().len()
            );
        }
    }

    #[test]
    fn queries_build_on_partitioned_catalog() {
        let c = crate::distribution::paper_catalog_partitioned(1.0, 3).unwrap();
        for (name, plan) in all_queries(&c).unwrap() {
            let mut unions = 0;
            plan.visit(&mut |p| {
                if matches!(p, LogicalPlan::Union { .. }) {
                    unions += 1;
                }
            });
            if ["Q3", "Q5", "Q8", "Q10"].contains(&name) {
                assert!(unions >= 1, "{name} should union partitions");
            }
        }
    }

    #[test]
    fn unknown_query_is_an_error() {
        let c = paper_catalog(1.0);
        assert!(query_by_name(&c, "Q99").is_err());
    }

    #[test]
    fn q1_and_q6_are_single_site() {
        let c = paper_catalog(1.0);
        for name in ["Q1", "Q6"] {
            let plan = query_by_name(&c, name).unwrap();
            assert_eq!(plan.join_count(), 0, "{name}");
            assert_eq!(plan.source_locations().len(), 1, "{name}");
        }
        // They are not part of the paper's evaluated set.
        let names: Vec<&str> = all_queries(&c).unwrap().iter().map(|(n, _)| *n).collect();
        assert!(!names.contains(&"Q1"));
    }
}
