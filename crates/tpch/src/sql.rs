//! SQL texts for the TPC-H queries expressible in the engine's dialect
//! (no subqueries / CASE / EXTRACT). The programmatic builders in
//! [`crate::queries`] remain the evaluation's source of truth; these texts
//! exercise the parser + lowering path and are verified equivalent by the
//! test suite.

/// Queries with a SQL form, as `(name, sql)`.
pub fn sql_queries() -> Vec<(&'static str, &'static str)> {
    vec![("Q1", Q1), ("Q3", Q3), ("Q6", Q6), ("Q10", Q10)]
}

/// The SQL text of a query, when it has one.
pub fn sql_of(name: &str) -> Option<&'static str> {
    sql_queries()
        .into_iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, s)| s)
}

/// TPC-H Q1 — pricing summary report.
pub const Q1: &str = "\
SELECT l_returnflag, l_linestatus, \
       SUM(l_quantity) AS sum_qty, \
       SUM(l_extendedprice) AS sum_base_price, \
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
       AVG(l_quantity) AS avg_qty, \
       AVG(l_extendedprice) AS avg_price, \
       AVG(l_discount) AS avg_disc, \
       COUNT(*) AS count_order \
FROM lineitem \
WHERE l_shipdate <= DATE '1998-09-02' \
GROUP BY l_returnflag, l_linestatus \
ORDER BY l_returnflag, l_linestatus";

/// TPC-H Q3 — shipping-priority revenue.
pub const Q3: &str = "\
SELECT l_orderkey, \
       SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
       o_orderdate, o_shippriority \
FROM customer, orders, lineitem \
WHERE c_mktsegment = 'BUILDING' \
  AND c_custkey = o_custkey \
  AND l_orderkey = o_orderkey \
  AND o_orderdate < DATE '1995-03-15' \
  AND l_shipdate > DATE '1995-03-15' \
GROUP BY l_orderkey, o_orderdate, o_shippriority \
ORDER BY revenue DESC, o_orderdate \
LIMIT 10";

/// TPC-H Q6 — forecasting revenue change.
pub const Q6: &str = "\
SELECT SUM(l_extendedprice * l_discount) AS revenue \
FROM lineitem \
WHERE l_shipdate >= DATE '1994-01-01' \
  AND l_shipdate < DATE '1995-01-01' \
  AND l_discount BETWEEN 0.05 AND 0.07 \
  AND l_quantity < 24";

/// TPC-H Q10 — returned-item reporting.
pub const Q10: &str = "\
SELECT c_custkey, c_name, \
       SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
       c_acctbal, n_name, c_address, c_phone \
FROM customer, orders, lineitem, nation \
WHERE c_custkey = o_custkey \
  AND l_orderkey = o_orderkey \
  AND o_orderdate >= DATE '1993-10-01' \
  AND o_orderdate < DATE '1994-01-01' \
  AND l_returnflag = 'R' \
  AND c_nationkey = n_nationkey \
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address \
ORDER BY revenue DESC \
LIMIT 20";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{paper_catalog, populate};

    #[test]
    fn sql_texts_parse_and_lower() {
        let catalog = paper_catalog(1.0);
        for (name, sql) in sql_queries() {
            let ast =
                geoqp_parser::parse_query(sql).unwrap_or_else(|e| panic!("{name} parse: {e}"));
            let plan = geoqp_parser::lower_query(&ast, &catalog)
                .unwrap_or_else(|e| panic!("{name} lower: {e}"));
            // The SQL forms reference the same tables as the builders.
            let built = crate::queries::query_by_name(&catalog, name).unwrap();
            assert_eq!(plan.tables(), built.tables(), "{name} tables");
            assert_eq!(plan.join_count(), built.join_count(), "{name} joins");
        }
    }

    #[test]
    fn sql_and_builder_forms_compute_identical_aggregates() {
        let sf = 0.001;
        let catalog = std::sync::Arc::new(paper_catalog(sf));
        populate(&catalog, sf, 7).unwrap();
        let policies = crate::policy_gen::no_restriction_policies(&catalog).unwrap();
        let engine = geoqp_core::Engine::new(
            std::sync::Arc::clone(&catalog),
            std::sync::Arc::new(policies),
            geoqp_net::NetworkTopology::paper_wan(),
        );
        // Q1 and Q6 have deterministic output (full sorts / single row).
        for name in ["Q1", "Q6"] {
            let sql = sql_of(name).unwrap();
            let (_, sql_result) = engine
                .run_sql(sql, geoqp_core::OptimizerMode::Compliant, None)
                .unwrap_or_else(|e| panic!("{name} sql run: {e}"));
            let built = crate::queries::query_by_name(&catalog, name).unwrap();
            let opt = engine
                .optimize(&built, geoqp_core::OptimizerMode::Compliant, None)
                .unwrap();
            let built_result = engine.execute(&opt.physical).unwrap();
            assert_eq!(
                sql_result.rows.len(),
                built_result.rows.len(),
                "{name} cardinality"
            );
            // Q6: single aggregate row must match exactly.
            if name == "Q6" {
                assert_eq!(sql_result.rows.rows()[0], built_result.rows.rows()[0]);
            }
        }
    }

    #[test]
    fn sql_of_lookup() {
        assert!(sql_of("q3").is_some());
        assert!(sql_of("Q10").is_some());
        assert!(sql_of("Q5").is_none()); // needs the two-key supplier join
    }
}
