//! Deterministic dbgen-style data generation.
//!
//! Seeded and scale-factor parameterized. The generator preserves what the
//! evaluated queries and policies observe: primary keys, PK–FK integrity
//! (including the dbgen `partsupp`→`lineitem` supplier formula, so Q9's
//! two-key join has matches), date ranges, and the categorical
//! distributions behind every predicate used in Section 7's workloads.

use crate::schema::{rows_at, unknown_table};
use crate::text;
use geoqp_common::{value::days_from_civil, Result, Row, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row count for one of the built-in tables; the names below are all
/// literals from [`crate::schema::TABLES`], so the lookup cannot fail.
fn n_rows(table: &str, sf: f64) -> u64 {
    rows_at(table, sf).expect("built-in TPC-H table name")
}

/// First order date (1992-01-01) and the day span of o_orderdate.
fn order_date_range() -> (i32, i32) {
    let start = days_from_civil(1992, 1, 1);
    let end = days_from_civil(1998, 8, 2);
    (start, end - start)
}

/// The dbgen formula tying line items to one of a part's four suppliers.
pub fn ps_suppkey_for(partkey: i64, i: i64, n_supp: i64) -> i64 {
    (partkey + i * (n_supp / 4 + (partkey - 1) / n_supp)) % n_supp + 1
}

/// The o_orderdate column, generated from its own dedicated stream so
/// that `lineitem` can correlate ship dates without replaying the orders
/// generator's RNG consumption.
fn order_dates(sf: f64, seed: u64) -> Vec<i32> {
    let n = n_rows("orders", sf);
    let (start, span) = order_date_range();
    let mut rng = rng_for("orderdates", seed);
    (0..n).map(|_| start + rng.gen_range(0..span)).collect()
}

fn rng_for(table: &str, seed: u64) -> StdRng {
    let mut h: u64 = seed ^ 0x9e37_79b9_7f4a_7c15;
    for b in table.bytes() {
        h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(h)
}

/// Generate a TPC-H table's rows at a scale factor, deterministically from
/// `seed`.
pub fn generate(table: &str, sf: f64, seed: u64) -> Result<Vec<Row>> {
    Ok(match table {
        "region" => region(),
        "nation" => nation(),
        "supplier" => supplier(sf, seed),
        "part" => part(sf, seed),
        "partsupp" => partsupp(sf, seed),
        "customer" => customer(sf, seed),
        "orders" => orders(sf, seed),
        "lineitem" => lineitem(sf, seed),
        _ => return Err(unknown_table(table)),
    })
}

fn region() -> Vec<Row> {
    text::REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int64(i as i64),
                Value::str(*name),
                Value::str(text::comment(i as u64, 4)),
            ]
        })
        .collect()
}

fn nation() -> Vec<Row> {
    text::NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Value::Int64(i as i64),
                Value::str(*name),
                Value::Int64(*region as i64),
                Value::str(text::comment(100 + i as u64, 4)),
            ]
        })
        .collect()
}

fn supplier(sf: f64, seed: u64) -> Vec<Row> {
    let n = n_rows("supplier", sf);
    let mut rng = rng_for("supplier", seed);
    (1..=n as i64)
        .map(|k| {
            vec![
                Value::Int64(k),
                Value::str(format!("Supplier#{k:09}")),
                Value::str(format!("addr-s-{k}")),
                Value::Int64(rng.gen_range(0..25)),
                Value::str(format!("{}-{:07}", 10 + k % 25, k)),
                Value::Float64((rng.gen_range(-99_999..999_999) as f64) / 100.0),
                Value::str(text::comment(seed ^ k as u64, 8)),
            ]
        })
        .collect()
}

fn part(sf: f64, seed: u64) -> Vec<Row> {
    let n = n_rows("part", sf);
    let mut rng = rng_for("part", seed);
    (1..=n as i64)
        .map(|k| {
            let name: Vec<&str> = (0..5)
                .map(|_| text::COLORS[rng.gen_range(0..text::COLORS.len())])
                .collect();
            let mfgr = rng.gen_range(1..=5);
            let brand = mfgr * 10 + rng.gen_range(1..=5);
            let ptype = format!(
                "{} {} {}",
                text::TYPE_SYLLABLE_1[rng.gen_range(0..text::TYPE_SYLLABLE_1.len())],
                text::TYPE_SYLLABLE_2[rng.gen_range(0..text::TYPE_SYLLABLE_2.len())],
                text::TYPE_SYLLABLE_3[rng.gen_range(0..text::TYPE_SYLLABLE_3.len())],
            );
            let container = format!(
                "{} {}",
                text::CONTAINER_SIZES[rng.gen_range(0..text::CONTAINER_SIZES.len())],
                text::CONTAINER_KINDS[rng.gen_range(0..text::CONTAINER_KINDS.len())],
            );
            vec![
                Value::Int64(k),
                Value::str(name.join(" ")),
                Value::str(format!("Manufacturer#{mfgr}")),
                Value::str(format!("Brand#{brand}")),
                Value::str(ptype),
                Value::Int64(rng.gen_range(1..=50)),
                Value::str(container),
                Value::Float64((90_000 + (k % 200) * 100 + k % 1000) as f64 / 100.0),
                Value::str(text::comment(seed ^ (k as u64) << 1, 5)),
            ]
        })
        .collect()
}

fn partsupp(sf: f64, seed: u64) -> Vec<Row> {
    let n_part = n_rows("part", sf) as i64;
    let n_supp = n_rows("supplier", sf) as i64;
    let mut rng = rng_for("partsupp", seed);
    let mut rows = Vec::with_capacity((n_part * 4) as usize);
    for partkey in 1..=n_part {
        for i in 0..4 {
            rows.push(vec![
                Value::Int64(partkey),
                Value::Int64(ps_suppkey_for(partkey, i, n_supp)),
                Value::Int64(rng.gen_range(1..=9999)),
                Value::Float64((rng.gen_range(100..100_000) as f64) / 100.0),
                Value::str(text::comment(seed ^ (partkey as u64 * 4 + i as u64), 6)),
            ]);
        }
    }
    rows
}

fn customer(sf: f64, seed: u64) -> Vec<Row> {
    let n = n_rows("customer", sf);
    let mut rng = rng_for("customer", seed);
    (1..=n as i64)
        .map(|k| {
            vec![
                Value::Int64(k),
                Value::str(format!("Customer#{k:09}")),
                Value::str(format!("addr-c-{k}")),
                Value::Int64(rng.gen_range(0..25)),
                Value::str(format!("{}-{:07}", 10 + k % 25, k)),
                Value::Float64((rng.gen_range(-99_999..999_999) as f64) / 100.0),
                Value::str(text::SEGMENTS[rng.gen_range(0..text::SEGMENTS.len())]),
                Value::str(text::comment(seed ^ (k as u64) << 2, 8)),
            ]
        })
        .collect()
}

fn orders(sf: f64, seed: u64) -> Vec<Row> {
    let n = n_rows("orders", sf);
    let n_cust = n_rows("customer", sf) as i64;
    let dates = order_dates(sf, seed);
    let mut rng = rng_for("orders", seed);
    (1..=n as i64)
        .map(|k| {
            let status = ["F", "O", "P"][rng.gen_range(0..3usize)];
            vec![
                Value::Int64(k),
                Value::Int64(rng.gen_range(1..=n_cust.max(1))),
                Value::str(status),
                Value::Float64((rng.gen_range(100_000..50_000_000) as f64) / 100.0),
                Value::Date(dates[(k - 1) as usize]),
                Value::str(text::PRIORITIES[rng.gen_range(0..text::PRIORITIES.len())]),
                Value::str(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
                Value::Int64(0),
                Value::str(text::comment(seed ^ (k as u64) << 3, 10)),
            ]
        })
        .collect()
}

fn lineitem(sf: f64, seed: u64) -> Vec<Row> {
    let n_orders = n_rows("orders", sf) as i64;
    let n_part = n_rows("part", sf) as i64;
    let n_supp = n_rows("supplier", sf) as i64;
    let target = n_rows("lineitem", sf) as usize;
    // The shared date stream keeps l_shipdate > o_orderdate.
    let order_dates = order_dates(sf, seed);

    let mut rng = rng_for("lineitem", seed);
    let mut rows = Vec::with_capacity(target + 8);
    let mut orderkey = 0i64;
    while rows.len() < target {
        orderkey = orderkey % n_orders + 1;
        let lines = rng.gen_range(1..=7usize);
        let odate = order_dates[(orderkey - 1) as usize];
        for line in 1..=lines {
            let partkey = rng.gen_range(1..=n_part.max(1));
            let supp_i = rng.gen_range(0..4i64);
            let suppkey = ps_suppkey_for(partkey, supp_i, n_supp.max(1));
            let quantity = rng.gen_range(1..=50i64);
            let price_per = (90_000 + (partkey % 200) * 100 + partkey % 1000) as f64 / 100.0;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let returnflag = if rng.gen_bool(0.25) {
                "R"
            } else if rng.gen_bool(0.5) {
                "A"
            } else {
                "N"
            };
            let ship = odate + rng.gen_range(1..=121);
            rows.push(vec![
                Value::Int64(orderkey),
                Value::Int64(partkey),
                Value::Int64(suppkey),
                Value::Int64(line as i64),
                Value::Int64(quantity),
                Value::Float64(quantity as f64 * price_per),
                Value::Float64(discount),
                Value::Float64(tax),
                Value::str(returnflag),
                Value::str(if ship > days_from_civil(1995, 6, 17) {
                    "O"
                } else {
                    "F"
                }),
                Value::Date(ship),
                Value::Date(ship + rng.gen_range(-30..=60)),
                Value::Date(ship + rng.gen_range(1..=30)),
                Value::str(
                    text::SHIP_INSTRUCTIONS[rng.gen_range(0..text::SHIP_INSTRUCTIONS.len())],
                ),
                Value::str(text::SHIP_MODES[rng.gen_range(0..text::SHIP_MODES.len())]),
                Value::str(text::comment(seed ^ rows.len() as u64, 10)),
            ]);
        }
    }
    rows.truncate(target);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TABLES;
    use std::collections::BTreeSet;

    const SF: f64 = 0.002;

    #[test]
    fn all_tables_generate_with_correct_arity_and_counts() {
        for t in TABLES {
            let rows = generate(t, SF, 7).unwrap();
            let schema = crate::schema::schema_of(t).unwrap();
            assert_eq!(
                rows.len() as u64,
                rows_at(t, SF).unwrap(),
                "{t} cardinality"
            );
            for r in rows.iter().take(20) {
                assert_eq!(r.len(), schema.len(), "{t} arity");
                for (v, f) in r.iter().zip(schema.fields()) {
                    assert_eq!(v.data_type(), Some(f.data_type), "{t}.{}: {v}", f.name);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for t in ["customer", "lineitem"] {
            assert_eq!(generate(t, SF, 7).unwrap(), generate(t, SF, 7).unwrap());
            assert_ne!(generate(t, SF, 7).unwrap(), generate(t, SF, 8).unwrap());
        }
    }

    #[test]
    fn pk_fk_integrity() {
        let n_cust = rows_at("customer", SF).unwrap() as i64;
        for o in generate("orders", SF, 7).unwrap() {
            let cust = o[1].as_i64().unwrap();
            assert!(cust >= 1 && cust <= n_cust);
        }
        let ps: BTreeSet<(i64, i64)> = generate("partsupp", SF, 7)
            .unwrap()
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        for l in generate("lineitem", SF, 7).unwrap().iter().take(500) {
            let key = (l[1].as_i64().unwrap(), l[2].as_i64().unwrap());
            assert!(ps.contains(&key), "lineitem {key:?} has no partsupp row");
        }
    }

    #[test]
    fn ship_date_follows_order_date() {
        let orders = generate("orders", SF, 7).unwrap();
        let line = generate("lineitem", SF, 7).unwrap();
        for l in line.iter().take(200) {
            let ok = l[0].as_i64().unwrap();
            let odate = match &orders[(ok - 1) as usize][4] {
                Value::Date(d) => *d,
                other => panic!("bad date {other}"),
            };
            let ship = match &l[10] {
                Value::Date(d) => *d,
                other => panic!("bad date {other}"),
            };
            assert!(ship > odate);
        }
    }

    #[test]
    fn categorical_distributions_present() {
        let cust = generate("customer", 0.01, 7).unwrap();
        let segs: BTreeSet<&str> = cust.iter().map(|r| r[6].as_str().unwrap()).collect();
        assert_eq!(segs.len(), 5, "all market segments appear");
        let parts = generate("part", 0.01, 7).unwrap();
        assert!(parts
            .iter()
            .any(|r| r[4].as_str().unwrap().contains("BRASS")));
        let line = generate("lineitem", 0.002, 7).unwrap();
        assert!(line.iter().any(|r| r[8].as_str() == Some("R")));
    }

    #[test]
    fn unknown_table_is_a_typed_storage_error() {
        let e = generate("widgets", SF, 7).unwrap_err();
        assert_eq!(e.kind(), "storage");
        assert!(e.message().contains("unknown TPC-H table `widgets`"));
    }
}
