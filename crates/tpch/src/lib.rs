//! # geoqp-tpch
//!
//! The TPC-H substrate of the paper's evaluation (Section 7):
//!
//! * [`schema`] — the eight TPC-H table schemas with cardinalities and
//!   per-column NDV statistics at a given scale factor,
//! * [`gen`] — a deterministic, seeded dbgen-style data generator
//!   preserving PK–FK integrity and the value distributions the evaluated
//!   queries' predicates touch,
//! * [`distribution`] — the geo-distribution of Table 2 (five locations
//!   L1–L5) and the Section 7.5 variant with Customer/Orders partitioned
//!   across sites,
//! * [`queries`] — the six evaluated TPC-H queries (Q2, Q3, Q5, Q8, Q9,
//!   Q10) as logical plans,
//! * [`adhoc`] — the random query generator of Section 7.1 (PK–FK joins
//!   spanning several locations, 55%/35%/10% two/three/four tables, ~30%
//!   aggregation queries),
//! * [`policy_gen`] — policy-expression generators for the four template
//!   sets T, C, CR, and CR+A, including the exact Table 3 snippet.

pub mod adhoc;
pub mod distribution;
pub mod gen;
pub mod policy_gen;
pub mod queries;
pub mod schema;
pub mod sql;
pub mod text;

pub use distribution::{paper_catalog, paper_catalog_partitioned, populate};
pub use policy_gen::{generate_policies, table3_policies, PolicyTemplate};
pub use queries::{all_queries, query_by_name};
