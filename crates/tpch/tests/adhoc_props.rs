//! Property tests for the ad-hoc workload generator: every generated
//! query's SQL text round-trips through the parser to the same plan
//! shape, generation is byte-deterministic per seed, every query plans
//! under every policy template, and `generate_policies` respects the
//! per-template `base_count` invariants.

use geoqp_storage::Catalog;
use geoqp_tpch::adhoc::generate_adhoc;
use geoqp_tpch::paper_catalog;
use geoqp_tpch::policy_gen::{generate_policies, PolicyTemplate};
use proptest::prelude::*;
use std::sync::Arc;

const TEMPLATES: [PolicyTemplate; 4] = [
    PolicyTemplate::T,
    PolicyTemplate::C,
    PolicyTemplate::CR,
    PolicyTemplate::CRA,
];

fn catalog() -> Catalog {
    paper_catalog(1.0)
}

/// The generated plans interleave filters differently from lowered SQL
/// (N single-predicate filters vs one conjoined filter), so shape
/// equality is tables + joins + output schema + aggregation, not node
/// identity.
fn assert_same_shape(sql: &str, built: &geoqp_plan::LogicalPlan, cat: &Catalog, agg: bool) {
    let ast = geoqp_parser::parse_query(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
    let lowered =
        geoqp_parser::lower_query(&ast, cat).unwrap_or_else(|e| panic!("lower `{sql}`: {e}"));
    assert_eq!(lowered.tables(), built.tables(), "tables of `{sql}`");
    assert_eq!(lowered.join_count(), built.join_count(), "joins of `{sql}`");
    assert_eq!(
        lowered.schema().names(),
        built.schema().names(),
        "output schema of `{sql}`"
    );
    assert_eq!(
        format!("{lowered:?}").contains("Aggregate"),
        agg,
        "aggregation of `{sql}`"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SQL text → parse → lower reproduces each generated plan's shape.
    #[test]
    fn generated_sql_roundtrips_through_parser(seed in 0u64..10_000) {
        let cat = catalog();
        for q in generate_adhoc(&cat, 12, seed).unwrap() {
            assert_same_shape(&q.sql, &q.plan, &cat, q.aggregated);
        }
    }

    /// Same seed ⇒ byte-identical SQL list (and identical plans).
    #[test]
    fn same_seed_is_byte_identical(seed in 0u64..10_000) {
        let cat = catalog();
        let a = generate_adhoc(&cat, 10, seed).unwrap();
        let b = generate_adhoc(&cat, 10, seed).unwrap();
        let sql_a: Vec<&str> = a.iter().map(|q| q.sql.as_str()).collect();
        let sql_b: Vec<&str> = b.iter().map(|q| q.sql.as_str()).collect();
        prop_assert_eq!(sql_a, sql_b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.plan, &y.plan);
        }
    }

    /// `generate_policies` always yields `max(count, base_count)`
    /// expressions and never fewer than the template's base set.
    #[test]
    fn policy_counts_respect_base_invariants(count in 0usize..40, seed in 0u64..1_000) {
        let cat = catalog();
        for template in TEMPLATES {
            let policies = generate_policies(&cat, template, count, seed).unwrap();
            prop_assert_eq!(policies.len(), count.max(template.base_count()));
            prop_assert!(policies.len() >= template.base_count());
        }
    }
}

/// Every generated query optimizes to a compliant plan under every
/// template — the generator's "guaranteed to plan" contract.
#[test]
fn every_query_plans_under_every_template() {
    let cat = Arc::new(catalog());
    let queries = generate_adhoc(&cat, 40, 2021).unwrap();
    for template in TEMPLATES {
        let policies = generate_policies(&cat, template, 50, 2021).unwrap();
        let engine = geoqp_core::Engine::new(
            Arc::clone(&cat),
            Arc::new(policies),
            geoqp_net::NetworkTopology::paper_wan(),
        );
        for q in &queries {
            let opt = engine
                .optimize(&q.plan, geoqp_core::OptimizerMode::Compliant, None)
                .unwrap_or_else(|e| {
                    panic!("query #{} under {}: {e}\n{}", q.id, template.name(), q.sql)
                });
            engine.audit(&opt.physical).unwrap_or_else(|e| {
                panic!(
                    "query #{} under {} audits dirty: {e}",
                    q.id,
                    template.name()
                )
            });
            assert!(
                opt.stats.dp_states > 0,
                "query #{}: site selection reported no DP states",
                q.id
            );
        }
    }
}

/// Distinct seeds almost surely disagree — a smoke check that the seed
/// actually reaches the generator.
#[test]
fn different_seeds_differ() {
    let cat = catalog();
    let a = generate_adhoc(&cat, 20, 1).unwrap();
    let b = generate_adhoc(&cat, 20, 2).unwrap();
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.sql != y.sql),
        "20 queries from seeds 1 and 2 are identical"
    );
}
