//! Deterministic, seedable fault injection for the simulated WAN.
//!
//! A [`FaultPlan`] is a *schedule* of availability faults — per-link drops,
//! delays, and flaky windows, network partitions, and per-site crash
//! windows — expressed over a **logical step clock** instead of wall time.
//! The simulator advances the clock once per transfer (or scan) attempt, so
//! a given seed and schedule replay the exact same fault sequence on every
//! run: determinism is what makes failover behaviour testable.
//!
//! Probabilistic faults (`flaky` links) derive their coin flips from a hash
//! of `(seed, step, from, to)` rather than shared RNG state, so the outcome
//! of one link's flip never depends on how many other faults were consulted
//! before it.

use geoqp_common::Location;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A half-open window `[start, end)` of logical steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepWindow {
    /// First step (inclusive) at which the fault is active.
    pub start: u64,
    /// First step at which the fault is no longer active.
    pub end: u64,
}

impl StepWindow {
    /// The window covering every step.
    pub const ALWAYS: StepWindow = StepWindow {
        start: 0,
        end: u64::MAX,
    };

    /// A window `[start, end)`.
    pub fn new(start: u64, end: u64) -> StepWindow {
        StepWindow { start, end }
    }

    /// A window from `start` onward.
    pub fn from(start: u64) -> StepWindow {
        StepWindow {
            start,
            end: u64::MAX,
        }
    }

    /// Whether `step` falls inside the window.
    pub fn contains(&self, step: u64) -> bool {
        self.start <= step && step < self.end
    }

    /// Parse `"a..b"`, `"a.."`, `"..b"`, or `".."` (start defaults to 0,
    /// end to forever).
    pub fn parse(spec: &str) -> Result<StepWindow, String> {
        let (a, b) = spec
            .split_once("..")
            .ok_or_else(|| format!("window {spec:?} is not of the form a..b"))?;
        let start = if a.is_empty() {
            0
        } else {
            a.parse().map_err(|_| format!("bad window start {a:?}"))?
        };
        let end = if b.is_empty() {
            u64::MAX
        } else {
            b.parse().map_err(|_| format!("bad window end {b:?}"))?
        };
        Ok(StepWindow { start, end })
    }
}

impl fmt::Display for StepWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start > 0 {
            write!(f, "{}", self.start)?;
        }
        write!(f, "..")?;
        if self.end != u64::MAX {
            write!(f, "{}", self.end)?;
        }
        Ok(())
    }
}

/// Salt selecting the loss-burst coin (independent of the flaky coin).
const LOSS_BURST_SALT: u64 = 0x6C6F_7373_6275_7273; // "lossburs"

/// One scheduled fault on a directed link.
#[derive(Debug, Clone)]
enum LinkFault {
    /// Every attempt inside the window fails.
    Drop(StepWindow),
    /// Attempts inside the window fail with probability `prob`,
    /// deterministically per `(seed, step, link)`.
    Flaky { prob: f64, window: StepWindow },
    /// Attempts inside the window are delivered with `extra_ms` of added
    /// latency.
    Delay { extra_ms: f64, window: StepWindow },
    /// Attempts inside the window are delivered, but the link is *gray*:
    /// its effective `α + β·b` cost is multiplied by `factor`. The
    /// sustained-slowdown fault the health scorer and hedging defend
    /// against.
    Degrade { factor: f64, window: StepWindow },
    /// A loss burst: attempts inside the window drop with probability
    /// `prob`, deterministically per `(seed, step, link)` — like `Flaky`,
    /// but drawn from an independent coin so a burst layered over a flaky
    /// schedule never reuses its flips.
    LossBurst { prob: f64, window: StepWindow },
}

/// The simulator's answer for one transfer attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultVerdict {
    /// The transfer goes through, possibly slowed by injected delay.
    Deliver {
        /// Injected extra latency, ms.
        extra_delay_ms: f64,
    },
    /// The transfer goes through, but the link is degraded: its effective
    /// message cost is `factor ×` the `α + β·b` prediction, plus any
    /// injected delay. Overlapping degrade windows compound
    /// multiplicatively.
    Degraded {
        /// Latency multiplier (> 1).
        factor: f64,
        /// Injected extra latency, ms.
        extra_delay_ms: f64,
    },
    /// The transfer fails.
    Drop {
        /// Whether a retry at a later step could succeed (link faults and
        /// partitions heal; open-ended site crashes do not).
        transient: bool,
        /// The crashed site responsible, when the drop is a site fault
        /// rather than a link/partition fault.
        culprit: Option<Location>,
        /// Human-readable cause.
        reason: String,
    },
}

/// A deterministic schedule of network and site faults.
///
/// The logical step clock is an [`AtomicU64`], so a plan can be shared by
/// reference across the concurrent runtime's site worker threads: every
/// `tick` hands out a unique step even under contention.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    site_crashes: BTreeMap<Location, Vec<StepWindow>>,
    link_faults: BTreeMap<(Location, Location), Vec<LinkFault>>,
    partitions: Vec<(BTreeSet<Location>, StepWindow)>,
    clock: AtomicU64,
}

impl Clone for FaultPlan {
    fn clone(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            site_crashes: self.site_crashes.clone(),
            link_faults: self.link_faults.clone(),
            partitions: self.partitions.clone(),
            clock: AtomicU64::new(self.clock.load(Ordering::SeqCst)),
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The seed the plan's probabilistic faults are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.site_crashes.is_empty() && self.link_faults.is_empty() && self.partitions.is_empty()
    }

    /// Crash `site` for `window`: scans at the site fail and every
    /// transfer touching it drops, non-transiently.
    pub fn with_crash(mut self, site: impl Into<Location>, window: StepWindow) -> FaultPlan {
        self.site_crashes
            .entry(site.into())
            .or_default()
            .push(window);
        self
    }

    /// Drop every `from → to` transfer inside `window`.
    pub fn with_drop(
        mut self,
        from: impl Into<Location>,
        to: impl Into<Location>,
        window: StepWindow,
    ) -> FaultPlan {
        self.link_faults
            .entry((from.into(), to.into()))
            .or_default()
            .push(LinkFault::Drop(window));
        self
    }

    /// Drop `from → to` transfers inside `window` with probability `prob`.
    pub fn with_flaky(
        mut self,
        from: impl Into<Location>,
        to: impl Into<Location>,
        prob: f64,
        window: StepWindow,
    ) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&prob),
            "flaky probability out of [0,1]"
        );
        self.link_faults
            .entry((from.into(), to.into()))
            .or_default()
            .push(LinkFault::Flaky { prob, window });
        self
    }

    /// Deliver `from → to` transfers inside `window` with `extra_ms` of
    /// added latency.
    pub fn with_delay(
        mut self,
        from: impl Into<Location>,
        to: impl Into<Location>,
        extra_ms: f64,
        window: StepWindow,
    ) -> FaultPlan {
        self.link_faults
            .entry((from.into(), to.into()))
            .or_default()
            .push(LinkFault::Delay { extra_ms, window });
        self
    }

    /// Degrade `from → to` transfers inside `window`: delivered, but at
    /// `factor ×` the modelled cost (a sustained gray slowdown).
    pub fn with_degrade(
        mut self,
        from: impl Into<Location>,
        to: impl Into<Location>,
        factor: f64,
        window: StepWindow,
    ) -> FaultPlan {
        assert!(factor >= 1.0, "degrade factor below 1");
        self.link_faults
            .entry((from.into(), to.into()))
            .or_default()
            .push(LinkFault::Degrade { factor, window });
        self
    }

    /// Drop `from → to` transfers inside `window` with probability `prob`,
    /// on a coin independent of any `flaky` schedule on the same link.
    pub fn with_loss_burst(
        mut self,
        from: impl Into<Location>,
        to: impl Into<Location>,
        prob: f64,
        window: StepWindow,
    ) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&prob),
            "loss-burst probability out of [0,1]"
        );
        self.link_faults
            .entry((from.into(), to.into()))
            .or_default()
            .push(LinkFault::LossBurst { prob, window });
        self
    }

    /// Partition `group` away from every other site for `window`:
    /// transfers crossing the group boundary (either direction) drop.
    pub fn with_partition<I, L>(mut self, group: I, window: StepWindow) -> FaultPlan
    where
        I: IntoIterator<Item = L>,
        L: Into<Location>,
    {
        let set: BTreeSet<Location> = group.into_iter().map(Into::into).collect();
        self.partitions.push((set, window));
        self
    }

    /// Advance the logical step clock, returning the step of the attempt
    /// being made. One tick per transfer/scan attempt keeps fault
    /// schedules replayable.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// The current clock value (the step the *next* attempt will get).
    pub fn step(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Rewind the clock to step 0 (for replaying the same schedule).
    pub fn reset_clock(&self) {
        self.clock.store(0, Ordering::SeqCst);
    }

    /// Whether `site` is up at `step` (outside all its crash windows).
    pub fn site_is_up(&self, site: &Location, step: u64) -> bool {
        self.site_down_until(site, step).is_none()
    }

    /// When `site` is inside a crash window at `step`, the end of that
    /// outage (`u64::MAX` = crashed for good); `None` when the site is up.
    pub fn site_down_until(&self, site: &Location, step: u64) -> Option<u64> {
        self.site_crashes.get(site).and_then(|windows| {
            windows
                .iter()
                .filter(|w| w.contains(step))
                .map(|w| w.end)
                .max()
        })
    }

    /// Whether the `from → to` link is severed *for good* from `step`
    /// on: an open-ended crash window on either endpoint, an open-ended
    /// partition separating them, or an open-ended drop on the link
    /// itself. A severed link means any replica behind it has
    /// **unbounded lag** — no later step can ever deliver — so callers
    /// can report ∞ instead of a number that will never shrink, and
    /// stale-replica refusals can name the site as permanently stale.
    pub fn severed(&self, from: &Location, to: &Location, step: u64) -> bool {
        let site_gone = |site: &Location| self.site_down_until(site, step) == Some(u64::MAX);
        if site_gone(from) || site_gone(to) {
            return true;
        }
        if self.partitions.iter().any(|(group, window)| {
            window.contains(step)
                && window.end == u64::MAX
                && (group.contains(from) != group.contains(to))
        }) {
            return true;
        }
        self.link_faults
            .get(&(from.clone(), to.clone()))
            .is_some_and(|faults| {
                faults.iter().any(|fault| {
                    matches!(fault, LinkFault::Drop(w) if w.contains(step) && w.end == u64::MAX)
                })
            })
    }

    /// Judge one `from → to` transfer attempt at `step`. Site crashes
    /// dominate (transient only if the crash window heals), then
    /// partitions, then link faults; delays on distinct schedules
    /// accumulate.
    pub fn check_transfer(&self, from: &Location, to: &Location, step: u64) -> FaultVerdict {
        self.check_transfer_salted(from, to, step, 0)
    }

    /// [`Self::check_transfer`] with probabilistic faults drawn from an
    /// independent coin selected by `salt`. Hedged backup legs consult
    /// the same crash/degrade/partition windows as their primary — a
    /// duplicate on a degraded link is degraded too — without replaying
    /// the primary's flaky/loss flips.
    pub fn check_transfer_salted(
        &self,
        from: &Location,
        to: &Location,
        step: u64,
        salt: u64,
    ) -> FaultVerdict {
        for site in [from, to] {
            if let Some(end) = self.site_down_until(site, step) {
                return FaultVerdict::Drop {
                    // A bounded outage can be outlasted by retries; an
                    // open-ended crash needs re-planning.
                    transient: end != u64::MAX,
                    culprit: Some(site.clone()),
                    reason: format!("site {site} is down at step {step}"),
                };
            }
        }
        for (group, window) in &self.partitions {
            if window.contains(step) && group.contains(from) != group.contains(to) {
                return FaultVerdict::Drop {
                    transient: true,
                    culprit: None,
                    reason: format!("partition separates {from} from {to} at step {step}"),
                };
            }
        }
        let mut extra_delay_ms = 0.0;
        let mut factor = 1.0;
        if let Some(faults) = self.link_faults.get(&(from.clone(), to.clone())) {
            for fault in faults {
                match fault {
                    LinkFault::Drop(window) if window.contains(step) => {
                        return FaultVerdict::Drop {
                            transient: true,
                            culprit: None,
                            reason: format!("link {from}->{to} down at step {step}"),
                        };
                    }
                    LinkFault::Flaky { prob, window }
                        if window.contains(step)
                            && self.flip_salted(from, to, step, salt) < *prob =>
                    {
                        return FaultVerdict::Drop {
                            transient: true,
                            culprit: None,
                            reason: format!("link {from}->{to} dropped packet at step {step}"),
                        };
                    }
                    LinkFault::LossBurst { prob, window }
                        if window.contains(step)
                            && self.flip_salted(from, to, step, LOSS_BURST_SALT ^ salt) < *prob =>
                    {
                        return FaultVerdict::Drop {
                            transient: true,
                            culprit: None,
                            reason: format!(
                                "loss burst on link {from}->{to} dropped batch at step {step}"
                            ),
                        };
                    }
                    LinkFault::Delay { extra_ms, window } if window.contains(step) => {
                        extra_delay_ms += extra_ms;
                    }
                    LinkFault::Degrade { factor: f, window } if window.contains(step) => {
                        factor *= f;
                    }
                    _ => {}
                }
            }
        }
        if factor > 1.0 {
            FaultVerdict::Degraded {
                factor,
                extra_delay_ms,
            }
        } else {
            FaultVerdict::Deliver { extra_delay_ms }
        }
    }

    /// Deterministic uniform draw in `[0, 1)` from `(seed, step, link)`,
    /// on an independent coin selected by `salt`, so two probabilistic
    /// faults on the same link never share flips (`salt = 0` is the
    /// classic flaky coin).
    fn flip_salted(&self, from: &Location, to: &Location, step: u64, salt: u64) -> f64 {
        let mut h = self.seed ^ 0x9E3779B97F4A7C15 ^ salt;
        for token in [from.name().as_bytes(), b"->", to.name().as_bytes()] {
            for &b in token {
                h = (h ^ b as u64).wrapping_mul(0x100000001B3);
            }
        }
        h ^= step.wrapping_mul(0xA24BAED4963EE407);
        // splitmix64 finalizer.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D049BB133111EB);
        h ^= h >> 31;
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Parse a fault specification string (the CLI's `--faults` syntax):
    /// semicolon-separated directives, each optionally windowed with
    /// `@a..b` over logical steps (default: always active).
    ///
    /// * `crash:SITE[@w]` — crash a site,
    /// * `drop:A-B[@w]` — drop both directions of a link (`A>B` for one),
    /// * `flaky:A-B:P[@w]` — drop with probability `P`,
    /// * `delay:A-B:MS[@w]` — add `MS` milliseconds of latency,
    /// * `degrade:A-B:F[@w]` — deliver at `F ×` the modelled cost (gray
    ///   slowdown; `F ≥ 1`),
    /// * `loss:A-B:P[@w]` — loss burst dropping with probability `P` on an
    ///   independent coin,
    /// * `partition:A,B,..[@w]` — cut the listed group off from the rest.
    ///
    /// Every parse error quotes the offending directive fragment, so a
    /// typo inside a long schedule is findable.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for raw in spec.split(';') {
            let directive = raw.trim();
            if directive.is_empty() {
                continue;
            }
            // Any failure below names the full offending fragment.
            let in_directive = |e: String| format!("{e} in directive {directive:?}");
            let (head, window) = match directive.split_once('@') {
                Some((h, w)) => (h, StepWindow::parse(w).map_err(in_directive)?),
                None => (directive, StepWindow::ALWAYS),
            };
            let (kind, body) = head
                .split_once(':')
                .ok_or_else(|| format!("directive {directive:?} has no kind: prefix"))?;
            match kind {
                "crash" => {
                    let site = body.trim();
                    if site.is_empty() {
                        return Err(format!("crash directive {directive:?} names no site"));
                    }
                    plan = plan.with_crash(site, window);
                }
                "drop" => {
                    let (a, b, both) = parse_link(body).map_err(in_directive)?;
                    plan = plan.with_drop(a.clone(), b.clone(), window);
                    if both {
                        plan = plan.with_drop(b, a, window);
                    }
                }
                "flaky" | "loss" => {
                    let (link, p) = body
                        .rsplit_once(':')
                        .ok_or_else(|| format!("{kind} directive {directive:?} needs :prob"))?;
                    let prob: f64 = p
                        .trim()
                        .parse()
                        .map_err(|_| in_directive(format!("bad probability {p:?}")))?;
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(in_directive(format!("probability {prob} out of [0,1]")));
                    }
                    let (a, b, both) = parse_link(link).map_err(in_directive)?;
                    plan = if kind == "flaky" {
                        let plan = plan.with_flaky(a.clone(), b.clone(), prob, window);
                        if both {
                            plan.with_flaky(b, a, prob, window)
                        } else {
                            plan
                        }
                    } else {
                        let plan = plan.with_loss_burst(a.clone(), b.clone(), prob, window);
                        if both {
                            plan.with_loss_burst(b, a, prob, window)
                        } else {
                            plan
                        }
                    };
                }
                "delay" => {
                    let (link, ms) = body
                        .rsplit_once(':')
                        .ok_or_else(|| format!("delay directive {directive:?} needs :ms"))?;
                    let extra: f64 = ms
                        .trim()
                        .trim_end_matches("ms")
                        .parse()
                        .map_err(|_| in_directive(format!("bad delay {ms:?}")))?;
                    let (a, b, both) = parse_link(link).map_err(in_directive)?;
                    plan = plan.with_delay(a.clone(), b.clone(), extra, window);
                    if both {
                        plan = plan.with_delay(b, a, extra, window);
                    }
                }
                "degrade" => {
                    let (link, f) = body
                        .rsplit_once(':')
                        .ok_or_else(|| format!("degrade directive {directive:?} needs :factor"))?;
                    let factor: f64 = f
                        .trim()
                        .trim_end_matches('x')
                        .parse()
                        .map_err(|_| in_directive(format!("bad degrade factor {f:?}")))?;
                    if factor < 1.0 {
                        return Err(in_directive(format!("degrade factor {factor} below 1")));
                    }
                    let (a, b, both) = parse_link(link).map_err(in_directive)?;
                    plan = plan.with_degrade(a.clone(), b.clone(), factor, window);
                    if both {
                        plan = plan.with_degrade(b, a, factor, window);
                    }
                }
                "partition" => {
                    let group: Vec<&str> = body.split(',').map(str::trim).collect();
                    if group.iter().any(|s| s.is_empty()) {
                        return Err(format!(
                            "partition directive {directive:?} has an empty site"
                        ));
                    }
                    plan = plan.with_partition(group, window);
                }
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} in directive {directive:?}"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// Parse `A-B` (symmetric) or `A>B` (directed) into `(from, to, symmetric)`.
fn parse_link(body: &str) -> Result<(Location, Location, bool), String> {
    let (sep, both) = if body.contains('>') {
        ('>', false)
    } else {
        ('-', true)
    };
    let (a, b) = body
        .split_once(sep)
        .ok_or_else(|| format!("link {body:?} is not of the form A-B or A>B"))?;
    let (a, b) = (a.trim(), b.trim());
    if a.is_empty() || b.is_empty() {
        return Err(format!("link {body:?} has an empty endpoint"));
    }
    Ok((Location::new(a), Location::new(b), both))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(n: &str) -> Location {
        Location::new(n)
    }

    #[test]
    fn windows_are_half_open() {
        let w = StepWindow::new(2, 5);
        assert!(!w.contains(1));
        assert!(w.contains(2));
        assert!(w.contains(4));
        assert!(!w.contains(5));
        assert!(StepWindow::ALWAYS.contains(u64::MAX - 1));
    }

    #[test]
    fn crash_window_downs_the_site_and_its_transfers() {
        let plan = FaultPlan::new(1).with_crash("L2", StepWindow::new(3, 10));
        assert!(plan.site_is_up(&loc("L2"), 2));
        assert!(!plan.site_is_up(&loc("L2"), 3));
        assert!(plan.site_is_up(&loc("L2"), 10));
        assert_eq!(plan.site_down_until(&loc("L2"), 5), Some(10));
        // A bounded outage is transient: retries can outlast it.
        match plan.check_transfer(&loc("L1"), &loc("L2"), 5) {
            FaultVerdict::Drop { transient, .. } => assert!(transient),
            v => panic!("expected drop, got {v:?}"),
        }
        // Unrelated links are untouched.
        assert_eq!(
            plan.check_transfer(&loc("L1"), &loc("L3"), 5),
            FaultVerdict::Deliver {
                extra_delay_ms: 0.0
            }
        );
    }

    #[test]
    fn open_ended_crash_is_permanent() {
        let plan = FaultPlan::new(1).with_crash("L2", StepWindow::from(3));
        assert_eq!(plan.site_down_until(&loc("L2"), 100), Some(u64::MAX));
        match plan.check_transfer(&loc("L2"), &loc("L4"), 50) {
            FaultVerdict::Drop { transient, .. } => assert!(!transient),
            v => panic!("expected drop, got {v:?}"),
        }
    }

    #[test]
    fn link_drop_is_directed_and_transient() {
        let plan = FaultPlan::new(1).with_drop("L1", "L3", StepWindow::new(0, 4));
        match plan.check_transfer(&loc("L1"), &loc("L3"), 1) {
            FaultVerdict::Drop { transient, .. } => assert!(transient),
            v => panic!("expected drop, got {v:?}"),
        }
        // Reverse direction unaffected; window end heals the link.
        assert!(matches!(
            plan.check_transfer(&loc("L3"), &loc("L1"), 1),
            FaultVerdict::Deliver { .. }
        ));
        assert!(matches!(
            plan.check_transfer(&loc("L1"), &loc("L3"), 4),
            FaultVerdict::Deliver { .. }
        ));
    }

    #[test]
    fn partitions_cut_only_boundary_crossing_transfers() {
        let plan = FaultPlan::new(1).with_partition(["L1", "L2"], StepWindow::new(0, 100));
        assert!(matches!(
            plan.check_transfer(&loc("L1"), &loc("L2"), 5),
            FaultVerdict::Deliver { .. }
        ));
        assert!(matches!(
            plan.check_transfer(&loc("L3"), &loc("L4"), 5),
            FaultVerdict::Deliver { .. }
        ));
        assert!(matches!(
            plan.check_transfer(&loc("L1"), &loc("L3"), 5),
            FaultVerdict::Drop {
                transient: true,
                ..
            }
        ));
        assert!(matches!(
            plan.check_transfer(&loc("L4"), &loc("L2"), 5),
            FaultVerdict::Drop { .. }
        ));
    }

    /// `severed` reports only faults that can never heal: open-ended
    /// crashes, partitions, and drops — the unbounded-lag detector for
    /// catalog-plane health.
    #[test]
    fn severed_links_are_exactly_the_open_ended_faults() {
        let plan = FaultPlan::new(1)
            .with_crash("L2", StepWindow::new(0, u64::MAX))
            .with_crash("L3", StepWindow::new(0, 50))
            .with_partition(["L4"], StepWindow::ALWAYS)
            .with_drop("L1", "L5", StepWindow::new(10, u64::MAX));
        // Permanent crash severs every link touching the site.
        assert!(plan.severed(&loc("L1"), &loc("L2"), 5));
        assert!(plan.severed(&loc("L2"), &loc("L1"), 5));
        // A healing crash window is lag, not severance.
        assert!(!plan.severed(&loc("L1"), &loc("L3"), 5));
        // Open-ended partition severs boundary-crossing links only.
        assert!(plan.severed(&loc("L1"), &loc("L4"), 5));
        assert!(!plan.severed(&loc("L1"), &loc("L6"), 5));
        // Open-ended directed drop severs once its window starts.
        assert!(!plan.severed(&loc("L1"), &loc("L5"), 5));
        assert!(plan.severed(&loc("L1"), &loc("L5"), 10));
        assert!(!plan.severed(&loc("L5"), &loc("L1"), 10), "directed");
    }

    #[test]
    fn delays_accumulate_and_respect_windows() {
        let plan = FaultPlan::new(1)
            .with_delay("L1", "L2", 100.0, StepWindow::new(0, 10))
            .with_delay("L1", "L2", 50.0, StepWindow::new(5, 10));
        assert_eq!(
            plan.check_transfer(&loc("L1"), &loc("L2"), 2),
            FaultVerdict::Deliver {
                extra_delay_ms: 100.0
            }
        );
        assert_eq!(
            plan.check_transfer(&loc("L1"), &loc("L2"), 7),
            FaultVerdict::Deliver {
                extra_delay_ms: 150.0
            }
        );
        assert_eq!(
            plan.check_transfer(&loc("L1"), &loc("L2"), 10),
            FaultVerdict::Deliver {
                extra_delay_ms: 0.0
            }
        );
    }

    #[test]
    fn flaky_outcomes_are_deterministic_per_seed_and_step() {
        let a = FaultPlan::new(42).with_flaky("L1", "L2", 0.5, StepWindow::ALWAYS);
        let b = FaultPlan::new(42).with_flaky("L1", "L2", 0.5, StepWindow::ALWAYS);
        let mut drops = 0;
        for step in 0..1000 {
            let va = a.check_transfer(&loc("L1"), &loc("L2"), step);
            let vb = b.check_transfer(&loc("L1"), &loc("L2"), step);
            assert_eq!(va, vb, "divergence at step {step}");
            if matches!(va, FaultVerdict::Drop { .. }) {
                drops += 1;
            }
        }
        // A fair-ish coin: both outcomes occur, roughly balanced.
        assert!((350..650).contains(&drops), "drops = {drops}");
        // A different seed produces a different sequence.
        let c = FaultPlan::new(43).with_flaky("L1", "L2", 0.5, StepWindow::ALWAYS);
        let diverges = (0..1000).any(|s| {
            a.check_transfer(&loc("L1"), &loc("L2"), s)
                != c.check_transfer(&loc("L1"), &loc("L2"), s)
        });
        assert!(diverges, "seeds 42 and 43 produced identical streams");
    }

    #[test]
    fn the_clock_ticks_monotonically_and_resets() {
        let plan = FaultPlan::new(0);
        assert_eq!(plan.tick(), 0);
        assert_eq!(plan.tick(), 1);
        assert_eq!(plan.step(), 2);
        plan.reset_clock();
        assert_eq!(plan.tick(), 0);
    }

    #[test]
    fn parse_round_trips_every_directive() {
        let plan = FaultPlan::parse(
            "crash:L2@3..; drop:L1-L3@0..5; flaky:L4>L5:0.25; \
             delay:L1-L2:250ms@2..; partition:L1,L2@4..9",
            7,
        )
        .unwrap();
        assert!(!plan.site_is_up(&loc("L2"), 3));
        assert!(plan.site_is_up(&loc("L2"), 2));
        // Symmetric drop: both directions.
        assert!(matches!(
            plan.check_transfer(&loc("L3"), &loc("L1"), 1),
            FaultVerdict::Drop { .. }
        ));
        // Directed flaky: reverse direction never drops.
        assert!((0..200).all(|s| matches!(
            plan.check_transfer(&loc("L5"), &loc("L4"), s),
            FaultVerdict::Deliver { .. }
        ) || !plan.site_is_up(&loc("L4"), s)));
        // Delay active from step 2 (outside the partition window, on a
        // non-partition-crossing link).
        assert_eq!(
            plan.check_transfer(&loc("L1"), &loc("L2"), 2),
            FaultVerdict::Deliver {
                extra_delay_ms: 250.0
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "explode:L1",
            "crash",
            "drop:L1",
            "flaky:L1-L2:1.5",
            "delay:L1-L2:fast",
            "crash:L1@x..y",
            "partition:,",
            "degrade:L1-L2:0.5",
            "degrade:L1-L2:slow",
            "loss:L1-L2:2.0",
            "loss:L1-L2",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?} parsed");
        }
        // Empty and whitespace specs are fine (no faults).
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ", 0).unwrap().is_empty());
    }

    /// A typo buried in a long schedule must be findable: every parse
    /// error quotes the offending directive fragment, not just the field.
    #[test]
    fn parse_errors_quote_the_offending_fragment() {
        for (spec, fragment) in [
            ("crash:L1; flaky:L1-L2:1.5", "flaky:L1-L2:1.5"),
            ("drop:L1-L2; delay:L3-L4:fast@2..", "delay:L3-L4:fast@2.."),
            ("degrade:L1-L2:0.5", "degrade:L1-L2:0.5"),
            ("crash:L1@x..y", "crash:L1@x..y"),
            ("drop:L1", "drop:L1"),
            ("loss:L4:0.2", "loss:L4:0.2"),
            ("explode:L1", "explode:L1"),
        ] {
            let err = FaultPlan::parse(spec, 0).unwrap_err();
            assert!(
                err.contains(fragment),
                "error {err:?} does not quote {fragment:?}"
            );
        }
    }

    #[test]
    fn degrade_multiplies_cost_and_respects_windows() {
        let plan = FaultPlan::new(1)
            .with_degrade("L1", "L4", 3.0, StepWindow::new(2, 8))
            .with_degrade("L1", "L4", 2.0, StepWindow::new(4, 8))
            .with_delay("L1", "L4", 25.0, StepWindow::new(2, 8));
        assert_eq!(
            plan.check_transfer(&loc("L1"), &loc("L4"), 0),
            FaultVerdict::Deliver {
                extra_delay_ms: 0.0
            }
        );
        // Inside the first window: degraded 3x, delay rides along.
        assert_eq!(
            plan.check_transfer(&loc("L1"), &loc("L4"), 2),
            FaultVerdict::Degraded {
                factor: 3.0,
                extra_delay_ms: 25.0
            }
        );
        // Overlapping degrades compound multiplicatively.
        assert_eq!(
            plan.check_transfer(&loc("L1"), &loc("L4"), 5),
            FaultVerdict::Degraded {
                factor: 6.0,
                extra_delay_ms: 25.0
            }
        );
        // Healed past the window; reverse direction untouched throughout.
        assert!(matches!(
            plan.check_transfer(&loc("L1"), &loc("L4"), 8),
            FaultVerdict::Deliver { .. }
        ));
        assert!(matches!(
            plan.check_transfer(&loc("L4"), &loc("L1"), 5),
            FaultVerdict::Deliver { .. }
        ));
    }

    #[test]
    fn loss_burst_is_windowed_deterministic_and_independent_of_flaky() {
        let a = FaultPlan::new(42).with_loss_burst("L1", "L2", 0.5, StepWindow::new(0, 1000));
        let b = FaultPlan::new(42).with_loss_burst("L1", "L2", 0.5, StepWindow::new(0, 1000));
        let flaky = FaultPlan::new(42).with_flaky("L1", "L2", 0.5, StepWindow::ALWAYS);
        let mut drops = 0;
        let mut diverged_from_flaky = false;
        for step in 0..1000 {
            let va = a.check_transfer(&loc("L1"), &loc("L2"), step);
            assert_eq!(
                va,
                b.check_transfer(&loc("L1"), &loc("L2"), step),
                "divergence at step {step}"
            );
            let dropped = matches!(va, FaultVerdict::Drop { .. });
            if dropped {
                drops += 1;
            }
            if dropped
                != matches!(
                    flaky.check_transfer(&loc("L1"), &loc("L2"), step),
                    FaultVerdict::Drop { .. }
                )
            {
                diverged_from_flaky = true;
            }
        }
        assert!((350..650).contains(&drops), "drops = {drops}");
        assert!(
            diverged_from_flaky,
            "loss bursts must draw an independent coin from flaky faults"
        );
        // Outside the window the burst is over.
        assert!(matches!(
            a.check_transfer(&loc("L1"), &loc("L2"), 1000),
            FaultVerdict::Deliver { .. }
        ));
    }

    #[test]
    fn parse_round_trips_degrade_and_loss() {
        let plan = FaultPlan::parse("degrade:L1>L4:2.5x@3..9; loss:L2-L3:0.4@5..7", 11).unwrap();
        assert!(matches!(
            plan.check_transfer(&loc("L1"), &loc("L4"), 4),
            FaultVerdict::Degraded { factor, .. } if factor == 2.5
        ));
        // Directed degrade: the reverse direction is clean.
        assert!(matches!(
            plan.check_transfer(&loc("L4"), &loc("L1"), 4),
            FaultVerdict::Deliver { .. }
        ));
        // Symmetric loss burst: both directions share the schedule shape.
        let bursty = (5..7).any(|s| {
            matches!(
                plan.check_transfer(&loc("L3"), &loc("L2"), s),
                FaultVerdict::Drop { .. }
            ) || matches!(
                plan.check_transfer(&loc("L2"), &loc("L3"), s),
                FaultVerdict::Drop { .. }
            )
        });
        let _ = bursty; // probabilistic: presence is seed-dependent
        assert!(matches!(
            plan.check_transfer(&loc("L2"), &loc("L3"), 7),
            FaultVerdict::Deliver { .. }
        ));
    }
}
