//! # geoqp-net
//!
//! The geo-distributed network substrate: a **message cost model** and a
//! transfer simulator.
//!
//! The paper (Section 7.4) simulates a WAN in which shipping `b` bytes from
//! site `i` to site `j` costs `α_ij + β_ij · b`, with `α` obtained from
//! ping round-trips and `β` from measured transfer throughput. This crate
//! reproduces that model with a configurable [`NetworkTopology`] (including
//! a built-in five-region WAN matching the paper's Europe / Africa / Asia /
//! North America / Middle East setup) and a [`TransferLog`] that records
//! every simulated SHIP with its real byte volume.

//!
//! The simulator can also inject faults: a deterministic, seedable
//! [`FaultPlan`] schedules per-link drops/delays/partitions and per-site
//! crash windows over a logical step clock, and the [`TransferLog`] records
//! both deliveries (with their attempt counts) and dropped attempts.

pub mod fault;
pub mod sim;
pub mod topology;

pub use fault::{FaultPlan, FaultVerdict, StepWindow};
pub use sim::{FaultEvent, TransferLog, TransferRecord};
pub use topology::NetworkTopology;
