//! # geoqp-net
//!
//! The geo-distributed network substrate: a **message cost model** and a
//! transfer simulator.
//!
//! The paper (Section 7.4) simulates a WAN in which shipping `b` bytes from
//! site `i` to site `j` costs `α_ij + β_ij · b`, with `α` obtained from
//! ping round-trips and `β` from measured transfer throughput. This crate
//! reproduces that model with a configurable [`NetworkTopology`] (including
//! a built-in five-region WAN matching the paper's Europe / Africa / Asia /
//! North America / Middle East setup) and a [`TransferLog`] that records
//! every simulated SHIP with its real byte volume.

//!
//! The simulator can also inject faults: a deterministic, seedable
//! [`FaultPlan`] schedules per-link drops/delays/partitions and per-site
//! crash windows over a logical step clock, and the [`TransferLog`] records
//! both deliveries (with their attempt counts) and dropped attempts.
//!
//! Gray faults — sustained degradation and loss bursts rather than clean
//! failures — get their own defense layer: a [`LinkHealth`] table scores
//! observed transfer cost against the `α + β·b` prediction and drives
//! per-link circuit breakers, while [`hedge`] implements compliant hedged
//! backup transfers (duplicate or one-hop relay, restricted to the
//! producing subtree's shipping trait).

pub mod fault;
pub mod health;
pub mod hedge;
pub mod replication;
pub mod sim;
pub mod topology;

pub use fault::{FaultPlan, FaultVerdict, StepWindow};
pub use health::{BreakerState, HealthConfig, LinkHealth, LinkReport, LinkState, RelayEvent};
pub use hedge::{
    backup_beats, hedge_step, plan_hedge, plan_hedge_with, run_hedge, HedgeConfig, HedgeLeg,
    HedgeRun,
};
pub use replication::{CatalogGossip, CATALOG_SYNC_SALT};
pub use sim::{FaultEvent, TransferLog, TransferRecord};
pub use topology::NetworkTopology;
