//! Link health scoring and per-link circuit breakers — the gray-failure
//! detector.
//!
//! Fail-stop faults surface as typed errors and trigger failover; *gray*
//! faults (a sustained slowdown, a loss burst) deliver every batch and
//! trip nothing. [`LinkHealth`] closes that gap: every transfer reports
//! its observed cost against the `α + β·b` model prediction, and the
//! table maintains, per link, an EWMA of that ratio plus a
//! consecutive-failure count. The derived per-link **circuit breaker**
//! walks the classic closed → open → half-open lifecycle; a breaker that
//! keeps re-opening past its budget condemns the link, which the engine
//! turns into a soft exclusion (re-running site selection with the
//! link's cost at ∞).
//!
//! # Determinism
//!
//! Breaker state must be a pure function of the seeded fault grid, never
//! of thread scheduling. Two mechanisms guarantee that:
//!
//! * observations are keyed by **lane** — the pre-order exchange-edge
//!   slot (or `0` in the sequential engine) — so each lane's stream is
//!   produced by exactly one worker, in batch order;
//! * per lane, observations are stored keyed by their **logical step**
//!   and every derived quantity (EWMA, breaker state, trip count) is a
//!   fold over the observations in step order, so state is a function of
//!   the observation *set*, which the deterministic step grid fixes.

use geoqp_common::Location;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tuning for the health scorer and breakers.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Weight of the newest cost ratio in the EWMA.
    pub ewma_alpha: f64,
    /// Launch a hedged backup once the EWMA ratio reaches this.
    pub hedge_ratio: f64,
    /// Trip the breaker once the EWMA ratio reaches this.
    pub trip_ratio: f64,
    /// Trip the breaker after this many consecutive failed attempts.
    pub trip_failures: u32,
    /// Observations required before ratio-based decisions fire.
    pub min_observations: u32,
    /// Logical steps an open breaker waits before probing (half-open).
    pub cooldown_steps: u64,
    /// Trips a lane's breaker may take before the link is condemned and
    /// reported to the re-planner as a soft exclusion.
    pub open_budget: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            ewma_alpha: 0.5,
            hedge_ratio: 1.5,
            trip_ratio: 2.5,
            trip_failures: 3,
            min_observations: 1,
            cooldown_steps: 8,
            open_budget: 2,
        }
    }
}

/// Circuit-breaker lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BreakerState {
    /// Healthy: transfers flow normally.
    Closed,
    /// Tripped: the link is sick; transfers hedge, and past the open
    /// budget the link is condemned.
    Open,
    /// Cooldown elapsed: the next transfer is a probe.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// One transfer attempt's health evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Observation {
    /// Delivered, at `ratio ×` the modelled cost.
    Delivered { ratio: f64 },
    /// The attempt failed (drop, loss burst, crash window).
    Failed,
}

/// The folded health state of one link lane.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkState {
    /// EWMA of observed cost / predicted cost (1.0 = exactly on model).
    pub ewma_ratio: f64,
    /// Total observations folded.
    pub observations: u32,
    /// Consecutive failed attempts at the end of the sequence.
    pub consecutive_failures: u32,
    /// Breaker lifecycle state after the fold.
    pub breaker: BreakerState,
    /// Closed → open transitions taken.
    pub trips: u32,
    /// Step of the last observation folded.
    pub last_step: u64,
}

impl Default for LinkState {
    fn default() -> LinkState {
        LinkState {
            ewma_ratio: 1.0,
            observations: 0,
            consecutive_failures: 0,
            breaker: BreakerState::Closed,
            trips: 0,
            last_step: 0,
        }
    }
}

/// One row of the health table snapshot (the shell's `\health` view).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    /// Source site.
    pub from: Location,
    /// Destination site.
    pub to: Location,
    /// Lane (pre-order exchange-edge slot; 0 in the sequential engine).
    pub lane: u64,
    /// Folded state.
    pub state: LinkState,
}

/// A relay a hedged transfer took, for audit trails and property tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayEvent {
    /// Lane of the hedged edge.
    pub lane: u64,
    /// Original source site.
    pub from: Location,
    /// Original destination site.
    pub to: Location,
    /// The intermediate site the backup routed through.
    pub via: Location,
}

/// One lane of observations: a link direction on one exchange-edge slot,
/// its deliveries and failures keyed by fault-grid step.
type LaneKey = (Location, Location, u64);

/// The shared health table: per-(link, lane) observation streams, the
/// breaker fold, and the hedge counters. Interior-mutable so one `&`
/// reference serves every fragment worker of a run.
#[derive(Debug)]
pub struct LinkHealth {
    config: HealthConfig,
    lanes: Mutex<BTreeMap<LaneKey, BTreeMap<u64, Observation>>>,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    relays_used: AtomicU64,
    relay_events: Mutex<Vec<RelayEvent>>,
    /// Links whose condemnation was waived: the re-planner found no
    /// compliant placement avoiding them, so the engine rides the gray
    /// link (still hedging) rather than rejecting a completing query.
    waived: Mutex<std::collections::BTreeSet<(Location, Location)>>,
}

impl LinkHealth {
    /// An empty table under `config`.
    pub fn new(config: HealthConfig) -> LinkHealth {
        LinkHealth {
            config,
            lanes: Mutex::new(BTreeMap::new()),
            hedges_launched: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            relays_used: AtomicU64::new(0),
            relay_events: Mutex::new(Vec::new()),
            waived: Mutex::new(std::collections::BTreeSet::new()),
        }
    }

    /// The table's tuning.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Record a delivered transfer: `observed_ms` of actual cost against
    /// the model's `predicted_ms` for the same bytes.
    pub fn observe_delivery(
        &self,
        from: &Location,
        to: &Location,
        lane: u64,
        step: u64,
        predicted_ms: f64,
        observed_ms: f64,
    ) {
        let ratio = if predicted_ms > 0.0 {
            (observed_ms / predicted_ms).max(0.0)
        } else {
            1.0
        };
        self.insert(from, to, lane, step, Observation::Delivered { ratio });
    }

    /// Record a failed transfer attempt.
    pub fn observe_failure(&self, from: &Location, to: &Location, lane: u64, step: u64) {
        self.insert(from, to, lane, step, Observation::Failed);
    }

    fn insert(&self, from: &Location, to: &Location, lane: u64, step: u64, obs: Observation) {
        self.lanes
            .lock()
            .unwrap()
            .entry((from.clone(), to.clone(), lane))
            .or_default()
            .insert(step, obs);
    }

    /// The folded state of one link lane — a pure function of the lane's
    /// observation set, independent of insertion order.
    pub fn state(&self, from: &Location, to: &Location, lane: u64) -> LinkState {
        let lanes = self.lanes.lock().unwrap();
        match lanes.get(&(from.clone(), to.clone(), lane)) {
            None => LinkState::default(),
            Some(stream) => fold(&self.config, stream),
        }
    }

    /// Whether a transfer on this lane should launch a hedged backup:
    /// the EWMA crossed the hedge threshold, or the breaker already left
    /// the closed state.
    pub fn should_hedge(&self, from: &Location, to: &Location, lane: u64) -> bool {
        let s = self.state(from, to, lane);
        s.breaker != BreakerState::Closed
            || (s.observations >= self.config.min_observations
                && s.ewma_ratio >= self.config.hedge_ratio)
    }

    /// Whether this lane's breaker has re-opened past its budget — the
    /// condemnation the engine converts into a soft link exclusion. A
    /// waived link never condemns: gray is not dead, and when no
    /// compliant placement avoids the link, riding it (still hedging)
    /// beats rejecting a query that was completing.
    pub fn breaker_exhausted(&self, from: &Location, to: &Location, lane: u64) -> bool {
        if self
            .waived
            .lock()
            .unwrap()
            .contains(&(from.clone(), to.clone()))
        {
            return false;
        }
        let s = self.state(from, to, lane);
        s.breaker == BreakerState::Open && s.trips >= self.config.open_budget
    }

    /// Waive a link's condemnation: its breakers keep scoring and
    /// hedging, but [`Self::breaker_exhausted`] no longer fires for it.
    /// The engine waives a link when Algorithm 2 finds no compliant
    /// placement that avoids it.
    pub fn waive(&self, from: &Location, to: &Location) {
        self.waived
            .lock()
            .unwrap()
            .insert((from.clone(), to.clone()));
    }

    /// Links whose condemnation has been waived, in canonical order.
    pub fn waived_links(&self) -> Vec<(Location, Location)> {
        self.waived.lock().unwrap().iter().cloned().collect()
    }

    /// Count one hedge launch; `won` when the backup beat the primary,
    /// `relay` when the backup routed via an intermediate site.
    pub fn note_hedge(&self, won: bool, relay: Option<RelayEvent>) {
        self.hedges_launched.fetch_add(1, Ordering::SeqCst);
        if won {
            self.hedges_won.fetch_add(1, Ordering::SeqCst);
        }
        if let Some(event) = relay {
            self.relays_used.fetch_add(1, Ordering::SeqCst);
            self.relay_events.lock().unwrap().push(event);
        }
    }

    /// Hedged backups launched.
    pub fn hedges_launched(&self) -> u64 {
        self.hedges_launched.load(Ordering::SeqCst)
    }

    /// Hedged backups that delivered before their primary.
    pub fn hedges_won(&self) -> u64 {
        self.hedges_won.load(Ordering::SeqCst)
    }

    /// Hedged backups that routed via an intermediate site.
    pub fn relays_used(&self) -> u64 {
        self.relays_used.load(Ordering::SeqCst)
    }

    /// Total closed → open transitions across every lane.
    pub fn breaker_trips(&self) -> u64 {
        let lanes = self.lanes.lock().unwrap();
        lanes
            .values()
            .map(|stream| fold(&self.config, stream).trips as u64)
            .sum()
    }

    /// Every relay taken, in canonical `(lane, from, to, via)` order —
    /// concurrent lanes record in thread-scheduling order, so the raw
    /// launch sequence is normalized the way `TransferLog` sorts its
    /// records, making the list byte-identical across reruns.
    pub fn relay_events(&self) -> Vec<RelayEvent> {
        let mut events = self.relay_events.lock().unwrap().clone();
        events.sort_by(|a, b| {
            (a.lane, &a.from, &a.to, &a.via).cmp(&(b.lane, &b.from, &b.to, &b.via))
        });
        events
    }

    /// The full table, one row per (link, lane), in canonical order —
    /// byte-identical across reruns of the same seeded schedule.
    pub fn snapshot(&self) -> Vec<LinkReport> {
        let lanes = self.lanes.lock().unwrap();
        lanes
            .iter()
            .map(|((from, to, lane), stream)| LinkReport {
                from: from.clone(),
                to: to.clone(),
                lane: *lane,
                state: fold(&self.config, stream),
            })
            .collect()
    }
}

/// The breaker fold: walk the lane's observations in step order, updating
/// the EWMA/failure counters and the lifecycle state machine.
fn fold(config: &HealthConfig, stream: &BTreeMap<u64, Observation>) -> LinkState {
    let mut s = LinkState::default();
    let mut opened_at = 0u64;
    for (&step, obs) in stream {
        s.last_step = step;
        s.observations += 1;
        // An open breaker whose cooldown elapsed probes on this attempt.
        if s.breaker == BreakerState::Open && step >= opened_at + config.cooldown_steps {
            s.breaker = BreakerState::HalfOpen;
        }
        match obs {
            Observation::Delivered { ratio } => {
                s.consecutive_failures = 0;
                s.ewma_ratio = config.ewma_alpha * ratio + (1.0 - config.ewma_alpha) * s.ewma_ratio;
            }
            Observation::Failed => {
                s.consecutive_failures += 1;
                // A failure is evidence of an unusable link: fold it into
                // the ratio as a maximally-degraded delivery would be.
                s.ewma_ratio = config.ewma_alpha * config.trip_ratio
                    + (1.0 - config.ewma_alpha) * s.ewma_ratio;
            }
        }
        match s.breaker {
            BreakerState::Closed => {
                let sick_ratio =
                    s.observations >= config.min_observations && s.ewma_ratio >= config.trip_ratio;
                if s.consecutive_failures >= config.trip_failures || sick_ratio {
                    s.breaker = BreakerState::Open;
                    s.trips += 1;
                    opened_at = step;
                }
            }
            BreakerState::HalfOpen => {
                // The probe decides: a healthy delivery closes the
                // breaker, anything else re-opens it.
                let healthy = matches!(obs, Observation::Delivered { ratio }
                    if *ratio < config.hedge_ratio);
                if healthy {
                    s.breaker = BreakerState::Closed;
                    s.consecutive_failures = 0;
                } else {
                    s.breaker = BreakerState::Open;
                    s.trips += 1;
                    opened_at = step;
                }
            }
            BreakerState::Open => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(n: &str) -> Location {
        Location::new(n)
    }

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    #[test]
    fn fresh_links_are_healthy_and_unhedged() {
        let h = LinkHealth::new(cfg());
        let s = h.state(&loc("L1"), &loc("L4"), 0);
        assert_eq!(s.breaker, BreakerState::Closed);
        assert_eq!(s.ewma_ratio, 1.0);
        assert!(!h.should_hedge(&loc("L1"), &loc("L4"), 0));
        assert!(!h.breaker_exhausted(&loc("L1"), &loc("L4"), 0));
    }

    #[test]
    fn sustained_degradation_hedges_then_trips_the_breaker() {
        let h = LinkHealth::new(cfg());
        let (a, b) = (loc("L1"), loc("L4"));
        h.observe_delivery(&a, &b, 0, 0, 100.0, 300.0); // 3x
        assert!(
            h.should_hedge(&a, &b, 0),
            "EWMA {} should cross the hedge threshold",
            h.state(&a, &b, 0).ewma_ratio
        );
        h.observe_delivery(&a, &b, 0, 1, 100.0, 300.0);
        h.observe_delivery(&a, &b, 0, 2, 100.0, 300.0);
        let s = h.state(&a, &b, 0);
        assert_eq!(s.breaker, BreakerState::Open, "ewma = {}", s.ewma_ratio);
        assert_eq!(s.trips, 1);
        // Unrelated lanes and the reverse direction are untouched.
        assert_eq!(h.state(&b, &a, 0).breaker, BreakerState::Closed);
        assert_eq!(h.state(&a, &b, 1).breaker, BreakerState::Closed);
    }

    #[test]
    fn consecutive_failures_trip_without_any_delivery() {
        let h = LinkHealth::new(cfg());
        let (a, b) = (loc("L2"), loc("L3"));
        for step in 0..3 {
            h.observe_failure(&a, &b, 0, step);
        }
        assert_eq!(h.state(&a, &b, 0).breaker, BreakerState::Open);
    }

    #[test]
    fn breaker_walks_open_half_open_closed_on_recovery() {
        let h = LinkHealth::new(cfg());
        let (a, b) = (loc("L1"), loc("L4"));
        for step in 0..3 {
            h.observe_failure(&a, &b, 0, step);
        }
        assert_eq!(h.state(&a, &b, 0).breaker, BreakerState::Open);
        // Before the cooldown elapses, evidence keeps the breaker open.
        h.observe_delivery(&a, &b, 0, 5, 100.0, 100.0);
        assert_eq!(h.state(&a, &b, 0).breaker, BreakerState::Open);
        // Past the cooldown a healthy probe closes it again.
        h.observe_delivery(&a, &b, 0, 2 + cfg().cooldown_steps, 100.0, 100.0);
        let s = h.state(&a, &b, 0);
        assert_eq!(s.breaker, BreakerState::Closed);
        assert_eq!(s.trips, 1);
    }

    #[test]
    fn failed_probe_reopens_until_the_budget_condemns_the_link() {
        let h = LinkHealth::new(cfg());
        let (a, b) = (loc("L1"), loc("L4"));
        let mut step = 0;
        for _ in 0..3 {
            h.observe_failure(&a, &b, 0, step);
            step += 1;
        }
        // Probe past cooldown fails -> reopen (trip 2 >= open_budget).
        step += cfg().cooldown_steps;
        h.observe_failure(&a, &b, 0, step);
        let s = h.state(&a, &b, 0);
        assert_eq!(s.breaker, BreakerState::Open);
        assert_eq!(s.trips, 2);
        assert!(h.breaker_exhausted(&a, &b, 0));
    }

    /// The fold is a function of the observation *set*: any insertion
    /// order produces identical state — the property that makes breaker
    /// sequences schedule-independent under the concurrent runtime.
    #[test]
    fn fold_is_insertion_order_independent() {
        let obs: Vec<(u64, f64)> = (0..10u64).map(|s| (s, 1.0 + (s % 4) as f64)).collect();
        let forward = LinkHealth::new(cfg());
        let backward = LinkHealth::new(cfg());
        for &(step, ratio) in &obs {
            forward.observe_delivery(&loc("L1"), &loc("L4"), 3, step, 100.0, 100.0 * ratio);
        }
        for &(step, ratio) in obs.iter().rev() {
            backward.observe_delivery(&loc("L1"), &loc("L4"), 3, step, 100.0, 100.0 * ratio);
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
        assert_eq!(forward.breaker_trips(), backward.breaker_trips());
    }

    #[test]
    fn hedge_counters_accumulate() {
        let h = LinkHealth::new(cfg());
        h.note_hedge(false, None);
        h.note_hedge(
            true,
            Some(RelayEvent {
                lane: 2,
                from: loc("L1"),
                to: loc("L4"),
                via: loc("L5"),
            }),
        );
        assert_eq!(h.hedges_launched(), 2);
        assert_eq!(h.hedges_won(), 1);
        assert_eq!(h.relays_used(), 1);
        assert_eq!(h.relay_events().len(), 1);
        assert_eq!(h.relay_events()[0].via, loc("L5"));
    }
}
