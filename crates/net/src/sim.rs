//! Transfer accounting for simulated SHIP operators.

use crate::topology::NetworkTopology;
use geoqp_common::Location;

/// One recorded cross-site transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// Source site.
    pub from: Location,
    /// Destination site.
    pub to: Location,
    /// Exact serialized bytes moved.
    pub bytes: u64,
    /// Rows moved.
    pub rows: u64,
    /// Simulated cost in ms under the message cost model.
    pub cost_ms: f64,
}

/// Accumulates every SHIP performed while executing a distributed plan.
/// The totals here are the "execution cost that arises from shipping
/// intermediate query data between geo-distributed sites" that the paper's
/// plan-quality experiment (Figures 6(g), 6(h)) reports.
#[derive(Debug, Default)]
pub struct TransferLog {
    records: Vec<TransferRecord>,
}

impl TransferLog {
    /// Empty log.
    pub fn new() -> TransferLog {
        TransferLog::default()
    }

    /// Record a transfer, computing its cost under `topology`.
    pub fn record(
        &mut self,
        topology: &NetworkTopology,
        from: &Location,
        to: &Location,
        bytes: u64,
        rows: u64,
    ) -> f64 {
        let cost_ms = topology.ship_cost_ms(from, to, bytes as f64);
        self.records.push(TransferRecord {
            from: from.clone(),
            to: to.clone(),
            bytes,
            rows,
            cost_ms,
        });
        cost_ms
    }

    /// All records, in execution order.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Number of SHIPs performed.
    pub fn transfer_count(&self) -> usize {
        self.records.len()
    }

    /// Total bytes moved across sites.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Total rows moved across sites.
    pub fn total_rows(&self) -> u64 {
        self.records.iter().map(|r| r.rows).sum()
    }

    /// Total simulated shipping cost in ms.
    pub fn total_cost_ms(&self) -> f64 {
        self.records.iter().map(|r| r.cost_ms).sum()
    }

    /// Clear the log.
    pub fn reset(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_totals() {
        let topo = NetworkTopology::paper_wan();
        let mut log = TransferLog::new();
        let c1 = log.record(&topo, &Location::new("L1"), &Location::new("L3"), 1000, 10);
        let c2 = log.record(&topo, &Location::new("L4"), &Location::new("L1"), 2000, 20);
        assert_eq!(log.transfer_count(), 2);
        assert_eq!(log.total_bytes(), 3000);
        assert_eq!(log.total_rows(), 30);
        assert!((log.total_cost_ms() - (c1 + c2)).abs() < 1e-9);
        log.reset();
        assert_eq!(log.transfer_count(), 0);
        assert_eq!(log.total_cost_ms(), 0.0);
    }

    #[test]
    fn intra_site_record_is_free() {
        let topo = NetworkTopology::paper_wan();
        let mut log = TransferLog::new();
        let c = log.record(&topo, &Location::new("L1"), &Location::new("L1"), 1000, 10);
        assert_eq!(c, 0.0);
    }
}
