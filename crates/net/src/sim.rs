//! Transfer accounting for simulated SHIP operators.

use crate::topology::NetworkTopology;
use geoqp_common::Location;

/// One recorded cross-site transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// Logical step at which the batch was delivered (0 when no step
    /// clock was active). Under the concurrent runtime this is the key
    /// that makes log aggregation order-stable across thread schedules.
    pub step: u64,
    /// Source site.
    pub from: Location,
    /// Destination site.
    pub to: Location,
    /// Exact serialized bytes moved.
    pub bytes: u64,
    /// Rows moved.
    pub rows: u64,
    /// Simulated cost in ms under the message cost model, including any
    /// injected delay and retry backoff spent getting the batch through.
    pub cost_ms: f64,
    /// Attempts it took to deliver the batch (1 = first try).
    pub attempts: u32,
}

/// One dropped transfer attempt, recorded when fault injection is active.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Logical step of the failed attempt.
    pub step: u64,
    /// Source site of the attempt.
    pub from: Location,
    /// Destination site of the attempt.
    pub to: Location,
    /// Why the attempt failed.
    pub reason: String,
}

/// Accumulates every SHIP performed while executing a distributed plan.
/// The totals here are the "execution cost that arises from shipping
/// intermediate query data between geo-distributed sites" that the paper's
/// plan-quality experiment (Figures 6(g), 6(h)) reports.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TransferLog {
    records: Vec<TransferRecord>,
    faults: Vec<FaultEvent>,
}

impl TransferLog {
    /// Empty log.
    pub fn new() -> TransferLog {
        TransferLog::default()
    }

    /// Record a first-try transfer, computing its cost under `topology`.
    pub fn record(
        &mut self,
        topology: &NetworkTopology,
        from: &Location,
        to: &Location,
        bytes: u64,
        rows: u64,
    ) -> f64 {
        self.record_delivery(topology, from, to, bytes, rows, 1, 0.0, 0)
    }

    /// Record a delivered transfer that took `attempts` tries, adding
    /// `extra_ms` of injected delay plus retry backoff to its cost.
    /// `step` is the logical step of the delivering attempt (0 when no
    /// step clock is active).
    #[allow(clippy::too_many_arguments)]
    pub fn record_delivery(
        &mut self,
        topology: &NetworkTopology,
        from: &Location,
        to: &Location,
        bytes: u64,
        rows: u64,
        attempts: u32,
        extra_ms: f64,
        step: u64,
    ) -> f64 {
        let cost_ms = topology.ship_cost_ms(from, to, bytes as f64) + extra_ms;
        self.records.push(TransferRecord {
            step,
            from: from.clone(),
            to: to.clone(),
            bytes,
            rows,
            cost_ms,
            attempts,
        });
        cost_ms
    }

    /// Append an already-costed record (the concurrent runtime charges
    /// per-batch costs itself: the link's startup cost α is paid once per
    /// exchange stream, not once per batch).
    pub fn push(&mut self, record: TransferRecord) {
        self.records.push(record);
    }

    /// Record a dropped transfer attempt.
    pub fn record_fault(&mut self, step: u64, from: &Location, to: &Location, reason: String) {
        self.faults.push(FaultEvent {
            step,
            from: from.clone(),
            to: to.clone(),
            reason,
        });
    }

    /// All records, in execution order.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Number of SHIPs performed.
    pub fn transfer_count(&self) -> usize {
        self.records.len()
    }

    /// Total bytes moved across sites.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Total rows moved across sites.
    pub fn total_rows(&self) -> u64 {
        self.records.iter().map(|r| r.rows).sum()
    }

    /// Total simulated shipping cost in ms.
    pub fn total_cost_ms(&self) -> f64 {
        // fold, not sum(): an empty f64 sum is -0.0, which would render
        // as "-0.0 ms" for transfer-free queries.
        self.records.iter().fold(0.0, |acc, r| acc + r.cost_ms)
    }

    /// All dropped attempts, in execution order.
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.faults
    }

    /// Number of dropped attempts.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Append another log's records and fault events (used when a failed
    /// execution's transfers are folded into its failover's log).
    pub fn absorb(&mut self, other: TransferLog) {
        self.records.extend(other.records);
        self.faults.extend(other.faults);
    }

    /// Clear the log.
    pub fn reset(&mut self) {
        self.records.clear();
        self.faults.clear();
    }

    /// Sort records and fault events into the canonical reporting order:
    /// `(step, from, to, bytes, rows)` for deliveries and
    /// `(step, from, to, reason)` for drops.
    ///
    /// Logs produced by the concurrent runtime accumulate in whatever
    /// order the site worker threads happened to finish; normalizing
    /// before reporting keeps golden snapshots and failover matrices
    /// byte-identical across runs. (The sort is stable, so sequential
    /// logs — which are already in deterministic execution order and
    /// often all at step 0 — are unchanged by construction.)
    pub fn normalize(&mut self) {
        self.records.sort_by(|a, b| {
            (a.step, &a.from, &a.to, a.bytes, a.rows)
                .cmp(&(b.step, &b.from, &b.to, b.bytes, b.rows))
        });
        self.faults.sort_by(|a, b| {
            (a.step, &a.from, &a.to, &a.reason).cmp(&(b.step, &b.from, &b.to, &b.reason))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_totals() {
        let topo = NetworkTopology::paper_wan();
        let mut log = TransferLog::new();
        let c1 = log.record(&topo, &Location::new("L1"), &Location::new("L3"), 1000, 10);
        let c2 = log.record(&topo, &Location::new("L4"), &Location::new("L1"), 2000, 20);
        assert_eq!(log.transfer_count(), 2);
        assert_eq!(log.total_bytes(), 3000);
        assert_eq!(log.total_rows(), 30);
        assert!((log.total_cost_ms() - (c1 + c2)).abs() < 1e-9);
        log.reset();
        assert_eq!(log.transfer_count(), 0);
        assert_eq!(log.total_cost_ms(), 0.0);
    }

    #[test]
    fn deliveries_carry_attempts_and_extra_cost() {
        let topo = NetworkTopology::paper_wan();
        let mut log = TransferLog::new();
        let base = log.record(&topo, &Location::new("L1"), &Location::new("L3"), 1000, 10);
        log.record_fault(5, &Location::new("L1"), &Location::new("L3"), "drop".into());
        let retried = log.record_delivery(
            &topo,
            &Location::new("L1"),
            &Location::new("L3"),
            1000,
            10,
            3,
            40.0,
            7,
        );
        assert_eq!(log.records()[0].attempts, 1);
        assert_eq!(log.records()[1].attempts, 3);
        assert_eq!(log.records()[1].step, 7);
        assert!((retried - (base + 40.0)).abs() < 1e-9);
        assert_eq!(log.fault_count(), 1);
        assert_eq!(log.fault_events()[0].step, 5);
        log.reset();
        assert_eq!(log.fault_count(), 0);
    }

    #[test]
    fn normalize_orders_by_step_then_endpoints() {
        let topo = NetworkTopology::paper_wan();
        // Two logs with the same deliveries in different thread-arrival
        // orders must normalize to the same byte-identical sequence.
        let mut a = TransferLog::new();
        let mut b = TransferLog::new();
        let l = |n: &str| Location::new(n);
        a.record_delivery(&topo, &l("L4"), &l("L1"), 2000, 20, 1, 0.0, 3);
        a.record_delivery(&topo, &l("L1"), &l("L3"), 1000, 10, 1, 0.0, 3);
        a.record_delivery(&topo, &l("L2"), &l("L1"), 500, 5, 1, 0.0, 1);
        a.record_fault(2, &l("L2"), &l("L1"), "drop".into());
        a.record_fault(0, &l("L1"), &l("L3"), "drop".into());
        b.record_delivery(&topo, &l("L2"), &l("L1"), 500, 5, 1, 0.0, 1);
        b.record_delivery(&topo, &l("L1"), &l("L3"), 1000, 10, 1, 0.0, 3);
        b.record_delivery(&topo, &l("L4"), &l("L1"), 2000, 20, 1, 0.0, 3);
        b.record_fault(0, &l("L1"), &l("L3"), "drop".into());
        b.record_fault(2, &l("L2"), &l("L1"), "drop".into());
        a.normalize();
        b.normalize();
        assert_eq!(a, b);
        assert_eq!(a.records()[0].step, 1);
        assert_eq!(a.records()[1].from, l("L1"));
        assert_eq!(a.fault_events()[0].step, 0);
    }

    #[test]
    fn intra_site_record_is_free() {
        let topo = NetworkTopology::paper_wan();
        let mut log = TransferLog::new();
        let c = log.record(&topo, &Location::new("L1"), &Location::new("L1"), 1000, 10);
        assert_eq!(c, 0.0);
    }
}
