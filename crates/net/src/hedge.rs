//! Compliant hedged transfers: the backup-request defense against gray
//! links.
//!
//! When a link's health crosses the hedge threshold, the transfer
//! launches a **backup** after a short delay — either a duplicate on the
//! same link (drawn on independent fault coins, so a loss burst that ate
//! the primary may spare the copy) or a **one-hop relay** through an
//! intermediate site. First delivery wins; the loser is cancelled via
//! the ordinary [`CancelToken`]; every transmitted leg is cost-charged.
//!
//! The compliance rule is absolute: a relay site is only eligible if it
//! is in the producing subtree's shipping trait `𝒮ₙ` — the set of sites
//! the subtree's output may legally visit (Definition 1, c2). An illegal
//! relay is a typed [`GeoError::NonCompliant`] refusal, never a silent
//! fallback: hedging must not widen the placement space the optimizer
//! proved compliant.
//!
//! # Determinism
//!
//! Backup legs never advance the shared fault clock. They consult the
//! fault plan at the primary's own base step — so windowed faults
//! (degrade, crash, partition) apply to the backup exactly as to the
//! primary — but draw probabilistic flips from per-leg salted coins, and
//! record under designed step numbers disjoint from the primary grid
//! ([`hedge_step`]). Identically-seeded runs therefore produce identical
//! hedge outcomes, and turning hedging *on* never perturbs the primary
//! fault sequence: hedged and unhedged runs see the same primary
//! verdicts.

use crate::fault::{FaultPlan, FaultVerdict};
use crate::health::HealthConfig;
use crate::topology::NetworkTopology;
use geoqp_common::{CancelToken, GeoError, Location, LocationSet, Result};

/// Base of the designed step space backup legs record under: far above
/// any step the primary grid can reach, so hedge records never collide
/// with primary records and consume no clock ticks.
pub const HEDGE_STEP_BASE: u64 = 1 << 48;

/// Salt selecting the hedge coins (independent of flaky/loss coins).
const HEDGE_SALT: u64 = 0x6865_6467_6562_6B75; // "hedgebku"

/// The step a backup leg records under: disjoint per `(base_step, leg)`.
pub fn hedge_step(base_step: u64, leg: u64) -> u64 {
    HEDGE_STEP_BASE + base_step.wrapping_mul(4) + leg
}

/// Whether a delivered backup genuinely beat the primary: strictly
/// faster by more than float rounding. The two arrivals are computed by
/// different arithmetic (`base + surcharge` vs `factor × model`), so an
/// equal-cost duplicate can differ from its primary by an ulp — a "win"
/// within that noise is a tie, not a win.
pub fn backup_beats(backup_arrival_ms: f64, primary_arrival_ms: f64) -> bool {
    backup_arrival_ms < primary_arrival_ms * (1.0 - 1e-9)
}

fn leg_salt(leg: u64) -> u64 {
    HEDGE_SALT ^ leg.wrapping_mul(0x9E37_79B9)
}

/// Tuning for hedged transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeConfig {
    /// Simulated ms the backup waits before launching — long enough that
    /// a healthy primary wins outright, short enough to beat a gray one.
    pub delay_ms: f64,
    /// Health scoring and breaker thresholds.
    pub health: HealthConfig,
}

impl Default for HedgeConfig {
    fn default() -> HedgeConfig {
        HedgeConfig {
            delay_ms: 5.0,
            health: HealthConfig::default(),
        }
    }
}

/// One transmitted backup leg, for cost-charging to the transfer log.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeLeg {
    /// Leg source.
    pub from: Location,
    /// Leg destination.
    pub to: Location,
    /// Wire cost of the leg (model × degrade + injected delay), ms.
    pub cost_ms: f64,
    /// Designed step the leg records under.
    pub step: u64,
    /// Whether the leg arrived (a dropped leg still burned its bytes).
    pub delivered: bool,
}

/// The outcome of one backup attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeRun {
    /// When the backup delivered, its arrival relative to the primary's
    /// transfer start (hedge delay included); `None` when it was dropped
    /// or cancelled before completing.
    pub backup_arrival_ms: Option<f64>,
    /// Every leg that actually transmitted, in order.
    pub legs: Vec<HedgeLeg>,
    /// The relay site used, if the backup routed via one.
    pub relay: Option<Location>,
    /// True when the relay's second hop was cancelled because the
    /// primary had already won the race.
    pub relay_leg_cancelled: bool,
}

/// Decide the backup route for a hedged `from → to` transfer under a
/// caller-supplied leg cost model: the cheapest intermediate in `legal`
/// whose two-hop cost beats `degraded_direct_ms`, or `None` for a
/// delayed duplicate on the same link. Only sites in the producing
/// subtree's `𝒮ₙ` are ever considered, so the plan is compliant by
/// construction; [`run_hedge`] re-checks anyway.
///
/// The cost model is the caller's because amortization is the caller's:
/// the sequential engine ships one transfer per edge and prices every
/// leg at the full `α + β·b`, while the streaming runtime pays a link's
/// header once per stream and therefore compares **marginal** (β-only)
/// leg costs — a relay route's headers are a one-time investment
/// amortized over the remaining batches of the stream.
pub fn plan_hedge_with<F>(
    model: F,
    from: &Location,
    to: &Location,
    legal: &LocationSet,
    degraded_direct_ms: f64,
) -> Option<Location>
where
    F: Fn(&Location, &Location) -> f64,
{
    let mut best: Option<(f64, &Location)> = None;
    for site in legal {
        if site == from || site == to {
            continue;
        }
        let two_hop = model(from, site) + model(site, to);
        if two_hop < degraded_direct_ms && best.is_none_or(|(c, _)| two_hop < c) {
            best = Some((two_hop, site));
        }
    }
    best.map(|(_, s)| s.clone())
}

/// [`plan_hedge_with`] under the full `α + β·b` model: the right pricing
/// for a monolithic (non-streaming) transfer, where every leg pays its
/// own header. The degraded direct estimate is `observed_ratio ×` the
/// model cost.
pub fn plan_hedge(
    topology: &NetworkTopology,
    from: &Location,
    to: &Location,
    bytes: f64,
    legal: &LocationSet,
    observed_ratio: f64,
) -> Option<Location> {
    let degraded_direct = topology.ship_cost_ms(from, to, bytes) * observed_ratio.max(1.0);
    plan_hedge_with(
        |a, b| topology.ship_cost_ms(a, b, bytes),
        from,
        to,
        legal,
        degraded_direct,
    )
}

/// Run the backup side of a hedge race, deterministically.
///
/// `model` prices one leg's fault-free wire time; faults scale or drop
/// on top of it. Callers with streaming amortization (the pipelined
/// runtime) charge a leg's `α` header only the first time that route
/// opens; the sequential engine always prices the full `α + β·b`.
///
/// `coin` selects an independent family of probabilistic-fault flips
/// for this race: a caller streaming many batches over one step slot
/// (the pipelined runtime) passes a per-batch coin so each batch's
/// backup draws its own flaky/loss flips instead of replaying the
/// first batch's. Callers whose step already varies per transfer (the
/// sequential engine) pass `0`.
///
/// `primary_arrival_ms` is the primary's own delivery time relative to
/// transfer start (`None` when the primary failed outright): when a
/// relay's first hop lands *after* the primary already delivered, the
/// winner fires the [`CancelToken`] and the second hop never transmits —
/// only the first hop's bytes are charged.
///
/// Returns a typed [`GeoError::NonCompliant`] when `via` is outside
/// `legal` — an illegal relay must refuse, not silently fall back.
#[allow(clippy::too_many_arguments)]
pub fn run_hedge<F>(
    model: F,
    faults: Option<&FaultPlan>,
    config: &HedgeConfig,
    from: &Location,
    to: &Location,
    via: Option<&Location>,
    legal: &LocationSet,
    base_step: u64,
    coin: u64,
    primary_arrival_ms: Option<f64>,
) -> Result<HedgeRun>
where
    F: Fn(&Location, &Location) -> f64,
{
    let attempt = |leg_from: &Location, leg_to: &Location, leg: u64| -> HedgeLeg {
        let model = model(leg_from, leg_to);
        let verdict = match faults {
            None => FaultVerdict::Deliver {
                extra_delay_ms: 0.0,
            },
            // Windows are judged at the primary's base step; flips come
            // from the per-leg hedge coin, on the caller's batch coin.
            Some(f) => f.check_transfer_salted(leg_from, leg_to, base_step, leg_salt(leg) ^ coin),
        };
        let (cost_ms, delivered) = match verdict {
            FaultVerdict::Deliver { extra_delay_ms } => (model + extra_delay_ms, true),
            FaultVerdict::Degraded {
                factor,
                extra_delay_ms,
            } => (factor * model + extra_delay_ms, true),
            // The bytes went onto the wire and were lost: charge them.
            FaultVerdict::Drop { .. } => (model, false),
        };
        HedgeLeg {
            from: leg_from.clone(),
            to: leg_to.clone(),
            cost_ms,
            step: hedge_step(base_step, leg),
            delivered,
        }
    };
    let launch = config.delay_ms.max(0.0);
    match via {
        None => {
            // Delayed duplicate on the same link, single attempt.
            let leg = attempt(from, to, 0);
            let arrival = leg.delivered.then_some(launch + leg.cost_ms);
            Ok(HedgeRun {
                backup_arrival_ms: arrival,
                legs: vec![leg],
                relay: None,
                relay_leg_cancelled: false,
            })
        }
        Some(relay) => {
            if !legal.contains(relay) {
                return Err(GeoError::NonCompliant(format!(
                    "hedged relay for {from} -> {to} routes via {relay}, which is \
                     outside the producing subtree's shipping trait {legal}"
                )));
            }
            let first = attempt(from, relay, 1);
            if !first.delivered {
                return Ok(HedgeRun {
                    backup_arrival_ms: None,
                    legs: vec![first],
                    relay: Some(relay.clone()),
                    relay_leg_cancelled: false,
                });
            }
            let first_arrival = launch + first.cost_ms;
            // First delivery wins: if the primary landed before the relay
            // even finished its first hop, the race is over — the winner
            // fires the cancel token and the second hop never transmits.
            let loser = CancelToken::new();
            if primary_arrival_ms.is_some_and(|p| p <= first_arrival) {
                loser.cancel();
            }
            if loser.is_cancelled() {
                return Ok(HedgeRun {
                    backup_arrival_ms: None,
                    legs: vec![first],
                    relay: Some(relay.clone()),
                    relay_leg_cancelled: true,
                });
            }
            let second = attempt(relay, to, 2);
            let arrival = second.delivered.then_some(first_arrival + second.cost_ms);
            Ok(HedgeRun {
                backup_arrival_ms: arrival,
                legs: vec![first, second],
                relay: Some(relay.clone()),
                relay_leg_cancelled: false,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StepWindow;

    fn loc(n: &str) -> Location {
        Location::new(n)
    }

    fn wan() -> NetworkTopology {
        NetworkTopology::paper_wan()
    }

    #[test]
    fn plan_hedge_only_considers_legal_intermediates() {
        let t = wan();
        // L1–L4 is the WAN's best link: no healthy two-hop detour beats
        // it, so a healthy ratio plans no relay...
        let (from, to) = (loc("L1"), loc("L4"));
        let all = LocationSet::from_iter(["L1", "L2", "L3", "L4", "L5"]);
        assert_eq!(plan_hedge(&t, &from, &to, 1_000_000.0, &all, 1.0), None);
        // ...under a 4x slowdown a relay wins when the whole WAN is legal...
        let relay = plan_hedge(&t, &from, &to, 1_000_000.0, &all, 4.0);
        assert!(relay.is_some());
        let r = relay.unwrap();
        assert!(all.contains(&r));
        assert!(r != from && r != to);
        // ...but with 𝒮ₙ restricted to the endpoints, no relay exists.
        let endpoints = LocationSet::from_iter(["L1", "L4"]);
        assert_eq!(
            plan_hedge(&t, &from, &to, 1_000_000.0, &endpoints, 4.0),
            None
        );
    }

    #[test]
    fn illegal_relay_is_a_typed_non_compliant_refusal() {
        let t = wan();
        let legal = LocationSet::from_iter(["L2", "L3"]);
        let err = run_hedge(
            |a, b| t.ship_cost_ms(a, b, 1000.0),
            None,
            &HedgeConfig::default(),
            &loc("L2"),
            &loc("L3"),
            Some(&loc("L5")),
            &legal,
            0,
            0,
            None,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "non-compliant");
        assert!(
            err.to_string().contains("L5"),
            "refusal names the relay: {err}"
        );
    }

    #[test]
    fn duplicate_on_a_degraded_link_is_degraded_too() {
        let t = wan();
        let faults = FaultPlan::new(9).with_degrade("L1", "L4", 3.0, StepWindow::ALWAYS);
        let cfg = HedgeConfig::default();
        let run = run_hedge(
            |a, b| t.ship_cost_ms(a, b, 10_000.0),
            Some(&faults),
            &cfg,
            &loc("L1"),
            &loc("L4"),
            None,
            &LocationSet::from_iter(["L1", "L4"]),
            5,
            0,
            Some(1e9),
        )
        .unwrap();
        let model = t.ship_cost_ms(&loc("L1"), &loc("L4"), 10_000.0);
        assert_eq!(run.backup_arrival_ms, Some(cfg.delay_ms + 3.0 * model));
        assert_eq!(run.legs.len(), 1);
        assert!(run.legs[0].step >= HEDGE_STEP_BASE);
    }

    #[test]
    fn relay_second_hop_is_cancelled_when_the_primary_already_won() {
        let t = wan();
        let legal = LocationSet::from_iter(["L1", "L4", "L5"]);
        let run = run_hedge(
            |a, b| t.ship_cost_ms(a, b, 10_000.0),
            None,
            &HedgeConfig::default(),
            &loc("L1"),
            &loc("L4"),
            Some(&loc("L5")),
            &legal,
            0,
            0,
            Some(0.1), // primary effectively instant
        )
        .unwrap();
        assert!(run.relay_leg_cancelled);
        assert_eq!(run.backup_arrival_ms, None);
        // Only the first hop's bytes were charged.
        assert_eq!(run.legs.len(), 1);
        assert_eq!(run.legs[0].to, loc("L5"));
    }

    #[test]
    fn relay_runs_both_hops_when_the_primary_is_slow() {
        let t = wan();
        let legal = LocationSet::from_iter(["L1", "L4", "L5"]);
        let run = run_hedge(
            |a, b| t.ship_cost_ms(a, b, 10_000.0),
            None,
            &HedgeConfig::default(),
            &loc("L1"),
            &loc("L4"),
            Some(&loc("L5")),
            &legal,
            0,
            0,
            Some(1e9),
        )
        .unwrap();
        assert!(!run.relay_leg_cancelled);
        assert_eq!(run.legs.len(), 2);
        let expect = HedgeConfig::default().delay_ms
            + t.ship_cost_ms(&loc("L1"), &loc("L5"), 10_000.0)
            + t.ship_cost_ms(&loc("L5"), &loc("L4"), 10_000.0);
        assert_eq!(run.backup_arrival_ms, Some(expect));
    }

    #[test]
    fn hedge_outcomes_are_deterministic_and_do_not_touch_the_clock() {
        let t = wan();
        let faults = FaultPlan::new(77).with_loss_burst("L1", "L4", 0.5, StepWindow::ALWAYS);
        let before = faults.step();
        let legal = LocationSet::from_iter(["L1", "L4"]);
        let a = run_hedge(
            |x, y| t.ship_cost_ms(x, y, 1000.0),
            Some(&faults),
            &HedgeConfig::default(),
            &loc("L1"),
            &loc("L4"),
            None,
            &legal,
            3,
            0,
            None,
        )
        .unwrap();
        let b = run_hedge(
            |x, y| t.ship_cost_ms(x, y, 1000.0),
            Some(&faults),
            &HedgeConfig::default(),
            &loc("L1"),
            &loc("L4"),
            None,
            &legal,
            3,
            0,
            None,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(faults.step(), before, "hedges must not consume clock ticks");
        // The backup coin is independent of the primary's: across many
        // base steps both survive-and-drop outcomes occur.
        let outcomes: Vec<bool> = (0..200)
            .map(|s| {
                run_hedge(
                    |x, y| t.ship_cost_ms(x, y, 1000.0),
                    Some(&faults),
                    &HedgeConfig::default(),
                    &loc("L1"),
                    &loc("L4"),
                    None,
                    &legal,
                    s,
                    0,
                    None,
                )
                .unwrap()
                .backup_arrival_ms
                .is_some()
            })
            .collect();
        assert!(outcomes.iter().any(|&d| d) && outcomes.iter().any(|&d| !d));
    }
}
