//! Fault-gated catalog replication transport.
//!
//! The versioned policy-catalog log (in `geoqp-policy`) is distributed
//! from a coordinator site to every site's replica over the *same*
//! simulated network that carries data transfers: each log-entry fetch is
//! a coordinator→site transfer judged by the seeded [`FaultPlan`], so
//! replica lag, catalog partitions, and crashed replicas fall out of the
//! exact fault schedules the chaos harness already drives — and replay
//! deterministically.
//!
//! The transport is deliberately stateless about *application*: it only
//! decides which entry sequence numbers get through on one pull round.
//! The caller owns the replica state machines (which chain-verify every
//! entry) — their applied sequence is the single source of truth for
//! freshness proofs.

use crate::fault::{FaultPlan, FaultVerdict};
use geoqp_common::Location;

/// Salt separating catalog-sync fault flips from data-transfer flips on
/// the same link and step — the catalog plane shares the network's
/// weather, not its packets.
pub const CATALOG_SYNC_SALT: u64 = 0xCA7A_7061_5F43_A106;

/// Salt for snapshot-bootstrap transfers: one snapshot shipment is one
/// coordinator→site transfer, on its own coin, distinct from both data
/// transfers and per-entry catalog fetches at the same step.
pub const CATALOG_SNAPSHOT_SALT: u64 = 0x5AA9_5407_B007_57A9;

/// Pull-based catalog replication from one coordinator site.
#[derive(Debug, Clone)]
pub struct CatalogGossip {
    coordinator: Location,
}

impl CatalogGossip {
    /// A transport whose log of record lives at `coordinator`.
    pub fn new(coordinator: Location) -> CatalogGossip {
        CatalogGossip { coordinator }
    }

    /// The site holding the log of record.
    pub fn coordinator(&self) -> &Location {
        &self.coordinator
    }

    /// One pull round for `site`, currently holding entries up to
    /// `have`, against a log whose head is `head`: entries are fetched
    /// one at a time over the coordinator→site link, each judged by the
    /// fault plan at `step` (on an independent per-entry coin), and the
    /// first refused fetch ends the round — replication is in-order, so
    /// a gap can never be skipped over. Returns the highest sequence
    /// the site now holds.
    ///
    /// Degraded links still deliver: catalog entries are tiny, so gray
    /// slowness costs latency, not freshness. Crashes (either endpoint),
    /// partitions, drops, and flaky/loss flips all stall the round.
    pub fn pull(
        &self,
        site: &Location,
        have: u64,
        head: u64,
        faults: Option<&FaultPlan>,
        step: u64,
    ) -> u64 {
        // The coordinator's own replica is the log itself.
        if *site == self.coordinator {
            return head;
        }
        let mut holds = have;
        while holds < head {
            let next = holds + 1;
            let delivered = match faults {
                None => true,
                Some(plan) => matches!(
                    plan.check_transfer_salted(
                        &self.coordinator,
                        site,
                        step,
                        CATALOG_SYNC_SALT ^ next,
                    ),
                    FaultVerdict::Deliver { .. } | FaultVerdict::Degraded { .. }
                ),
            };
            if !delivered {
                break;
            }
            holds = next;
        }
        holds
    }

    /// One snapshot-bootstrap attempt for `site`: the floor snapshot at
    /// `snapshot_seq` ships as a single coordinator→site transfer judged
    /// by the fault plan at `step`. Returns whether it got through.
    /// Degraded links still deliver (slow, not absent), exactly like
    /// entry pulls; crashes, partitions, and drops stall the bootstrap
    /// until a later round.
    pub fn pull_snapshot(
        &self,
        site: &Location,
        snapshot_seq: u64,
        faults: Option<&FaultPlan>,
        step: u64,
    ) -> bool {
        if *site == self.coordinator {
            return true;
        }
        match faults {
            None => true,
            Some(plan) => matches!(
                plan.check_transfer_salted(
                    &self.coordinator,
                    site,
                    step,
                    CATALOG_SNAPSHOT_SALT ^ snapshot_seq,
                ),
                FaultVerdict::Deliver { .. } | FaultVerdict::Degraded { .. }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, StepWindow};

    fn loc(name: &str) -> Location {
        Location::new(name)
    }

    #[test]
    fn faultless_pull_catches_up_in_one_round() {
        let gossip = CatalogGossip::new(loc("L1"));
        assert_eq!(gossip.pull(&loc("L2"), 0, 5, None, 0), 5);
        assert_eq!(
            gossip.pull(&loc("L1"), 0, 5, None, 0),
            5,
            "coordinator is always fresh"
        );
    }

    #[test]
    fn partition_stalls_replication_until_it_heals() {
        let plan = FaultPlan::new(7).with_partition(["L2"], StepWindow::new(0, 9));
        let gossip = CatalogGossip::new(loc("L1"));
        assert_eq!(gossip.pull(&loc("L2"), 0, 3, Some(&plan), 4), 0);
        // Unpartitioned peers keep syncing.
        assert_eq!(gossip.pull(&loc("L3"), 0, 3, Some(&plan), 4), 3);
        // The window closes and the replica catches up.
        assert_eq!(gossip.pull(&loc("L2"), 0, 3, Some(&plan), 10), 3);
    }

    #[test]
    fn crashed_replica_pulls_nothing() {
        let plan = FaultPlan::new(7).with_crash("L2", StepWindow::new(0, u64::MAX));
        let gossip = CatalogGossip::new(loc("L1"));
        assert_eq!(gossip.pull(&loc("L2"), 1, 4, Some(&plan), 100), 1);
    }

    #[test]
    fn snapshot_transfers_are_fault_judged_and_deterministic() {
        let gossip = CatalogGossip::new(loc("L1"));
        // Faultless and coordinator pulls always deliver.
        assert!(gossip.pull_snapshot(&loc("L2"), 5, None, 0));
        let plan = FaultPlan::new(7).with_crash("L2", StepWindow::new(0, 10));
        assert!(gossip.pull_snapshot(&loc("L1"), 5, Some(&plan), 3));
        // A crashed site cannot receive the snapshot until it recovers.
        assert!(!gossip.pull_snapshot(&loc("L2"), 5, Some(&plan), 3));
        assert!(gossip.pull_snapshot(&loc("L2"), 5, Some(&plan), 10));
        // Flaky links judge the snapshot on its own deterministic coin.
        let mk = || FaultPlan::parse("flaky:L1-L2:0.5", 11).unwrap();
        let a: Vec<bool> = (0..20)
            .map(|s| gossip.pull_snapshot(&loc("L2"), 3, Some(&mk()), s))
            .collect();
        let b: Vec<bool> = (0..20)
            .map(|s| gossip.pull_snapshot(&loc("L2"), 3, Some(&mk()), s))
            .collect();
        assert_eq!(a, b, "seeded snapshot shipping must replay identically");
        assert!(a.iter().any(|&d| d) && a.iter().any(|&d| !d));
    }

    #[test]
    fn replication_is_in_order_and_deterministic() {
        // A flaky link: whatever prefix gets through, it is a prefix,
        // and identical seeds replay identically.
        let mk = || FaultPlan::parse("flaky:L1-L2:0.5", 11).unwrap();
        let gossip = CatalogGossip::new(loc("L1"));
        let a: Vec<u64> = (0..20)
            .map(|step| gossip.pull(&loc("L2"), 0, 6, Some(&mk()), step))
            .collect();
        let b: Vec<u64> = (0..20)
            .map(|step| gossip.pull(&loc("L2"), 0, 6, Some(&mk()), step))
            .collect();
        assert_eq!(a, b, "seeded catalog gossip must replay identically");
        assert!(a.iter().all(|&s| s <= 6));
    }
}
