//! Network topology and the `α + β·b` message cost model.

use geoqp_common::{Location, LocationSet};
use std::collections::BTreeMap;

/// Pairwise link parameters: `α` (startup cost, milliseconds — one WAN
/// round-trip) and `β` (per-byte cost, milliseconds/byte — inverse
/// throughput).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Startup cost in ms.
    pub alpha_ms: f64,
    /// Cost per byte in ms.
    pub beta_ms_per_byte: f64,
}

/// A geo-distributed network: locations plus per-directed-pair link
/// parameters. Intra-site transfers are free, following the paper's model
/// where SHIP only appears between sites.
#[derive(Debug, Clone)]
pub struct NetworkTopology {
    locations: LocationSet,
    links: BTreeMap<(Location, Location), Link>,
    default_link: Link,
}

/// Megabits/second to ms-per-byte.
fn mbps_to_ms_per_byte(mbps: f64) -> f64 {
    // bytes/ms at `mbps`: mbps * 1e6 bits/s = mbps * 125_000 bytes/s
    // = mbps * 125 bytes/ms.
    1.0 / (mbps * 125.0)
}

impl NetworkTopology {
    /// A topology where every cross-site link has the same parameters.
    pub fn uniform(locations: LocationSet, alpha_ms: f64, mbps: f64) -> NetworkTopology {
        NetworkTopology {
            locations,
            links: BTreeMap::new(),
            default_link: Link {
                alpha_ms,
                beta_ms_per_byte: mbps_to_ms_per_byte(mbps),
            },
        }
    }

    /// The five-region WAN of the paper's Section 7.4: locations `L1`–`L5`
    /// standing for Europe, Africa, Asia, North America, and the Middle
    /// East. The α values are representative inter-region round-trip times
    /// and the β values derive from representative inter-region throughput.
    pub fn paper_wan() -> NetworkTopology {
        let names = ["L1", "L2", "L3", "L4", "L5"];
        // Round-trip times in ms between regions (symmetric):
        //        EU    AF    AS    NA    ME
        let rtt = [
            [0.0, 150.0, 180.0, 90.0, 110.0],  // EU (L1)
            [150.0, 0.0, 280.0, 200.0, 180.0], // AF (L2)
            [180.0, 280.0, 0.0, 160.0, 120.0], // AS (L3)
            [90.0, 200.0, 160.0, 0.0, 190.0],  // NA (L4)
            [110.0, 180.0, 120.0, 190.0, 0.0], // ME (L5)
        ];
        // Sustained inter-region throughput in Mbps (symmetric):
        let mbps = [
            [0.0, 120.0, 150.0, 400.0, 250.0],
            [120.0, 0.0, 60.0, 100.0, 140.0],
            [150.0, 60.0, 0.0, 180.0, 220.0],
            [400.0, 100.0, 180.0, 0.0, 110.0],
            [250.0, 140.0, 220.0, 110.0, 0.0],
        ];
        let locations: Vec<Location> = names.iter().map(Location::new).collect();
        let mut links = BTreeMap::new();
        for (i, a) in locations.iter().enumerate() {
            for (j, b) in locations.iter().enumerate() {
                if i != j {
                    links.insert(
                        (a.clone(), b.clone()),
                        Link {
                            alpha_ms: rtt[i][j],
                            beta_ms_per_byte: mbps_to_ms_per_byte(mbps[i][j]),
                        },
                    );
                }
            }
        }
        NetworkTopology {
            locations: locations.into_iter().collect(),
            links,
            default_link: Link {
                alpha_ms: 150.0,
                beta_ms_per_byte: mbps_to_ms_per_byte(100.0),
            },
        }
    }

    /// Override one directed link.
    pub fn set_link(&mut self, from: Location, to: Location, link: Link) {
        self.locations.insert(from.clone());
        self.locations.insert(to.clone());
        self.links.insert((from, to), link);
    }

    /// The known locations.
    pub fn locations(&self) -> &LocationSet {
        &self.locations
    }

    /// The link parameters for a directed pair (the default link when the
    /// pair was never configured — so ad-hoc location sets still cost
    /// sensibly).
    pub fn link(&self, from: &Location, to: &Location) -> Link {
        if from == to {
            return Link {
                alpha_ms: 0.0,
                beta_ms_per_byte: 0.0,
            };
        }
        self.links
            .get(&(from.clone(), to.clone()))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// A copy of the topology with the given directed links priced at ∞
    /// — the soft exclusion the breaker-driven re-planner optimizes
    /// against (Algorithm 2 then routes around the condemned edges on
    /// cost alone, never leaving the compliant placement space). The
    /// per-byte slope is zeroed so `∞ · 0` bytes can never produce NaN.
    pub fn avoiding_links<'a, I>(&self, avoided: I) -> NetworkTopology
    where
        I: IntoIterator<Item = &'a (Location, Location)>,
    {
        let mut t = self.clone();
        for (from, to) in avoided {
            t.links.insert(
                (from.clone(), to.clone()),
                Link {
                    alpha_ms: f64::INFINITY,
                    beta_ms_per_byte: 0.0,
                },
            );
        }
        t
    }

    /// The message cost model: `cost(i→j, b) = α_ij + β_ij · b`, in
    /// simulated milliseconds. Zero for intra-site movement.
    pub fn ship_cost_ms(&self, from: &Location, to: &Location, bytes: f64) -> f64 {
        if from == to {
            return 0.0;
        }
        let l = self.link(from, to);
        l.alpha_ms + l.beta_ms_per_byte * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_site_is_free() {
        let t = NetworkTopology::paper_wan();
        let l1 = Location::new("L1");
        assert_eq!(t.ship_cost_ms(&l1, &l1, 1e9), 0.0);
    }

    #[test]
    fn cost_is_affine_in_bytes() {
        let t = NetworkTopology::paper_wan();
        let (l1, l3) = (Location::new("L1"), Location::new("L3"));
        let c0 = t.ship_cost_ms(&l1, &l3, 0.0);
        let c1 = t.ship_cost_ms(&l1, &l3, 1_000_000.0);
        let c2 = t.ship_cost_ms(&l1, &l3, 2_000_000.0);
        assert!(c0 > 0.0, "startup cost must be positive");
        let d1 = c1 - c0;
        let d2 = c2 - c1;
        assert!((d1 - d2).abs() < 1e-9, "per-byte slope must be constant");
    }

    #[test]
    fn paper_wan_is_symmetric_and_complete() {
        let t = NetworkTopology::paper_wan();
        assert_eq!(t.locations().len(), 5);
        for a in t.locations().iter() {
            for b in t.locations().iter() {
                if a != b {
                    let ab = t.link(a, b);
                    let ba = t.link(b, a);
                    assert_eq!(ab.alpha_ms, ba.alpha_ms);
                    assert_eq!(ab.beta_ms_per_byte, ba.beta_ms_per_byte);
                    assert!(ab.alpha_ms > 0.0);
                }
            }
        }
    }

    #[test]
    fn unknown_pairs_use_default_link() {
        let t = NetworkTopology::paper_wan();
        let cost = t.ship_cost_ms(&Location::new("X"), &Location::new("Y"), 1000.0);
        assert!(cost > 0.0);
    }

    #[test]
    fn uniform_topology() {
        let locs = LocationSet::from_iter(["A", "B"]);
        let t = NetworkTopology::uniform(locs, 100.0, 125.0);
        // 125 Mbps = 15625 bytes/ms → β = 6.4e-5 ms/byte.
        let c = t.ship_cost_ms(&Location::new("A"), &Location::new("B"), 15625.0 * 125.0);
        assert!((c - 225.0).abs() < 1e-6);
    }

    #[test]
    fn avoiding_links_prices_only_the_named_edges_at_infinity() {
        let t = NetworkTopology::paper_wan();
        let (l1, l4) = (Location::new("L1"), Location::new("L4"));
        let avoided = [(l1.clone(), l4.clone())];
        let a = t.avoiding_links(&avoided);
        assert!(a.ship_cost_ms(&l1, &l4, 0.0).is_infinite());
        assert!(!a.ship_cost_ms(&l1, &l4, 0.0).is_nan());
        // The reverse direction and every other link keep their prices.
        assert_eq!(
            a.ship_cost_ms(&l4, &l1, 100.0),
            t.ship_cost_ms(&l4, &l1, 100.0)
        );
        assert_eq!(
            a.ship_cost_ms(&l1, &Location::new("L3"), 100.0),
            t.ship_cost_ms(&l1, &Location::new("L3"), 100.0)
        );
        // The original is untouched.
        assert!(t.ship_cost_ms(&l1, &l4, 0.0).is_finite());
    }

    #[test]
    fn set_link_overrides() {
        let mut t = NetworkTopology::uniform(LocationSet::new(), 10.0, 100.0);
        t.set_link(
            Location::new("A"),
            Location::new("B"),
            Link {
                alpha_ms: 1.0,
                beta_ms_per_byte: 0.0,
            },
        );
        assert_eq!(
            t.ship_cost_ms(&Location::new("A"), &Location::new("B"), 1e6),
            1.0
        );
        // Reverse direction still uses the default.
        assert!(t.ship_cost_ms(&Location::new("B"), &Location::new("A"), 1e6) > 1.0);
        assert_eq!(t.locations().len(), 2);
    }
}
