//! Predicate normalization for the implication prover.
//!
//! Rewrites a predicate into negation normal form (NNF) with a few
//! desugarings that make implication reasoning uniform:
//!
//! * `NOT` is pushed down to atoms (De Morgan), absorbed into comparison
//!   operators and the `negated` flags of `LIKE`/`IN`/`BETWEEN`/`IS NULL`,
//! * `BETWEEN lo AND hi` with literal bounds becomes `x >= lo AND x <= hi`
//!   (and its negation the matching disjunction),
//! * comparisons are oriented so that a bare column sits on the left-hand
//!   side whenever the other operand is a literal (`5 < a` → `a > 5`).

use crate::expr::{BinaryOp, ScalarExpr, UnaryOp};

/// Normalize a predicate to NNF with desugared BETWEEN and oriented
/// comparisons. The result is semantically equivalent to the input.
pub fn normalize(pred: &ScalarExpr) -> ScalarExpr {
    nnf(pred, false)
}

fn nnf(e: &ScalarExpr, negate: bool) -> ScalarExpr {
    match e {
        ScalarExpr::Unary {
            op: UnaryOp::Not,
            expr,
        } => nnf(expr, !negate),
        ScalarExpr::Binary { op, lhs, rhs } => match op {
            BinaryOp::And => {
                let l = nnf(lhs, negate);
                let r = nnf(rhs, negate);
                if negate {
                    l.or(r)
                } else {
                    l.and(r)
                }
            }
            BinaryOp::Or => {
                let l = nnf(lhs, negate);
                let r = nnf(rhs, negate);
                if negate {
                    l.and(r)
                } else {
                    l.or(r)
                }
            }
            op if op.is_comparison() => {
                let op = if negate {
                    // Negating a comparison is only sound for non-null
                    // operands; the prover treats NULL-satisfying rows as
                    // not satisfying either predicate, which keeps this
                    // rewrite sound for implication purposes.
                    op.negate_comparison().expect("comparison")
                } else {
                    *op
                };
                orient(op, nnf(lhs, false), nnf(rhs, false))
            }
            // Arithmetic below a negation cannot appear (NOT applies to
            // booleans); just rebuild.
            _ => {
                let rebuilt = ScalarExpr::binary(*op, nnf(lhs, false), nnf(rhs, false));
                wrap_not(rebuilt, negate)
            }
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(nnf(expr, false)),
            pattern: pattern.clone(),
            negated: *negated != negate,
        },
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => ScalarExpr::InList {
            expr: Box::new(nnf(expr, false)),
            list: list.clone(),
            negated: *negated != negate,
        },
        ScalarExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let x = nnf(expr, false);
            let lo = nnf(low, false);
            let hi = nnf(high, false);
            let effective_neg = *negated != negate;
            if effective_neg {
                x.clone().lt(lo).or(x.gt(hi))
            } else {
                x.clone().gt_eq(lo).and(x.lt_eq(hi))
            }
        }
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(nnf(expr, false)),
            negated: *negated != negate,
        },
        ScalarExpr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => wrap_not(
            ScalarExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(nnf(expr, false)),
            },
            negate,
        ),
        ScalarExpr::Column(_) | ScalarExpr::Literal(_) => wrap_not(e.clone(), negate),
    }
}

/// Orient comparisons canonically: `lit op col` becomes
/// `col flipped-op lit`, and column–column comparisons put the
/// lexicographically smaller column on the left (so `a = b` and `b = a`
/// normalize identically — the syntactic-membership fallback of the
/// implication prover relies on this for join atoms).
fn orient(op: BinaryOp, lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
    if lhs.as_literal().is_some() && rhs.as_column().is_some() {
        return ScalarExpr::binary(op.flip(), rhs, lhs);
    }
    if let (Some(a), Some(b)) = (lhs.as_column(), rhs.as_column()) {
        if a > b {
            return ScalarExpr::binary(op.flip(), rhs, lhs);
        }
    }
    ScalarExpr::binary(op, lhs, rhs)
}

fn wrap_not(e: ScalarExpr, negate: bool) -> ScalarExpr {
    if negate {
        // NOT of a boolean literal folds immediately.
        if let ScalarExpr::Literal(geoqp_common::Value::Bool(b)) = &e {
            return ScalarExpr::lit(!*b);
        }
        e.not()
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::Value;

    #[test]
    fn double_negation_cancels() {
        let p = ScalarExpr::col("a").gt(ScalarExpr::lit(5i64)).not().not();
        assert_eq!(
            normalize(&p),
            ScalarExpr::col("a").gt(ScalarExpr::lit(5i64))
        );
    }

    #[test]
    fn de_morgan() {
        let p = ScalarExpr::col("a")
            .gt(ScalarExpr::lit(1i64))
            .and(ScalarExpr::col("b").lt(ScalarExpr::lit(2i64)))
            .not();
        let expected = ScalarExpr::col("a")
            .lt_eq(ScalarExpr::lit(1i64))
            .or(ScalarExpr::col("b").gt_eq(ScalarExpr::lit(2i64)));
        assert_eq!(normalize(&p), expected);
    }

    #[test]
    fn between_desugars() {
        let p = ScalarExpr::col("x").between(ScalarExpr::lit(1i64), ScalarExpr::lit(9i64));
        let expected = ScalarExpr::col("x")
            .gt_eq(ScalarExpr::lit(1i64))
            .and(ScalarExpr::col("x").lt_eq(ScalarExpr::lit(9i64)));
        assert_eq!(normalize(&p), expected);

        let np = p.not();
        let expected = ScalarExpr::col("x")
            .lt(ScalarExpr::lit(1i64))
            .or(ScalarExpr::col("x").gt(ScalarExpr::lit(9i64)));
        assert_eq!(normalize(&np), expected);
    }

    #[test]
    fn not_like_toggles_flag() {
        let p = ScalarExpr::col("s").like("A%").not();
        assert_eq!(normalize(&p), ScalarExpr::col("s").not_like("A%"));
    }

    #[test]
    fn literal_comparisons_orient_column_left() {
        let p = ScalarExpr::lit(5i64).lt(ScalarExpr::col("a"));
        assert_eq!(
            normalize(&p),
            ScalarExpr::col("a").gt(ScalarExpr::lit(5i64))
        );
    }

    #[test]
    fn column_column_comparisons_orient_lexicographically() {
        let p = ScalarExpr::col("zz").eq(ScalarExpr::col("aa"));
        assert_eq!(
            normalize(&p),
            ScalarExpr::col("aa").eq(ScalarExpr::col("zz"))
        );
        let p = ScalarExpr::col("zz").lt(ScalarExpr::col("aa"));
        assert_eq!(
            normalize(&p),
            ScalarExpr::col("aa").gt(ScalarExpr::col("zz"))
        );
        // Already ordered: untouched.
        let p = ScalarExpr::col("aa").lt_eq(ScalarExpr::col("zz"));
        assert_eq!(normalize(&p), p);
    }

    #[test]
    fn not_of_bool_literal_folds() {
        let p = ScalarExpr::lit(true).not();
        assert_eq!(normalize(&p), ScalarExpr::lit(Value::Bool(false)));
    }

    #[test]
    fn not_in_toggles() {
        let p = ScalarExpr::col("a").in_list(vec![Value::Int64(1)]).not();
        match normalize(&p) {
            ScalarExpr::InList { negated, .. } => assert!(negated),
            other => panic!("unexpected: {other}"),
        }
    }
}
