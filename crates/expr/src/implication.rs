//! A sound (incomplete) logical-implication prover: `does P imply Q?`
//!
//! Used by the policy evaluator (paper Section 5, Algorithm 1 line 3) to
//! check that the rows selected by a query predicate `P_q` are a subset of
//! the rows a policy expression's predicate `P_e` covers. The technique
//! follows Goldstein & Larson's materialized-view matching: predicates are
//! normalized to NNF, disjunction is handled structurally, and conjunctions
//! of atoms are summarized into per-column facts (intervals, equalities,
//! IN-sets, LIKE patterns) against which each consequent atom is checked.
//!
//! Soundness: `implies(P, Q)` returns `true` only when every row satisfying
//! `P` also satisfies `Q` (where "satisfies" means *evaluates to TRUE*, the
//! filter semantics both queries and policies use). Incompleteness is by
//! design — e.g. `A = 5 AND B = 3 ⟹ A + B = 8` is not recognized, exactly
//! the example the paper gives.

use crate::expr::{BinaryOp, ScalarExpr};
use crate::like::{is_exact_pattern, like_match, prefix_of_pattern};
use crate::normalize::normalize;
use geoqp_common::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

/// Does `p` logically imply `q`? Sound, incomplete.
pub fn implies(p: &ScalarExpr, q: &ScalarExpr) -> bool {
    let p = normalize(p);
    let q = normalize(q);
    implies_nnf(&p, &q)
}

/// Implication over optional predicates, where `None` is the always-true
/// predicate (a query or expression without a WHERE clause).
pub fn implies_opt(p: Option<&ScalarExpr>, q: Option<&ScalarExpr>) -> bool {
    match (p, q) {
        (_, None) => true,
        (None, Some(q)) => implies(&ScalarExpr::lit(true), q),
        (Some(p), Some(q)) => implies(p, q),
    }
}

fn implies_nnf(p: &ScalarExpr, q: &ScalarExpr) -> bool {
    if p == q {
        return true;
    }
    // (p1 OR p2) ⟹ q  iff  p1 ⟹ q and p2 ⟹ q.
    if let ScalarExpr::Binary {
        op: BinaryOp::Or,
        lhs,
        rhs,
    } = p
    {
        return implies_nnf(lhs, q) && implies_nnf(rhs, q);
    }
    match q {
        // p ⟹ (q1 AND q2)  iff  p ⟹ q1 and p ⟹ q2.
        ScalarExpr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } => implies_nnf(p, lhs) && implies_nnf(p, rhs),
        // p ⟹ (q1 OR q2)  if  p ⟹ q1 or p ⟹ q2 (sound, incomplete).
        ScalarExpr::Binary {
            op: BinaryOp::Or,
            lhs,
            rhs,
        } => implies_nnf(p, lhs) || implies_nnf(p, rhs),
        atom => {
            let summary = Summary::build(p);
            summary.entails(atom) || conjunct_member(p, atom)
        }
    }
}

/// Syntactic membership: `atom` appears verbatim among `p`'s conjuncts.
/// Covers atoms the summary cannot reason about (column-column comparisons,
/// arithmetic), since any conjunct of `p` is implied by `p`.
fn conjunct_member(p: &ScalarExpr, atom: &ScalarExpr) -> bool {
    crate::predicate::split_conjunction(p).contains(&atom)
}

/// One end of a column's value interval.
#[derive(Debug, Clone)]
struct Bound {
    value: Value,
    inclusive: bool,
}

/// Everything a conjunction of atoms tells us about one column.
#[derive(Debug, Clone, Default)]
struct ColumnFacts {
    eq: Option<Value>,
    lower: Option<Bound>,
    upper: Option<Bound>,
    neq: BTreeSet<Value>,
    /// Intersection of IN-lists: the column's value must be one of these.
    allowed: Option<BTreeSet<Value>>,
    likes: Vec<String>,
    not_likes: Vec<String>,
    asserted_null: bool,
    asserted_not_null: bool,
}

impl ColumnFacts {
    /// Any fact that requires evaluating the column against a non-null
    /// comparison implies the column is not NULL on satisfying rows.
    fn known_not_null(&self) -> bool {
        self.asserted_not_null
            || self.eq.is_some()
            || self.lower.is_some()
            || self.upper.is_some()
            || self.allowed.is_some()
            || !self.likes.is_empty()
            || !self.not_likes.is_empty()
            || !self.neq.is_empty()
    }
}

/// Summary of a conjunction: per-column facts plus an unsatisfiability flag.
#[derive(Debug, Default)]
struct Summary {
    columns: BTreeMap<String, ColumnFacts>,
    /// When the conjunction is provably unsatisfiable, it implies anything.
    unsat: bool,
    /// A literal FALSE conjunct.
    literal_false: bool,
}

impl Summary {
    fn build(p: &ScalarExpr) -> Summary {
        let mut s = Summary::default();
        for conjunct in crate::predicate::split_conjunction(p) {
            s.absorb(conjunct);
        }
        s.finish();
        s
    }

    fn facts(&mut self, col: &str) -> &mut ColumnFacts {
        self.columns.entry(col.to_string()).or_default()
    }

    fn absorb(&mut self, atom: &ScalarExpr) {
        match atom {
            ScalarExpr::Literal(Value::Bool(false)) => self.literal_false = true,
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { op, lhs, rhs } if op.is_comparison() => {
                let (col, val) = match (lhs.as_column(), rhs.as_literal()) {
                    (Some(c), Some(v)) => (c, v.clone()),
                    _ => return, // column-column / arithmetic: unusable here
                };
                if val.is_null() {
                    // `col op NULL` never evaluates to TRUE: unsatisfiable.
                    self.unsat = true;
                    return;
                }
                let f = self.facts(col);
                match op {
                    BinaryOp::Eq => match &f.eq {
                        Some(prev) if prev.sql_cmp(&val) != Some(Ordering::Equal) => {
                            self.unsat = true
                        }
                        _ => f.eq = Some(val),
                    },
                    BinaryOp::NotEq => {
                        f.neq.insert(val);
                    }
                    BinaryOp::Gt => tighten_lower(f, val, false),
                    BinaryOp::GtEq => tighten_lower(f, val, true),
                    BinaryOp::Lt => tighten_upper(f, val, false),
                    BinaryOp::LtEq => tighten_upper(f, val, true),
                    _ => {}
                }
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                if let Some(col) = expr.as_column() {
                    let f = self.facts(col);
                    if *negated {
                        f.not_likes.push(pattern.clone());
                    } else if is_exact_pattern(pattern) {
                        // `col LIKE 'exact'` ≡ `col = 'exact'`.
                        match &f.eq {
                            Some(prev) if prev.as_str() != Some(pattern.as_str()) => {
                                self.unsat = true
                            }
                            _ => f.eq = Some(Value::str(pattern)),
                        }
                    } else {
                        f.likes.push(pattern.clone());
                    }
                }
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                if let Some(col) = expr.as_column() {
                    let f = self.facts(col);
                    if *negated {
                        for v in list {
                            if !v.is_null() {
                                f.neq.insert(v.clone());
                            }
                        }
                    } else {
                        let set: BTreeSet<Value> =
                            list.iter().filter(|v| !v.is_null()).cloned().collect();
                        f.allowed = Some(match f.allowed.take() {
                            None => set,
                            Some(prev) => prev.intersection(&set).cloned().collect(),
                        });
                    }
                }
            }
            ScalarExpr::IsNull { expr, negated } => {
                if let Some(col) = expr.as_column() {
                    let f = self.facts(col);
                    if *negated {
                        f.asserted_not_null = true;
                    } else {
                        f.asserted_null = true;
                    }
                }
            }
            // OR below a conjunct, arithmetic, NOT of unsupported shapes:
            // ignoring a conjunct only weakens the antecedent — sound.
            _ => {}
        }
    }

    /// Cross-fact consistency checks that mark the summary unsatisfiable.
    fn finish(&mut self) {
        if self.literal_false {
            self.unsat = true;
        }
        for f in self.columns.values_mut() {
            // Fold singleton IN-sets into equality.
            if let Some(allowed) = &f.allowed {
                if allowed.is_empty() {
                    self.unsat = true;
                    return;
                }
                if allowed.len() == 1 && f.eq.is_none() {
                    f.eq = allowed.iter().next().cloned();
                }
            }
            if let Some(eq) = &f.eq {
                if f.neq.iter().any(|v| v.sql_cmp(eq) == Some(Ordering::Equal)) {
                    self.unsat = true;
                    return;
                }
                if let Some(allowed) = &f.allowed {
                    if !allowed
                        .iter()
                        .any(|v| v.sql_cmp(eq) == Some(Ordering::Equal))
                    {
                        self.unsat = true;
                        return;
                    }
                }
                if !bound_admits(&f.lower, eq, true) || !bound_admits(&f.upper, eq, false) {
                    self.unsat = true;
                    return;
                }
            }
            if f.asserted_null && f.known_not_null() {
                self.unsat = true;
                return;
            }
            if let (Some(lo), Some(hi)) = (&f.lower, &f.upper) {
                match lo.value.sql_cmp(&hi.value) {
                    Some(Ordering::Greater) => {
                        self.unsat = true;
                        return;
                    }
                    Some(Ordering::Equal) if !(lo.inclusive && hi.inclusive) => {
                        self.unsat = true;
                        return;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Does this summary entail the (normalized) atom `q`?
    fn entails(&self, q: &ScalarExpr) -> bool {
        if self.unsat {
            return true;
        }
        match q {
            ScalarExpr::Literal(Value::Bool(true)) => true,
            ScalarExpr::Binary { op, lhs, rhs } if op.is_comparison() => {
                let (col, val) = match (lhs.as_column(), rhs.as_literal()) {
                    (Some(c), Some(v)) => (c, v),
                    _ => return false,
                };
                if val.is_null() {
                    return false;
                }
                let Some(f) = self.columns.get(col) else {
                    return false;
                };
                self.entails_cmp(f, *op, val)
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let Some(f) = expr.as_column().and_then(|c| self.columns.get(c)) else {
                    return false;
                };
                self.entails_like(f, pattern, *negated)
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                let Some(f) = expr.as_column().and_then(|c| self.columns.get(c)) else {
                    return false;
                };
                self.entails_in(f, list, *negated)
            }
            ScalarExpr::IsNull { expr, negated } => {
                let Some(f) = expr.as_column().and_then(|c| self.columns.get(c)) else {
                    return false;
                };
                if *negated {
                    f.known_not_null()
                } else {
                    f.asserted_null
                }
            }
            _ => false,
        }
    }

    fn entails_cmp(&self, f: &ColumnFacts, op: BinaryOp, val: &Value) -> bool {
        if let Some(eq) = &f.eq {
            return value_cmp_holds(eq, op, val).unwrap_or(false);
        }
        if let Some(allowed) = &f.allowed {
            return allowed
                .iter()
                .all(|v| value_cmp_holds(v, op, val).unwrap_or(false));
        }
        match op {
            BinaryOp::Gt => lower_entails(&f.lower, val, false),
            BinaryOp::GtEq => lower_entails(&f.lower, val, true),
            BinaryOp::Lt => upper_entails(&f.upper, val, false),
            BinaryOp::LtEq => upper_entails(&f.upper, val, true),
            BinaryOp::Eq => false, // needs an equality fact, handled above
            BinaryOp::NotEq => {
                f.neq
                    .iter()
                    .any(|v| v.sql_cmp(val) == Some(Ordering::Equal))
                    || value_outside_interval(f, val)
            }
            _ => false,
        }
    }

    fn entails_like(&self, f: &ColumnFacts, pattern: &str, negated: bool) -> bool {
        let value_check = |v: &Value| {
            v.as_str()
                .map(|s| like_match(pattern, s) != negated)
                .unwrap_or(false)
        };
        if let Some(eq) = &f.eq {
            return value_check(eq);
        }
        if let Some(allowed) = &f.allowed {
            return allowed.iter().all(value_check);
        }
        if negated {
            f.not_likes.iter().any(|p| p == pattern)
        } else {
            f.likes.iter().any(|p| {
                if p == pattern {
                    return true;
                }
                // 'ABCD%' ⟹ 'ABC%' (longer prefix implies shorter).
                match (prefix_of_pattern(p), prefix_of_pattern(pattern)) {
                    (Some(fact), Some(query)) => fact.starts_with(query),
                    _ => false,
                }
            })
        }
    }

    fn entails_in(&self, f: &ColumnFacts, list: &[Value], negated: bool) -> bool {
        let in_list = |v: &Value| list.iter().any(|c| c.sql_cmp(v) == Some(Ordering::Equal));
        if let Some(eq) = &f.eq {
            return in_list(eq) != negated;
        }
        if let Some(allowed) = &f.allowed {
            return if negated {
                allowed.iter().all(|v| !in_list(v))
            } else {
                allowed.iter().all(in_list)
            };
        }
        if negated {
            // Every listed value must be excluded by a known fact.
            list.iter().all(|v| {
                f.neq.iter().any(|n| n.sql_cmp(v) == Some(Ordering::Equal))
                    || value_outside_interval(f, v)
            })
        } else {
            false
        }
    }
}

fn tighten_lower(f: &mut ColumnFacts, value: Value, inclusive: bool) {
    let replace = match &f.lower {
        None => true,
        Some(b) => match value.sql_cmp(&b.value) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => b.inclusive && !inclusive,
            _ => false,
        },
    };
    if replace {
        f.lower = Some(Bound { value, inclusive });
    }
}

fn tighten_upper(f: &mut ColumnFacts, value: Value, inclusive: bool) {
    let replace = match &f.upper {
        None => true,
        Some(b) => match value.sql_cmp(&b.value) {
            Some(Ordering::Less) => true,
            Some(Ordering::Equal) => b.inclusive && !inclusive,
            _ => false,
        },
    };
    if replace {
        f.upper = Some(Bound { value, inclusive });
    }
}

/// Does the known lower bound entail `col > val` (`or_equal=false`) or
/// `col >= val` (`or_equal=true`)?
fn lower_entails(lower: &Option<Bound>, val: &Value, or_equal: bool) -> bool {
    match lower {
        None => false,
        Some(b) => match b.value.sql_cmp(val) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => or_equal || !b.inclusive,
            _ => false,
        },
    }
}

fn upper_entails(upper: &Option<Bound>, val: &Value, or_equal: bool) -> bool {
    match upper {
        None => false,
        Some(b) => match b.value.sql_cmp(val) {
            Some(Ordering::Less) => true,
            Some(Ordering::Equal) => or_equal || !b.inclusive,
            _ => false,
        },
    }
}

/// Would value `v` be rejected by the column's interval facts?
fn value_outside_interval(f: &ColumnFacts, v: &Value) -> bool {
    let below = match &f.lower {
        Some(b) => match v.sql_cmp(&b.value) {
            Some(Ordering::Less) => true,
            Some(Ordering::Equal) => !b.inclusive,
            _ => false,
        },
        None => false,
    };
    let above = match &f.upper {
        Some(b) => match v.sql_cmp(&b.value) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => !b.inclusive,
            _ => false,
        },
        None => false,
    };
    below || above
}

/// Does a bound admit a specific value? (`is_lower` selects direction.)
fn bound_admits(bound: &Option<Bound>, v: &Value, is_lower: bool) -> bool {
    match bound {
        None => true,
        Some(b) => match v.sql_cmp(&b.value) {
            None => false,
            Some(Ordering::Equal) => b.inclusive,
            Some(Ordering::Greater) => is_lower,
            Some(Ordering::Less) => !is_lower,
        },
    }
}

/// Evaluate `v op val` for concrete scalars; `None` when incomparable.
fn value_cmp_holds(v: &Value, op: BinaryOp, val: &Value) -> Option<bool> {
    let ord = v.sql_cmp(val)?;
    Some(match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: &str) -> ScalarExpr {
        ScalarExpr::col(n)
    }
    fn int(v: i64) -> ScalarExpr {
        ScalarExpr::lit(v)
    }

    #[test]
    fn reflexive() {
        let p = col("a").gt(int(5));
        assert!(implies(&p, &p));
    }

    #[test]
    fn interval_strengthening() {
        assert!(implies(&col("b").gt(int(15)), &col("b").gt(int(10))));
        assert!(implies(&col("b").gt(int(10)), &col("b").gt_eq(int(10))));
        assert!(implies(&col("b").gt_eq(int(11)), &col("b").gt(int(10))));
        assert!(!implies(&col("b").gt_eq(int(10)), &col("b").gt(int(10))));
        assert!(!implies(&col("b").gt(int(5)), &col("b").gt(int(10))));
        assert!(implies(&col("b").lt(int(3)), &col("b").lt_eq(int(5))));
    }

    #[test]
    fn paper_example_e3_q1() {
        // Table 1: query predicate B > 15 implies expression predicate B > 10.
        assert!(implies(&col("B").gt(int(15)), &col("B").gt(int(10))));
    }

    #[test]
    fn equality_implies_everything_it_satisfies() {
        let p = col("a").eq(int(7));
        assert!(implies(&p, &col("a").gt(int(5))));
        assert!(implies(&p, &col("a").lt_eq(int(7))));
        assert!(implies(&p, &col("a").not_eq(int(9))));
        assert!(implies(
            &p,
            &col("a").in_list(vec![Value::Int64(7), Value::Int64(8)])
        ));
        assert!(!implies(&p, &col("a").gt(int(7))));
    }

    #[test]
    fn conjunction_on_both_sides() {
        let p = col("a").eq(int(1)).and(col("b").gt(int(20)));
        let q = col("b").gt(int(10)).and(col("a").lt(int(5)));
        assert!(implies(&p, &q));
        assert!(!implies(&q, &p));
    }

    #[test]
    fn disjunctive_antecedent_requires_both() {
        let p = col("a").eq(int(1)).or(col("a").eq(int(2)));
        assert!(implies(&p, &col("a").lt(int(5))));
        assert!(!implies(&p, &col("a").eq(int(1))));
    }

    #[test]
    fn disjunctive_consequent_any_branch() {
        // Table 3 e4: size > 40 OR type LIKE '%COPPER%'.
        let q = col("size").gt(int(40)).or(col("type").like("%COPPER%"));
        assert!(implies(&col("size").gt(int(50)), &q));
        assert!(implies(&col("type").like("%COPPER%"), &q));
        assert!(!implies(&col("size").gt(int(30)), &q));
    }

    #[test]
    fn like_reasoning() {
        let p = col("mktseg").like("commercial");
        assert!(implies(
            &p,
            &col("mktseg").eq(ScalarExpr::lit("commercial"))
        ));
        let p = col("name").like("ABCD%");
        assert!(implies(&p, &col("name").like("ABC%")));
        assert!(!implies(
            &col("name").like("ABC%"),
            &col("name").like("ABCD%")
        ));
        let p = col("s").eq(ScalarExpr::lit("PROMO BRASS"));
        assert!(implies(&p, &col("s").like("PROMO%")));
        assert!(implies(&p, &col("s").not_like("STANDARD%")));
    }

    #[test]
    fn in_list_reasoning() {
        let p = col("r").in_list(vec![Value::str("EUROPE"), Value::str("ASIA")]);
        let q = col("r").in_list(vec![
            Value::str("EUROPE"),
            Value::str("ASIA"),
            Value::str("AFRICA"),
        ]);
        assert!(implies(&p, &q));
        assert!(!implies(&q, &p));
        assert!(implies(&col("r").eq(ScalarExpr::lit("EUROPE")), &q));
        // Singleton IN behaves as equality.
        let p = col("r").in_list(vec![Value::str("EUROPE")]);
        assert!(implies(&p, &col("r").eq(ScalarExpr::lit("EUROPE"))));
    }

    #[test]
    fn not_null_from_comparisons() {
        let q = ScalarExpr::IsNull {
            expr: Box::new(col("a")),
            negated: true,
        };
        assert!(implies(&col("a").gt(int(1)), &q));
        assert!(!implies(&col("b").gt(int(1)), &q));
    }

    #[test]
    fn unsatisfiable_antecedent_implies_anything() {
        let p = col("a").eq(int(1)).and(col("a").eq(int(2)));
        assert!(implies(&p, &col("zz").like("%anything%")));
        let p = col("a").gt(int(10)).and(col("a").lt(int(5)));
        assert!(implies(&p, &col("b").eq(int(0))));
        let p = ScalarExpr::lit(false);
        assert!(implies(&p, &col("b").eq(int(0))));
    }

    #[test]
    fn incomplete_on_arithmetic_as_in_paper() {
        // Section 5 discussion: (A = 5 AND B = 3) ⟹ A + B = 8 is not proven.
        let p = col("A").eq(int(5)).and(col("B").eq(int(3)));
        let q = col("A").add(col("B")).eq(int(8));
        assert!(!implies(&p, &q));
    }

    #[test]
    fn column_column_atoms_by_syntactic_membership() {
        let join = col("x").eq(col("y"));
        let p = join.clone().and(col("x").gt(int(0)));
        assert!(implies(&p, &join));
        assert!(!implies(&col("x").gt(int(0)), &join));
    }

    #[test]
    fn true_antecedent_only_implies_trivialities() {
        assert!(implies_opt(None, None));
        assert!(implies_opt(Some(&col("a").gt(int(1))), None));
        assert!(!implies_opt(None, Some(&col("a").gt(int(1)))));
        assert!(implies_opt(None, Some(&ScalarExpr::lit(true))));
    }

    #[test]
    fn between_desugaring_feeds_prover() {
        let p = col("a").between(int(10), int(20));
        assert!(implies(&p, &col("a").gt_eq(int(10))));
        assert!(implies(&p, &col("a").lt_eq(int(25))));
        assert!(!implies(&p, &col("a").gt(int(10))));
        let q = col("a").between(int(5), int(30));
        assert!(implies(&p, &q));
        assert!(!implies(&q, &p));
    }

    #[test]
    fn negated_between() {
        let p = col("a").lt(int(1));
        let q = ScalarExpr::Between {
            expr: Box::new(col("a")),
            low: Box::new(int(5)),
            high: Box::new(int(10)),
            negated: true,
        };
        assert!(implies(&p, &q));
    }

    #[test]
    fn not_pushdown_via_normalization() {
        let p = col("a").lt_eq(int(10)).not(); // a > 10
        assert!(implies(&p, &col("a").gt(int(5))));
    }

    #[test]
    fn neq_from_interval() {
        assert!(implies(&col("a").gt(int(10)), &col("a").not_eq(int(3))));
        assert!(implies(&col("a").lt(int(0)), &col("a").not_eq(int(0))));
        assert!(!implies(&col("a").gt(int(10)), &col("a").not_eq(int(11))));
    }

    #[test]
    fn not_in_entailment() {
        let p = col("a").gt(int(100));
        let q = col("a").in_list(vec![Value::Int64(1), Value::Int64(2)]);
        let q = match q {
            ScalarExpr::InList { expr, list, .. } => ScalarExpr::InList {
                expr,
                list,
                negated: true,
            },
            _ => unreachable!(),
        };
        assert!(implies(&p, &q));
    }

    #[test]
    fn cross_type_numeric_bounds() {
        assert!(implies(
            &col("a").gt(ScalarExpr::lit(10.5)),
            &col("a").gt(int(10))
        ));
        assert!(!implies(
            &col("a").gt(int(10)),
            &col("a").gt(ScalarExpr::lit(10.5))
        ));
    }

    #[test]
    fn date_bounds() {
        let d1995 = ScalarExpr::lit(Value::date(1995, 1, 1));
        let d1996 = ScalarExpr::lit(Value::date(1996, 1, 1));
        assert!(implies(
            &col("d").lt(d1995.clone()),
            &col("d").lt(d1996.clone())
        ));
        assert!(!implies(&col("d").lt(d1996), &col("d").lt(d1995)));
    }
}
