#![allow(clippy::should_implement_trait)]

//! # geoqp-expr
//!
//! Scalar expression language for the `geoqp` workspace: construction,
//! type derivation, SQL-semantics evaluation, predicate utilities, and the
//! **logical implication prover** that Algorithm 1's `P_q ⟹ P_e` test
//! (paper Section 5) relies on.
//!
//! The prover follows the approach of Goldstein & Larson's materialized-view
//! matching: sound, efficient, and deliberately incomplete on arithmetic
//! combinations (`A + B = 8`), exactly as the paper's Discussion in
//! Section 5 describes.

pub mod agg;
pub mod eval;
pub mod expr;
pub mod implication;
pub mod like;
pub mod normalize;
pub mod predicate;

pub use agg::{AggCall, AggFunc};
pub use eval::{apply_cmp, as_tv, bind, eval_arith, BoundExpr};
pub use expr::{BinaryOp, ScalarExpr, UnaryOp};
pub use implication::implies;
pub use like::like_match;
pub use predicate::{columns_of, conjoin, split_conjunction};
