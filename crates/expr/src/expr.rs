//! The scalar expression tree.

use geoqp_common::{DataType, GeoError, Result, Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// True for `+`, `-`, `*`, `/`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div
        )
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }

    /// The logical negation of a comparison (`<` ⇔ `>=`).
    pub fn negate_comparison(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::NotEq,
            BinaryOp::NotEq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::GtEq,
            BinaryOp::LtEq => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::LtEq,
            BinaryOp::GtEq => BinaryOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical `NOT`.
    Not,
    /// Numeric negation.
    Neg,
}

/// A scalar expression over named columns.
///
/// Columns are referenced by name and resolved against the input schema at
/// bind time ([`crate::eval::bind`]). Names stay stable under the plan
/// rewrites the optimizer performs, which keeps transformation rules simple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarExpr {
    /// A column reference by name.
    Column(String),
    /// A constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<ScalarExpr>,
    },
    /// SQL `LIKE` with `%`/`_` wildcards.
    Like {
        /// The matched expression (string-typed).
        expr: Box<ScalarExpr>,
        /// The pattern literal.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// SQL `IN (v1, v2, ...)` over constant lists.
    InList {
        /// The tested expression.
        expr: Box<ScalarExpr>,
        /// Constant candidates.
        list: Vec<Value>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// SQL `BETWEEN low AND high` (inclusive).
    Between {
        /// The tested expression.
        expr: Box<ScalarExpr>,
        /// Lower bound.
        low: Box<ScalarExpr>,
        /// Upper bound.
        high: Box<ScalarExpr>,
        /// `NOT BETWEEN` when true.
        negated: bool,
    },
    /// `IS NULL` / `IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<ScalarExpr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
}

impl ScalarExpr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Column(name.into())
    }

    /// Literal constant.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    /// Build a binary expression.
    pub fn binary(op: BinaryOp, lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self = rhs`
    pub fn eq(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Eq, self, rhs)
    }
    /// `self <> rhs`
    pub fn not_eq(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::NotEq, self, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Lt, self, rhs)
    }
    /// `self <= rhs`
    pub fn lt_eq(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::LtEq, self, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Gt, self, rhs)
    }
    /// `self >= rhs`
    pub fn gt_eq(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::GtEq, self, rhs)
    }
    /// `self AND rhs`
    pub fn and(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::And, self, rhs)
    }
    /// `self OR rhs`
    pub fn or(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Or, self, rhs)
    }
    /// `self + rhs`
    pub fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Add, self, rhs)
    }
    /// `self - rhs`
    pub fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Sub, self, rhs)
    }
    /// `self * rhs`
    pub fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Mul, self, rhs)
    }
    /// `self / rhs`
    pub fn div(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Div, self, rhs)
    }
    /// `NOT self`
    pub fn not(self) -> ScalarExpr {
        ScalarExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(self),
        }
    }
    /// `self LIKE pattern`
    pub fn like(self, pattern: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: false,
        }
    }
    /// `self NOT LIKE pattern`
    pub fn not_like(self, pattern: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: true,
        }
    }
    /// `self IN (list...)`
    pub fn in_list(self, list: Vec<Value>) -> ScalarExpr {
        ScalarExpr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }
    /// `self BETWEEN low AND high`
    pub fn between(self, low: ScalarExpr, high: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Between {
            expr: Box::new(self),
            low: Box::new(low),
            high: Box::new(high),
            negated: false,
        }
    }
    /// `self IS NULL`
    pub fn is_null(self) -> ScalarExpr {
        ScalarExpr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }

    /// The column name, when the expression is a bare column reference.
    pub fn as_column(&self) -> Option<&str> {
        match self {
            ScalarExpr::Column(n) => Some(n),
            _ => None,
        }
    }

    /// The constant, when the expression is a literal.
    pub fn as_literal(&self) -> Option<&Value> {
        match self {
            ScalarExpr::Literal(v) => Some(v),
            _ => None,
        }
    }

    /// Collect the set of column names referenced anywhere in the tree.
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            ScalarExpr::Column(n) => {
                out.insert(n.clone());
            }
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            ScalarExpr::Unary { expr, .. }
            | ScalarExpr::Like { expr, .. }
            | ScalarExpr::InList { expr, .. }
            | ScalarExpr::IsNull { expr, .. } => expr.collect_columns(out),
            ScalarExpr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
        }
    }

    /// Rewrite every column reference through `f` (used when pushing
    /// expressions through projections that rename columns).
    pub fn rename_columns(&self, f: &impl Fn(&str) -> String) -> ScalarExpr {
        match self {
            ScalarExpr::Column(n) => ScalarExpr::Column(f(n)),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Binary { op, lhs, rhs } => ScalarExpr::Binary {
                op: *op,
                lhs: Box::new(lhs.rename_columns(f)),
                rhs: Box::new(rhs.rename_columns(f)),
            },
            ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
                op: *op,
                expr: Box::new(expr.rename_columns(f)),
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => ScalarExpr::Like {
                expr: Box::new(expr.rename_columns(f)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.rename_columns(f)),
                list: list.clone(),
                negated: *negated,
            },
            ScalarExpr::Between {
                expr,
                low,
                high,
                negated,
            } => ScalarExpr::Between {
                expr: Box::new(expr.rename_columns(f)),
                low: Box::new(low.rename_columns(f)),
                high: Box::new(high.rename_columns(f)),
                negated: *negated,
            },
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.rename_columns(f)),
                negated: *negated,
            },
        }
    }

    /// Derive the result type against an input schema, validating column
    /// references and operand types along the way.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            ScalarExpr::Column(n) => {
                let f = schema
                    .field_by_name(n)
                    .ok_or_else(|| GeoError::Plan(format!("unknown column `{n}`")))?;
                Ok(f.data_type)
            }
            // A NULL literal types as Int64 by convention; evaluation is
            // unaffected because NULL propagates dynamically.
            ScalarExpr::Literal(v) => Ok(v.data_type().unwrap_or(DataType::Int64)),
            ScalarExpr::Binary { op, lhs, rhs } => {
                let lt = lhs.data_type(schema)?;
                let rt = rhs.data_type(schema)?;
                if op.is_arithmetic() {
                    lt.arithmetic_result(rt).ok_or_else(|| {
                        GeoError::Plan(format!("cannot apply {op} to {lt} and {rt}"))
                    })
                } else if op.is_comparison() {
                    if lt.comparable_with(rt) {
                        Ok(DataType::Bool)
                    } else {
                        Err(GeoError::Plan(format!(
                            "cannot compare {lt} with {rt} (in {self})"
                        )))
                    }
                } else {
                    // AND / OR
                    if lt == DataType::Bool && rt == DataType::Bool {
                        Ok(DataType::Bool)
                    } else {
                        Err(GeoError::Plan(format!(
                            "{op} requires boolean operands, got {lt} and {rt}"
                        )))
                    }
                }
            }
            ScalarExpr::Unary { op, expr } => {
                let t = expr.data_type(schema)?;
                match op {
                    UnaryOp::Not if t == DataType::Bool => Ok(DataType::Bool),
                    UnaryOp::Neg if t.is_numeric() => Ok(t),
                    _ => Err(GeoError::Plan(format!("cannot apply {op:?} to {t}"))),
                }
            }
            ScalarExpr::Like { expr, .. } => {
                let t = expr.data_type(schema)?;
                if t == DataType::Str {
                    Ok(DataType::Bool)
                } else {
                    Err(GeoError::Plan(format!("LIKE requires VARCHAR, got {t}")))
                }
            }
            ScalarExpr::InList { expr, .. } => {
                expr.data_type(schema)?;
                Ok(DataType::Bool)
            }
            ScalarExpr::Between {
                expr, low, high, ..
            } => {
                let t = expr.data_type(schema)?;
                let lt = low.data_type(schema)?;
                let ht = high.data_type(schema)?;
                if t.comparable_with(lt) && t.comparable_with(ht) {
                    Ok(DataType::Bool)
                } else {
                    Err(GeoError::Plan(format!(
                        "BETWEEN bounds incomparable with operand: {t} vs {lt}/{ht}"
                    )))
                }
            }
            ScalarExpr::IsNull { expr, .. } => {
                expr.data_type(schema)?;
                Ok(DataType::Bool)
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(n) => f.write_str(n),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT ({expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE '{pattern}')",
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            ScalarExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("s", DataType::Str),
            Field::new("d", DataType::Date),
            Field::new("flag", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn referenced_columns_deduplicates() {
        let e = ScalarExpr::col("a")
            .gt(ScalarExpr::lit(5i64))
            .and(ScalarExpr::col("a").lt(ScalarExpr::col("b")));
        let cols = e.referenced_columns();
        assert_eq!(
            cols.into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn type_derivation_arithmetic_promotion() {
        let s = schema();
        let e = ScalarExpr::col("a").add(ScalarExpr::col("b"));
        assert_eq!(e.data_type(&s).unwrap(), DataType::Float64);
        let e = ScalarExpr::col("a").mul(ScalarExpr::lit(2i64));
        assert_eq!(e.data_type(&s).unwrap(), DataType::Int64);
    }

    #[test]
    fn type_derivation_rejects_bad_operands() {
        let s = schema();
        assert!(ScalarExpr::col("s")
            .add(ScalarExpr::lit(1i64))
            .data_type(&s)
            .is_err());
        assert!(ScalarExpr::col("a")
            .and(ScalarExpr::col("flag"))
            .data_type(&s)
            .is_err());
        assert!(ScalarExpr::col("a").like("%x%").data_type(&s).is_err());
        assert!(ScalarExpr::col("nope").data_type(&s).is_err());
    }

    #[test]
    fn comparisons_type_as_bool() {
        let s = schema();
        assert_eq!(
            ScalarExpr::col("d")
                .lt(ScalarExpr::lit(Value::date(1995, 1, 1)))
                .data_type(&s)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            ScalarExpr::col("s").like("A%").data_type(&s).unwrap(),
            DataType::Bool
        );
    }

    #[test]
    fn rename_columns_rewrites_all_references() {
        let e = ScalarExpr::col("x").gt(ScalarExpr::col("y").add(ScalarExpr::lit(1i64)));
        let renamed = e.rename_columns(&|n| format!("t_{n}"));
        assert_eq!(
            renamed.referenced_columns().into_iter().collect::<Vec<_>>(),
            vec!["t_x".to_string(), "t_y".to_string()]
        );
    }

    #[test]
    fn display_is_readable() {
        let e = ScalarExpr::col("size")
            .gt(ScalarExpr::lit(40i64))
            .or(ScalarExpr::col("type").like("%COPPER%"));
        assert_eq!(e.to_string(), "((size > 40) OR (type LIKE '%COPPER%'))");
    }

    #[test]
    fn op_flip_and_negate() {
        assert_eq!(BinaryOp::Lt.flip(), BinaryOp::Gt);
        assert_eq!(BinaryOp::GtEq.flip(), BinaryOp::LtEq);
        assert_eq!(BinaryOp::Eq.flip(), BinaryOp::Eq);
        assert_eq!(BinaryOp::Lt.negate_comparison(), Some(BinaryOp::GtEq));
        assert_eq!(BinaryOp::And.negate_comparison(), None);
    }
}
