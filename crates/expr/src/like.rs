//! SQL `LIKE` pattern matching.

/// Match `text` against a SQL `LIKE` pattern where `%` matches any sequence
/// (including empty) and `_` matches exactly one character. Matching is
/// case-sensitive, as in standard SQL.
///
/// Implemented with the classic two-pointer greedy algorithm with
/// backtracking over the last `%`, which runs in O(n·m) worst case but
/// linear time on typical patterns.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut star_ti = 0usize;

    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if let Some(sp) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// True when the pattern contains no wildcards, i.e. behaves as equality.
pub fn is_exact_pattern(pattern: &str) -> bool {
    !pattern.contains('%') && !pattern.contains('_')
}

/// If the pattern is a pure prefix pattern (`abc%`), return the prefix.
pub fn prefix_of_pattern(pattern: &str) -> Option<&str> {
    let stripped = pattern.strip_suffix('%')?;
    is_exact_pattern(stripped).then_some(stripped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_matches_any_run() {
        assert!(like_match("%COPPER%", "STANDARD POLISHED COPPER"));
        assert!(like_match("%COPPER%", "COPPER"));
        assert!(!like_match("%COPPER%", "STANDARD POLISHED BRASS"));
    }

    #[test]
    fn underscore_matches_one() {
        assert!(like_match("A_C", "ABC"));
        assert!(!like_match("A_C", "AC"));
        assert!(!like_match("A_C", "ABBC"));
    }

    #[test]
    fn prefix_patterns() {
        assert!(like_match("A%", "Anna"));
        assert!(like_match("A%", "A"));
        assert!(!like_match("A%", "banana"));
    }

    #[test]
    fn exact_when_no_wildcards() {
        assert!(like_match("hello", "hello"));
        assert!(!like_match("hello", "hello!"));
        assert!(is_exact_pattern("hello"));
        assert!(!is_exact_pattern("he%o"));
    }

    #[test]
    fn empty_cases() {
        assert!(like_match("", ""));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        assert!(!like_match("", "x"));
    }

    #[test]
    fn backtracking_patterns() {
        assert!(like_match("%a%b%", "xaxxbx"));
        assert!(like_match("%ab%ab%", "abab"));
        assert!(!like_match("%ab%ab%", "ab"));
        assert!(like_match("a%%%b", "ab"));
    }

    #[test]
    fn prefix_extraction() {
        assert_eq!(prefix_of_pattern("PROMO%"), Some("PROMO"));
        assert_eq!(prefix_of_pattern("%PROMO"), None);
        assert_eq!(prefix_of_pattern("PRO_O%"), None);
        assert_eq!(prefix_of_pattern("exact"), None);
    }
}
