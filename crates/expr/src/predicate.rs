//! Predicate manipulation utilities shared by the optimizer and the policy
//! evaluator: conjunction splitting/joining and column extraction.

use crate::expr::{BinaryOp, ScalarExpr};
use std::collections::BTreeSet;

/// Split a predicate into its top-level conjuncts:
/// `a AND (b AND c)` → `[a, b, c]`.
pub fn split_conjunction(pred: &ScalarExpr) -> Vec<&ScalarExpr> {
    let mut out = Vec::new();
    collect_conjuncts(pred, &mut out);
    out
}

fn collect_conjuncts<'a>(pred: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
    match pred {
        ScalarExpr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } => {
            collect_conjuncts(lhs, out);
            collect_conjuncts(rhs, out);
        }
        other => out.push(other),
    }
}

/// Combine predicates with AND; `None` when the input is empty
/// (the always-true predicate).
pub fn conjoin(preds: impl IntoIterator<Item = ScalarExpr>) -> Option<ScalarExpr> {
    preds.into_iter().reduce(|a, b| a.and(b))
}

/// Combine predicates with OR; `None` when empty (the always-false
/// predicate in a disjunctive context).
pub fn disjoin(preds: impl IntoIterator<Item = ScalarExpr>) -> Option<ScalarExpr> {
    preds.into_iter().reduce(|a, b| a.or(b))
}

/// The set of columns referenced by an optional predicate.
pub fn columns_of(pred: Option<&ScalarExpr>) -> BTreeSet<String> {
    pred.map(ScalarExpr::referenced_columns).unwrap_or_default()
}

/// Partition conjuncts into those fully covered by `available` columns and
/// the rest. The core move behind filter pushdown through joins.
pub fn partition_conjuncts(
    pred: &ScalarExpr,
    available: &BTreeSet<String>,
) -> (Vec<ScalarExpr>, Vec<ScalarExpr>) {
    let mut covered = Vec::new();
    let mut rest = Vec::new();
    for c in split_conjunction(pred) {
        if c.referenced_columns().is_subset(available) {
            covered.push(c.clone());
        } else {
            rest.push(c.clone());
        }
    }
    (covered, rest)
}

/// Recognize an equi-join conjunct `left_col = right_col` where the two
/// columns come from different sides. Returns `(left, right)` ordered by
/// membership in `left_cols`.
pub fn as_equi_join(
    conjunct: &ScalarExpr,
    left_cols: &BTreeSet<String>,
    right_cols: &BTreeSet<String>,
) -> Option<(String, String)> {
    if let ScalarExpr::Binary {
        op: BinaryOp::Eq,
        lhs,
        rhs,
    } = conjunct
    {
        let (a, b) = (lhs.as_column()?, rhs.as_column()?);
        if left_cols.contains(a) && right_cols.contains(b) {
            return Some((a.to_string(), b.to_string()));
        }
        if left_cols.contains(b) && right_cols.contains(a) {
            return Some((b.to_string(), a.to_string()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn split_nested_conjunction() {
        let p = ScalarExpr::col("a").gt(ScalarExpr::lit(1i64)).and(
            ScalarExpr::col("b")
                .eq(ScalarExpr::lit(2i64))
                .and(ScalarExpr::col("c").lt(ScalarExpr::lit(3i64))),
        );
        assert_eq!(split_conjunction(&p).len(), 3);
    }

    #[test]
    fn split_does_not_cross_or() {
        let p = ScalarExpr::col("a")
            .gt(ScalarExpr::lit(1i64))
            .or(ScalarExpr::col("b").eq(ScalarExpr::lit(2i64)));
        assert_eq!(split_conjunction(&p).len(), 1);
    }

    #[test]
    fn conjoin_round_trip() {
        let parts = vec![
            ScalarExpr::col("a").gt(ScalarExpr::lit(1i64)),
            ScalarExpr::col("b").lt(ScalarExpr::lit(2i64)),
        ];
        let joined = conjoin(parts.clone()).unwrap();
        let back: Vec<_> = split_conjunction(&joined).into_iter().cloned().collect();
        assert_eq!(back, parts);
        assert!(conjoin(Vec::new()).is_none());
    }

    #[test]
    fn partition_by_available_columns() {
        let p = ScalarExpr::col("a")
            .gt(ScalarExpr::lit(1i64))
            .and(ScalarExpr::col("x").eq(ScalarExpr::col("a")))
            .and(ScalarExpr::col("b").lt(ScalarExpr::lit(5i64)));
        let (covered, rest) = partition_conjuncts(&p, &cols(&["a", "b"]));
        assert_eq!(covered.len(), 2);
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn equi_join_recognition() {
        let left = cols(&["c_custkey", "c_name"]);
        let right = cols(&["o_custkey", "o_orderkey"]);
        let c = ScalarExpr::col("c_custkey").eq(ScalarExpr::col("o_custkey"));
        assert_eq!(
            as_equi_join(&c, &left, &right),
            Some(("c_custkey".into(), "o_custkey".into()))
        );
        // Reversed operand order still resolves sides correctly.
        let c = ScalarExpr::col("o_custkey").eq(ScalarExpr::col("c_custkey"));
        assert_eq!(
            as_equi_join(&c, &left, &right),
            Some(("c_custkey".into(), "o_custkey".into()))
        );
        // Same-side equality is not a join predicate.
        let c = ScalarExpr::col("c_custkey").eq(ScalarExpr::col("c_name"));
        assert_eq!(as_equi_join(&c, &left, &right), None);
        // Non-equality is not an equi-join conjunct.
        let c = ScalarExpr::col("c_custkey").lt(ScalarExpr::col("o_custkey"));
        assert_eq!(as_equi_join(&c, &left, &right), None);
    }
}
