//! Aggregate functions and aggregate calls.

use crate::expr::ScalarExpr;
use geoqp_common::{DataType, GeoError, Result, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The aggregation functions supported by queries and by the `as aggregates`
/// clause of aggregate policy expressions (paper Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `COUNT`
    Count,
}

impl AggFunc {
    /// Parse a function name, case-insensitively.
    pub fn parse(s: &str) -> Option<AggFunc> {
        match s.to_ascii_lowercase().as_str() {
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "count" => Some(AggFunc::Count),
            _ => None,
        }
    }

    /// Result type given the input type.
    pub fn result_type(self, input: DataType) -> Result<DataType> {
        match self {
            AggFunc::Count => Ok(DataType::Int64),
            AggFunc::Sum => {
                if input.is_numeric() {
                    Ok(input)
                } else {
                    Err(GeoError::Plan(format!(
                        "SUM requires numeric input, got {input}"
                    )))
                }
            }
            AggFunc::Avg => {
                if input.is_numeric() {
                    Ok(DataType::Float64)
                } else {
                    Err(GeoError::Plan(format!(
                        "AVG requires numeric input, got {input}"
                    )))
                }
            }
            AggFunc::Min | AggFunc::Max => {
                if input.is_ordered() {
                    Ok(input)
                } else {
                    Err(GeoError::Plan(format!(
                        "MIN/MAX require ordered input, got {input}"
                    )))
                }
            }
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Count => "COUNT",
        };
        f.write_str(s)
    }
}

/// An aggregate call `FUNC(arg)` with an output alias, as it appears in an
/// `Aggregate` plan node. `COUNT(*)` is modelled with
/// `arg = None`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggCall {
    /// The function.
    pub func: AggFunc,
    /// Argument expression; `None` means `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    /// Output column name.
    pub alias: String,
}

impl AggCall {
    /// `FUNC(expr) AS alias`
    pub fn new(func: AggFunc, arg: ScalarExpr, alias: impl Into<String>) -> AggCall {
        AggCall {
            func,
            arg: Some(arg),
            alias: alias.into(),
        }
    }

    /// `COUNT(*) AS alias`
    pub fn count_star(alias: impl Into<String>) -> AggCall {
        AggCall {
            func: AggFunc::Count,
            arg: None,
            alias: alias.into(),
        }
    }

    /// Result type against an input schema.
    pub fn result_type(&self, schema: &Schema) -> Result<DataType> {
        match &self.arg {
            None => Ok(DataType::Int64),
            Some(e) => self.func.result_type(e.data_type(schema)?),
        }
    }

    /// The single column this call aggregates, when its argument is a bare
    /// column reference — the case the policy evaluator's attribute-wise
    /// matching reasons about (`f_a` in Algorithm 1).
    pub fn aggregated_column(&self) -> Option<&str> {
        self.arg.as_ref().and_then(ScalarExpr::as_column)
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*) AS {}", self.func, self.alias),
            Some(e) => write!(f, "{}({e}) AS {}", self.func, self.alias),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::Field;

    #[test]
    fn parse_names() {
        assert_eq!(AggFunc::parse("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
    }

    #[test]
    fn result_types() {
        assert_eq!(
            AggFunc::Sum.result_type(DataType::Int64).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggFunc::Avg.result_type(DataType::Int64).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggFunc::Min.result_type(DataType::Str).unwrap(),
            DataType::Str
        );
        assert_eq!(
            AggFunc::Count.result_type(DataType::Str).unwrap(),
            DataType::Int64
        );
        assert!(AggFunc::Sum.result_type(DataType::Str).is_err());
        assert!(AggFunc::Min.result_type(DataType::Bool).is_err());
    }

    #[test]
    fn call_result_type_and_column() {
        let schema = Schema::new(vec![Field::new("qty", DataType::Int64)]).unwrap();
        let call = AggCall::new(AggFunc::Sum, ScalarExpr::col("qty"), "total");
        assert_eq!(call.result_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(call.aggregated_column(), Some("qty"));
        let star = AggCall::count_star("n");
        assert_eq!(star.result_type(&schema).unwrap(), DataType::Int64);
        assert_eq!(star.aggregated_column(), None);
    }

    #[test]
    fn display() {
        let call = AggCall::new(AggFunc::Sum, ScalarExpr::col("q"), "sq");
        assert_eq!(call.to_string(), "SUM(q) AS sq");
        assert_eq!(AggCall::count_star("n").to_string(), "COUNT(*) AS n");
    }
}
