//! Expression binding and SQL-semantics evaluation.
//!
//! Expressions reference columns by name; [`bind`] compiles an expression
//! against a concrete input [`Schema`] into a [`BoundExpr`] whose column
//! references are positional. The executor binds once per operator and then
//! evaluates per row without any name lookups on the hot path.

use crate::expr::{BinaryOp, ScalarExpr, UnaryOp};
use crate::like::like_match;
use geoqp_common::{GeoError, Result, Row, Schema, Value};
use std::cmp::Ordering;

/// A scalar expression with column references resolved to row positions.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Positional column reference.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<BoundExpr>,
        /// Right operand.
        rhs: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// `LIKE`.
    Like {
        /// Matched expression.
        expr: Box<BoundExpr>,
        /// Pattern.
        pattern: String,
        /// Negated?
        negated: bool,
    },
    /// `IN` over constants.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<Value>,
        /// Negated?
        negated: bool,
    },
    /// `BETWEEN`.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
        /// Negated?
        negated: bool,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Negated?
        negated: bool,
    },
}

/// Compile `expr` against `schema`, resolving every column name to its
/// position. Fails on unknown columns.
pub fn bind(expr: &ScalarExpr, schema: &Schema) -> Result<BoundExpr> {
    Ok(match expr {
        ScalarExpr::Column(n) => BoundExpr::Column(schema.require_index(n)?),
        ScalarExpr::Literal(v) => BoundExpr::Literal(v.clone()),
        ScalarExpr::Binary { op, lhs, rhs } => BoundExpr::Binary {
            op: *op,
            lhs: Box::new(bind(lhs, schema)?),
            rhs: Box::new(bind(rhs, schema)?),
        },
        ScalarExpr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, schema)?),
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(bind(expr, schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(bind(expr, schema)?),
            list: list.clone(),
            negated: *negated,
        },
        ScalarExpr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(bind(expr, schema)?),
            low: Box::new(bind(low, schema)?),
            high: Box::new(bind(high, schema)?),
            negated: *negated,
        },
        ScalarExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind(expr, schema)?),
            negated: *negated,
        },
    })
}

impl BoundExpr {
    /// Evaluate against one row, with SQL three-valued semantics: NULL
    /// propagates through arithmetic and comparisons; `AND`/`OR` follow
    /// Kleene logic; `IS NULL` observes NULL directly.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            BoundExpr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| GeoError::Execution(format!("row too short for column {i}"))),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Binary { op, lhs, rhs } => {
                // Kleene short-circuiting for AND/OR.
                if *op == BinaryOp::And || *op == BinaryOp::Or {
                    return eval_logical(*op, lhs, rhs, row);
                }
                let l = lhs.eval(row)?;
                let r = rhs.eval(row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                if op.is_comparison() {
                    let ord = l.sql_cmp(&r).ok_or_else(|| {
                        GeoError::Execution(format!("incomparable values {l} and {r}"))
                    })?;
                    Ok(Value::Bool(apply_cmp(*op, ord)))
                } else {
                    eval_arith(*op, &l, &r)
                }
            }
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match (op, v) {
                    (_, Value::Null) => Ok(Value::Null),
                    (UnaryOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnaryOp::Neg, Value::Int64(i)) => Ok(Value::Int64(-i)),
                    (UnaryOp::Neg, Value::Float64(f)) => Ok(Value::Float64(-f)),
                    (op, v) => Err(GeoError::Execution(format!("cannot apply {op:?} to {v}"))),
                }
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Bool(like_match(pattern, &s) != *negated)),
                    other => Err(GeoError::Execution(format!("LIKE on non-string {other}"))),
                }
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let found = list.iter().any(|c| v.sql_cmp(c) == Some(Ordering::Equal));
                Ok(Value::Bool(found != *negated))
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let ge_lo = matches!(
                    v.sql_cmp(&lo),
                    Some(Ordering::Greater) | Some(Ordering::Equal)
                );
                let le_hi = matches!(v.sql_cmp(&hi), Some(Ordering::Less) | Some(Ordering::Equal));
                Ok(Value::Bool((ge_lo && le_hi) != *negated))
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }
}

fn eval_logical(op: BinaryOp, lhs: &BoundExpr, rhs: &BoundExpr, row: &Row) -> Result<Value> {
    let l = lhs.eval(row)?;
    match (op, &l) {
        (BinaryOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
        (BinaryOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = rhs.eval(row)?;
    let lb = as_tv(&l)?;
    let rb = as_tv(&r)?;
    Ok(match op {
        BinaryOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinaryOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!("eval_logical only handles AND/OR"),
    })
}

/// Three-valued truth view: Some(bool) or None for NULL. Public so the
/// vectorized executor (`geoqp-exec`) can reproduce these semantics
/// exactly when it evaluates predicates column-at-a-time.
pub fn as_tv(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(GeoError::Execution(format!(
            "expected boolean, got {other}"
        ))),
    }
}

/// Apply a comparison operator to an [`Ordering`]. Public for the
/// vectorized executor, which compares typed columns directly.
pub fn apply_cmp(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

/// Arithmetic with SQL typing rules (dates ± integer days, wrapping
/// integer arithmetic, float fallback). Public for the vectorized
/// executor's scalar mirror.
pub fn eval_arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    // Date ± integer days.
    if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
        if !matches!(r, Value::Date(_)) {
            return match op {
                BinaryOp::Add => Ok(Value::Date(d + n as i32)),
                BinaryOp::Sub => Ok(Value::Date(d - n as i32)),
                _ => Err(GeoError::Execution(format!("cannot {op} dates"))),
            };
        }
    }
    match (l, r) {
        (Value::Int64(a), Value::Int64(b)) => match op {
            BinaryOp::Add => Ok(Value::Int64(a.wrapping_add(*b))),
            BinaryOp::Sub => Ok(Value::Int64(a.wrapping_sub(*b))),
            BinaryOp::Mul => Ok(Value::Int64(a.wrapping_mul(*b))),
            BinaryOp::Div => {
                if *b == 0 {
                    Err(GeoError::Execution("integer division by zero".into()))
                } else {
                    Ok(Value::Int64(a / b))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b))
                    if !matches!(l, Value::Date(_)) && !matches!(r, Value::Date(_)) =>
                {
                    (a, b)
                }
                _ => {
                    return Err(GeoError::Execution(format!(
                        "cannot apply {op} to {l} and {r}"
                    )))
                }
            };
            let out = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => a / b,
                _ => unreachable!(),
            };
            Ok(Value::Float64(out))
        }
    }
}

/// Convenience: bind and evaluate in one step (tests, policy generator).
pub fn eval_once(expr: &ScalarExpr, row: &Row, schema: &Schema) -> Result<Value> {
    bind(expr, schema)?.eval(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoqp_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("s", DataType::Str),
            Field::new("d", DataType::Date),
        ])
        .unwrap()
    }

    fn row() -> Row {
        vec![
            Value::Int64(10),
            Value::Float64(2.5),
            Value::str("BUILDING"),
            Value::date(1995, 3, 15),
        ]
    }

    fn ev(e: ScalarExpr) -> Value {
        eval_once(&e, &row(), &schema()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            ev(ScalarExpr::col("a").add(ScalarExpr::lit(5i64))),
            Value::Int64(15)
        );
        assert_eq!(
            ev(ScalarExpr::col("a").mul(ScalarExpr::col("b"))),
            Value::Float64(25.0)
        );
        assert_eq!(
            ev(ScalarExpr::col("b").div(ScalarExpr::lit(2i64))),
            Value::Float64(1.25)
        );
    }

    #[test]
    fn integer_division_by_zero_errors() {
        let e = ScalarExpr::col("a").div(ScalarExpr::lit(0i64));
        assert!(eval_once(&e, &row(), &schema()).is_err());
    }

    #[test]
    fn date_arithmetic() {
        let e = ScalarExpr::col("d").add(ScalarExpr::lit(10i64));
        assert_eq!(ev(e), Value::date(1995, 3, 25));
        let e = ScalarExpr::col("d").sub(ScalarExpr::lit(15i64));
        assert_eq!(ev(e), Value::date(1995, 2, 28));
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            ev(ScalarExpr::col("a").gt(ScalarExpr::lit(5i64))),
            Value::Bool(true)
        );
        assert_eq!(
            ev(ScalarExpr::col("a").lt_eq(ScalarExpr::lit(9i64))),
            Value::Bool(false)
        );
        assert_eq!(
            ev(ScalarExpr::col("a").eq(ScalarExpr::lit(10.0))),
            Value::Bool(true)
        );
        assert_eq!(
            ev(ScalarExpr::col("d").lt(ScalarExpr::lit(Value::date(1996, 1, 1)))),
            Value::Bool(true)
        );
    }

    #[test]
    fn null_propagation() {
        let e = ScalarExpr::lit(Value::Null).add(ScalarExpr::lit(1i64));
        assert_eq!(ev(e), Value::Null);
        let e = ScalarExpr::lit(Value::Null).eq(ScalarExpr::lit(1i64));
        assert_eq!(ev(e), Value::Null);
        let e = ScalarExpr::lit(Value::Null).is_null();
        assert_eq!(ev(e), Value::Bool(true));
        let e = ScalarExpr::col("a").is_null();
        assert_eq!(ev(e), Value::Bool(false));
    }

    #[test]
    fn kleene_logic() {
        let null = || ScalarExpr::lit(Value::Null).eq(ScalarExpr::lit(1i64));
        let t = || ScalarExpr::lit(true);
        let f = || ScalarExpr::lit(false);
        assert_eq!(ev(f().and(null())), Value::Bool(false));
        assert_eq!(ev(null().and(f())), Value::Bool(false));
        assert_eq!(ev(t().and(null())), Value::Null);
        assert_eq!(ev(t().or(null())), Value::Bool(true));
        assert_eq!(ev(null().or(t())), Value::Bool(true));
        assert_eq!(ev(f().or(null())), Value::Null);
        assert_eq!(ev(null().not()), Value::Null);
    }

    #[test]
    fn like_and_in_and_between() {
        assert_eq!(ev(ScalarExpr::col("s").like("BUILD%")), Value::Bool(true));
        assert_eq!(
            ev(ScalarExpr::col("s").not_like("%ING")),
            Value::Bool(false)
        );
        assert_eq!(
            ev(ScalarExpr::col("a").in_list(vec![Value::Int64(1), Value::Int64(10)])),
            Value::Bool(true)
        );
        assert_eq!(
            ev(ScalarExpr::col("a").between(ScalarExpr::lit(5i64), ScalarExpr::lit(10i64))),
            Value::Bool(true)
        );
        assert_eq!(
            ev(ScalarExpr::col("a").between(ScalarExpr::lit(11i64), ScalarExpr::lit(20i64))),
            Value::Bool(false)
        );
    }

    #[test]
    fn bind_rejects_unknown_columns() {
        let e = ScalarExpr::col("missing");
        assert!(bind(&e, &schema()).is_err());
    }

    #[test]
    fn comparing_incompatible_types_errors() {
        let e = ScalarExpr::col("s").lt(ScalarExpr::lit(1i64));
        assert!(eval_once(&e, &row(), &schema()).is_err());
    }
}
