//! Property-based soundness tests for the implication prover and the
//! expression evaluator.
//!
//! The key invariant (paper Section 5): the implication test must be
//! *sound* — whenever `implies(P, Q)` returns true, every row that
//! satisfies `P` (evaluates to TRUE) must also satisfy `Q`. Incompleteness
//! (returning false for a true implication) is acceptable; unsoundness
//! would let the policy evaluator approve illegal shipments.

use geoqp_common::{DataType, Field, Row, Schema, Value};
use geoqp_expr::eval::eval_once;
use geoqp_expr::normalize::normalize;
use geoqp_expr::{implies, ScalarExpr};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::new("b", DataType::Int64),
        Field::new("s", DataType::Str),
    ])
    .unwrap()
}

/// A random atomic predicate over columns a, b (ints) and s (string).
fn arb_atom() -> impl Strategy<Value = ScalarExpr> {
    let int_col = prop_oneof![Just("a"), Just("b")];
    let cmp = (int_col, -5i64..=5, 0u8..6).prop_map(|(c, v, op)| {
        let col = ScalarExpr::col(c);
        let lit = ScalarExpr::lit(v);
        match op {
            0 => col.eq(lit),
            1 => col.not_eq(lit),
            2 => col.lt(lit),
            3 => col.lt_eq(lit),
            4 => col.gt(lit),
            _ => col.gt_eq(lit),
        }
    });
    let strings = prop_oneof![
        Just("alpha".to_string()),
        Just("alps".to_string()),
        Just("beta".to_string()),
        Just("al%".to_string()),
        Just("%a".to_string()),
        Just("a_p%".to_string()),
    ];
    let like = (strings, any::<bool>()).prop_map(|(p, neg)| ScalarExpr::Like {
        expr: Box::new(ScalarExpr::col("s")),
        pattern: p,
        negated: neg,
    });
    let inlist =
        (proptest::collection::vec(-3i64..=3, 1..4), any::<bool>()).prop_map(|(vs, neg)| {
            ScalarExpr::InList {
                expr: Box::new(ScalarExpr::col("a")),
                list: vs.into_iter().map(Value::Int64).collect(),
                negated: neg,
            }
        });
    let between = (-5i64..=0, 0i64..=5).prop_map(|(lo, hi)| {
        ScalarExpr::col("b").between(ScalarExpr::lit(lo), ScalarExpr::lit(hi))
    });
    prop_oneof![4 => cmp, 2 => like, 1 => inlist, 1 => between]
}

/// Random predicates combining atoms with AND/OR/NOT, depth-limited.
fn arb_pred() -> impl Strategy<Value = ScalarExpr> {
    arb_atom().prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

/// Random rows over the test schema.
fn arb_row() -> impl Strategy<Value = Row> {
    (
        -6i64..=6,
        -6i64..=6,
        prop_oneof![
            Just("alpha".to_string()),
            Just("alps".to_string()),
            Just("beta".to_string()),
            Just("appa".to_string()),
            Just("".to_string()),
        ],
    )
        .prop_map(|(a, b, s)| vec![Value::Int64(a), Value::Int64(b), Value::str(s)])
}

fn satisfies(pred: &ScalarExpr, row: &Row) -> bool {
    eval_once(pred, row, &schema())
        .map(|v| v.is_true())
        .unwrap_or(false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Soundness: implies(P, Q) = true ⇒ no row satisfies P but not Q.
    #[test]
    fn implication_is_sound(p in arb_pred(), q in arb_pred(), rows in proptest::collection::vec(arb_row(), 32)) {
        if implies(&p, &q) {
            for row in &rows {
                prop_assert!(
                    !satisfies(&p, row) || satisfies(&q, row),
                    "unsound: row {:?} satisfies P={p} but not Q={q}", row
                );
            }
        }
    }

    /// Normalization preserves filter semantics (TRUE stays TRUE,
    /// non-TRUE stays non-TRUE).
    #[test]
    fn normalization_preserves_semantics(p in arb_pred(), row in arb_row()) {
        let n = normalize(&p);
        prop_assert_eq!(satisfies(&p, &row), satisfies(&n, &row), "normalize changed {} vs {}", p, n);
    }

    /// Every predicate implies itself.
    #[test]
    fn implication_is_reflexive(p in arb_pred()) {
        prop_assert!(implies(&p, &p));
    }

    /// P AND X implies P.
    #[test]
    fn conjunct_weakening(p in arb_atom(), x in arb_atom()) {
        prop_assert!(implies(&p.clone().and(x), &p));
    }

    /// P implies P OR X.
    #[test]
    fn disjunct_strengthening(p in arb_atom(), x in arb_atom()) {
        prop_assert!(implies(&p.clone(), &p.or(x)));
    }
}
