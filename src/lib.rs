//! # geoqp — Compliant Geo-distributed Query Processing
//!
//! A from-scratch Rust implementation of *Compliant Geo-distributed Query
//! Processing* (Beedkar, Quiané-Ruiz, Markl — SIGMOD 2021): a distributed
//! SQL engine whose optimizer guarantees that query execution plans never
//! violate declarative **dataflow policies** restricting which data may
//! move across geographic or institutional borders.
//!
//! ## The pieces
//!
//! * [`policy`] — `SHIP … FROM … TO …` policy expressions, the policy
//!   catalog, and Algorithm 1 (the policy evaluator `𝒜`),
//! * [`core`] — the compliance-based Volcano optimizer: annotation rules
//!   AR1–AR4 deriving execution/shipping traits, Pareto frontiers over
//!   (cost, traits), the Algorithm 2 site selector, the Definition 1
//!   compliance checker, and the distributed engine,
//! * [`parser`] — SQL subset + policy-statement parsing,
//! * [`plan`], [`expr`], [`exec`], [`storage`], [`net`], [`common`] — the
//!   relational substrate (algebra, expressions + implication prover,
//!   executor, catalogs, simulated WAN),
//! * [`tpch`] — the evaluation substrate (schemas, dbgen-style generator,
//!   the six evaluated queries, workload and policy generators),
//! * [`server`] — the multi-tenant query service: per-tenant admission
//!   control, deficit-round-robin fair scheduling, and an epoch-keyed
//!   cache of optimized located plans.
//!
//! ## Quickstart
//!
//! ```
//! use geoqp::prelude::*;
//! use std::sync::Arc;
//!
//! // Two sites, one table each.
//! let mut catalog = Catalog::new();
//! catalog.add_database("db-eu", Location::new("EU")).unwrap();
//! catalog.add_database("db-us", Location::new("US")).unwrap();
//! catalog.add_table(
//!     "db-eu", "users",
//!     Schema::new(vec![
//!         Field::new("u_id", DataType::Int64),
//!         Field::new("u_name", DataType::Str),
//!         Field::new("u_email", DataType::Str),
//!     ]).unwrap(),
//!     TableStats::new(1000, 48.0),
//! ).unwrap();
//! catalog.add_table(
//!     "db-us", "events",
//!     Schema::new(vec![
//!         Field::new("e_user", DataType::Int64),
//!         Field::new("e_kind", DataType::Str),
//!     ]).unwrap(),
//!     TableStats::new(100_000, 16.0),
//! ).unwrap();
//!
//! // Policy: user ids and names may leave the EU; emails may not.
//! let mut policies = PolicyCatalog::new();
//! let expr = geoqp::parser::parse_policy("ship u_id, u_name from users to US").unwrap();
//! let entry = catalog.resolve_one(&TableRef::bare("users")).unwrap();
//! policies.register(expr, &entry.schema).unwrap();
//! // Events are unrestricted.
//! let expr = geoqp::parser::parse_policy("ship * from events to *").unwrap();
//! let entry = catalog.resolve_one(&TableRef::bare("events")).unwrap();
//! policies.register(expr, &entry.schema).unwrap();
//!
//! let engine = Engine::new(
//!     Arc::new(catalog),
//!     Arc::new(policies),
//!     NetworkTopology::uniform(LocationSet::from_iter(["EU", "US"]), 80.0, 200.0),
//! );
//!
//! // A join that only touches exportable columns is planned compliantly…
//! let ok = engine.optimize_sql(
//!     "SELECT u_name, e_kind FROM users, events WHERE u_id = e_user",
//!     OptimizerMode::Compliant,
//!     None,
//! );
//! assert!(ok.is_ok());
//!
//! // …while demanding raw emails in the US is rejected.
//! let rejected = engine.optimize_sql(
//!     "SELECT u_email, e_kind FROM users, events WHERE u_id = e_user",
//!     OptimizerMode::Compliant,
//!     Some(Location::new("US")),
//! );
//! assert_eq!(rejected.unwrap_err().kind(), "rejected");
//! ```

pub use geoqp_common as common;
pub use geoqp_core as core;
pub use geoqp_exec as exec;
pub use geoqp_expr as expr;
pub use geoqp_net as net;
pub use geoqp_parser as parser;
pub use geoqp_plan as plan;
pub use geoqp_policy as policy;
pub use geoqp_runtime as runtime;
pub use geoqp_server as server;
pub use geoqp_storage as storage;
pub use geoqp_tpch as tpch;

/// The most commonly used items in one import.
pub mod prelude {
    pub use geoqp_common::{
        CancelToken, CatalogPin, ChurnEvent, DataType, Field, GeoError, Location, LocationPattern,
        LocationSet, QueryDeadline, Result, Row, Rows, RunControl, Schema, TableRef, Value,
    };
    pub use geoqp_core::{
        CatalogService, CheckpointStore, ChurnOpts, Engine, ExecutionResult, FailoverOpts,
        OptimizedQuery, OptimizerMode, ParallelResult, ResilientResult, RuntimeConfig,
        RuntimeMetrics, RuntimeMode,
    };
    pub use geoqp_exec::RetryPolicy;
    pub use geoqp_expr::{AggCall, AggFunc, ScalarExpr};
    pub use geoqp_net::{
        FaultPlan, HealthConfig, HedgeConfig, NetworkTopology, StepWindow, TransferLog,
    };
    pub use geoqp_plan::{LogicalPlan, PlanBuilder};
    pub use geoqp_policy::{PolicyCatalog, PolicyEvaluator, PolicyExpression, ShipAttrs};
    pub use geoqp_server::{
        PlanCache, QueryReply, QueryRequest, QueryService, QueryTicket, ServiceConfig,
        TenantConfig, TenantId, TenantStats,
    };
    pub use geoqp_storage::{Catalog, Table, TableStats};
}
